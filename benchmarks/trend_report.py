#!/usr/bin/env python
"""Throughput trends over the committed ``BENCH_history/`` trail.

The history directory holds one append-only JSON per bench run
(``<suite>-<NNNN>.json``, written by ``repro bench``); this script
folds the trail into per-point trend series and renders them as a
markdown report and/or a flat CSV — the CI artifact the roadmap's
bench-trajectory item calls for::

    PYTHONPATH=src python benchmarks/trend_report.py \
        --history-dir BENCH_history --out-md trends.md \
        --out-csv trends.csv [--suites lint,scale]

Points are keyed exactly like the regression gate
(:data:`repro.scale.bench.GATE_METRICS`), so a trend series here is
the same curve the gate compares.  When an entry carries a
``calibration`` stamp the normalised metric (metric / score) is
reported alongside the raw one — cross-machine history stays
readable.  Output is deterministic: suites, keys and sequence numbers
all sort.
"""

import argparse
import csv
import io
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scale.bench import GATE_METRICS  # noqa: E402

#: one history observation of one keyed point.
TrendRow = Dict[str, object]


def _sequence_of(path: Path) -> Optional[int]:
    tail = path.stem.rsplit("-", 1)[-1]
    return int(tail) if tail.isdigit() else None


def load_history(history_dir: Path,
                 suites: Optional[List[str]] = None) -> List[TrendRow]:
    """Flatten every history entry into keyed trend rows.

    Unknown suites and unparseable files are skipped with a note on
    stderr rather than failing the report — a trail with one corrupt
    entry is still a trail.
    """
    rows: List[TrendRow] = []
    for path in sorted(history_dir.glob("*.json")):
        seq = _sequence_of(path)
        if seq is None:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"trend-report: skipping {path.name}: {exc}",
                  file=sys.stderr)
            continue
        suite = payload.get("bench")
        if suite not in GATE_METRICS:
            print(f"trend-report: skipping {path.name}: unknown "
                  f"suite {suite!r}", file=sys.stderr)
            continue
        if suites is not None and suite not in suites:
            continue
        metric, key_fields = GATE_METRICS[suite]
        calibration = payload.get("calibration") or 0.0
        for point in payload.get("points", []):
            value = point.get(metric)
            if value is None:
                continue
            label = ", ".join(
                f"{field}={point.get(field)}" for field in key_fields)
            rows.append({
                "suite": suite, "seq": seq, "label": label,
                "metric": metric, "value": float(value),
                "calibration": float(calibration),
                "normalised": (float(value) / float(calibration)
                               if calibration else None),
            })
    rows.sort(key=lambda r: (r["suite"], r["label"], r["seq"]))
    return rows


def _series(rows: List[TrendRow]) -> Dict[Tuple[str, str],
                                          List[TrendRow]]:
    out: Dict[Tuple[str, str], List[TrendRow]] = {}
    for row in rows:
        out.setdefault((row["suite"], row["label"]), []).append(row)
    return out


def _trend_value(row: TrendRow) -> float:
    """The comparable value: normalised when stamped, raw otherwise."""
    normalised = row["normalised"]
    return normalised if normalised is not None else row["value"]


def render_markdown(rows: List[TrendRow]) -> str:
    """One markdown section per suite, one table row per observation.

    The ``delta`` column is the step-to-step change of the comparable
    value (normalised where available), so a hardware swap mid-trail
    does not masquerade as a code regression.
    """
    lines = ["# Bench throughput trends", ""]
    if not rows:
        lines += ["_No history entries found._", ""]
        return "\n".join(lines)
    by_suite: Dict[str, List[TrendRow]] = {}
    for row in rows:
        by_suite.setdefault(row["suite"], []).append(row)
    for suite in sorted(by_suite):
        metric = GATE_METRICS[suite][0]
        lines += [f"## {suite} ({metric})", ""]
        lines += ["| point | run | " + metric +
                  " | calibration | normalised | delta |",
                  "|---|---|---|---|---|---|"]
        for key, series in sorted(_series(by_suite[suite]).items()):
            previous: Optional[float] = None
            for row in series:
                current = _trend_value(row)
                if previous in (None, 0.0):
                    delta = ""
                else:
                    delta = f"{(current - previous) / previous:+.1%}"
                previous = current
                normalised = (f"{row['normalised']:.4f}"
                              if row["normalised"] is not None else "-")
                calibration = (f"{row['calibration']:.1f}"
                               if row["calibration"] else "-")
                lines.append(
                    f"| {row['label']} | {row['seq']:04d} "
                    f"| {row['value']:.2f} | {calibration} "
                    f"| {normalised} | {delta} |")
        lines.append("")
    return "\n".join(lines)


def render_csv(rows: List[TrendRow]) -> str:
    """Flat CSV of every observation (for plotting downstream)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["suite", "seq", "label", "metric", "value",
                     "calibration", "normalised"])
    for row in rows:
        writer.writerow([
            row["suite"], row["seq"], row["label"], row["metric"],
            f"{row['value']:.4f}",
            f"{row['calibration']:.1f}" if row["calibration"] else "",
            (f"{row['normalised']:.6f}"
             if row["normalised"] is not None else ""),
        ])
    return buffer.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trend-report",
        description="render BENCH_history/ throughput trends as "
                    "markdown and CSV")
    parser.add_argument("--history-dir", type=str,
                        default="BENCH_history",
                        help="history directory (default: "
                             "BENCH_history)")
    parser.add_argument("--suites", type=str, default=None,
                        help="comma-separated suites to include "
                             "(default: all known)")
    parser.add_argument("--out-md", type=str, default=None,
                        help="write the markdown report here "
                             "(default: stdout)")
    parser.add_argument("--out-csv", type=str, default=None,
                        help="also write the flat CSV here")
    args = parser.parse_args(argv)

    history_dir = Path(args.history_dir)
    if not history_dir.is_dir():
        print(f"trend-report: no history directory at {history_dir}",
              file=sys.stderr)
        return 2
    suites = ([s.strip() for s in args.suites.split(",") if s.strip()]
              if args.suites else None)
    rows = load_history(history_dir, suites)
    markdown = render_markdown(rows)
    if args.out_md:
        Path(args.out_md).write_text(markdown)
        print(f"wrote {args.out_md} ({len(rows)} observations)",
              file=sys.stderr)
    else:
        print(markdown)
    if args.out_csv:
        Path(args.out_csv).write_text(render_csv(rows))
        print(f"wrote {args.out_csv}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
