"""§VI countermeasures, measured (discussion section made executable).

Not a numbered exhibit, but the paper's concluding analysis: blacklists
leak through CNAMEs/proxies, wallet reporting only bites botnet-scale
wallets at cooperative pools, and faster PoW cadences shrink the
ecosystem's mining time.
"""

from repro.defense.blacklist import BlacklistDefense
from repro.defense.fork_policy import compare_cadences
from repro.defense.intervention import WalletReportingCampaign


def bench_blacklist_efficacy(benchmark, bench_world, bench_result):
    defense = BlacklistDefense(bench_world.pool_directory)
    report = benchmark(defense.evaluate, bench_result.miner_records(),
                       bench_result.proxy_ips)
    assert report.total_miners > 0
    assert report.evaded_by_cname > 0  # the paper's evasion exists
    print()
    print(f"blacklist: {report.blocked}/{report.total_miners} blocked; "
          f"evasions cname={report.evaded_by_cname} "
          f"proxy={report.evaded_by_proxy} raw-ip={report.evaded_by_raw_ip}")


def bench_wallet_intervention(benchmark, bench_world, bench_result):
    campaign = WalletReportingCampaign(bench_world.pool_directory)
    report = benchmark.pedantic(
        lambda: campaign.run(bench_result), rounds=1, iterations=1)
    assert report.wallets_reported > 0
    assert report.wallets_banned >= 1
    assert "dwarfpool" not in report.bans_by_pool  # non-cooperative
    print()
    print(f"intervention: {report.wallets_banned}/"
          f"{report.wallets_reported} banned; by pool: "
          f"{report.bans_by_pool}; disrupted "
          f"{report.disrupted_run_rate:.1f} XMR/day")


def bench_fork_cadence_counterfactual(benchmark, bench_world):
    outcomes = benchmark(compare_cadences, bench_world.ground_truth)
    none, historical, quarterly = outcomes
    assert none.retained_fraction == 1.0
    assert quarterly.retained_fraction <= historical.retained_fraction
    print()
    print("fork cadence -> mining-days retained: "
          f"none=100% historical={historical.retained_fraction*100:.0f}% "
          f"quarterly={quarterly.retained_fraction*100:.0f}%")
