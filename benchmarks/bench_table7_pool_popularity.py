"""Table VII — mining-pool popularity among criminals.

Paper: crypto-pool leads by XMR mined (429K), dwarfpool second (168K);
minexmr has the most wallets (608).
"""

from repro.analysis import table7_pool_popularity
from repro.reporting.render import render_table7


def bench_table7_pools(benchmark, bench_result):
    rows = benchmark(table7_pool_popularity, bench_result)
    assert rows
    top_pools = [r["pool"] for r in rows[:4]]
    # the big three hold the top of the volume ranking
    assert set(top_pools) & {"crypto-pool", "dwarfpool", "minexmr"}
    by_wallets = max(rows, key=lambda r: r["wallets"])
    assert by_wallets["wallets"] >= rows[0]["wallets"] * 0.5
    print()
    print(render_table7(rows))
