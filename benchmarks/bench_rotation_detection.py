"""Wallet-rotation detection (extension of the Table IV observation).

The paper notes operators rotate wallets after bans and that minexmr
publishes per-wallet hashrate histories; composing the two yields a
hand-over detector.  The bench runs it over the measured world and
checks it corroborates known campaigns (Freebuf's post-fork rotation).
"""

from repro.analysis.rotation import detect_rotations, score_against_campaigns


def bench_rotation_detection(benchmark, bench_result):
    candidates = benchmark(detect_rotations, bench_result, "minexmr")
    scores = score_against_campaigns(candidates, bench_result)
    assert scores["inside_campaign"] >= 1  # Freebuf's rotation is found
    print()
    print(f"rotation candidates at minexmr: {len(candidates)} "
          f"({scores['inside_campaign']} corroborate campaigns, "
          f"{scores['across_campaigns']} cross-campaign leads)")
    for candidate in candidates[:5]:
        print(f"  {candidate.from_wallet[:10]}... -> "
              f"{candidate.to_wallet[:10]}... on "
              f"{candidate.handover_date} "
              f"(rate similarity {candidate.rate_similarity:.2f})")
