"""Ablation — grouping-feature contributions (§III-E design choices).

Times the aggregation stage under the full policy versus the
wallet-only baseline of prior work, and scores both against corpus
ground truth: the experiment the paper's authors could only approximate
by manual verification.
"""

from repro.analysis.validation import aggregation_quality
from repro.core.aggregation import GroupingPolicy
from repro.core.pipeline import MeasurementPipeline
from repro.reporting.render import format_table


def bench_ablation_wallet_only_baseline(benchmark, tiny_world):
    def run_baseline():
        return MeasurementPipeline(
            tiny_world, policy=GroupingPolicy.wallet_only()).run()

    baseline = benchmark.pedantic(run_baseline, rounds=1, iterations=1)
    full = MeasurementPipeline(tiny_world).run()
    base_scores = aggregation_quality(tiny_world, baseline)
    full_scores = aggregation_quality(tiny_world, full)
    assert base_scores.recall <= full_scores.recall
    print()
    print(format_table(
        ["policy", "#campaigns", "precision", "recall", "F1"],
        [["full (paper)", len(full.campaigns),
          f"{full_scores.precision:.3f}", f"{full_scores.recall:.3f}",
          f"{full_scores.f1:.3f}"],
         ["wallet-only (prior work)", len(baseline.campaigns),
          f"{base_scores.precision:.3f}", f"{base_scores.recall:.3f}",
          f"{base_scores.f1:.3f}"]],
        title="Ablation: grouping policy"))


def bench_ablation_av_threshold(benchmark, tiny_world):
    """The paper's future-work question: 10 AV positives vs 5."""
    def run_greedy():
        return MeasurementPipeline(tiny_world, positives_threshold=5).run()

    greedy = benchmark.pedantic(run_greedy, rounds=1, iterations=1)
    strict = MeasurementPipeline(tiny_world, positives_threshold=10).run()
    assert greedy.stats.miners >= strict.stats.miners
    print()
    print(f"AV>=10: {strict.stats.miners} miners; "
          f"AV>=5: {greedy.stats.miners} miners "
          f"(+{greedy.stats.miners - strict.stats.miners} from the "
          "greedier threshold)")
