"""Operator economics and the opacity gap (§II / §IV-C / §VIII).

Extensions of the paper's analysis: the ROI arithmetic behind "low cost
and high return of investment", and a bound on the revenue hidden
behind opaque pools like minergate.
"""

import datetime

from repro.analysis.opacity import estimate_opacity_gap
from repro.botnet.economics import campaign_roi
from repro.botnet.population import BotnetConfig, BotnetSimulator
from repro.common.rng import DeterministicRNG


def bench_operator_roi(benchmark):
    simulator = BotnetSimulator(
        BotnetConfig(initial_installs=2000, target_cap=2000,
                     max_resupplies=6),
        DeterministicRNG(2019))
    trace = simulator.run(datetime.date(2017, 3, 1),
                          datetime.date(2018, 9, 1))
    economics = benchmark(campaign_roi, simulator, trace)
    assert economics.roi > 3.0   # §VIII: high return on investment
    print()
    print(f"operator ROI: {economics.installs} installs, "
          f"cost ${economics.total_cost:,.0f}, "
          f"revenue ${economics.revenue_usd:,.0f} "
          f"({economics.mined_xmr:.0f} XMR) -> {economics.roi:.1f}x")


def bench_opacity_gap(benchmark, bench_result):
    gap = benchmark(estimate_opacity_gap, bench_result)
    assert gap.opaque_identifiers > 0
    print()
    print(f"opacity gap: {gap.opaque_identifiers} identifiers invisible "
          f"(vs {gap.measured_identifiers} measured); hidden XMR "
          f"between {gap.estimated_hidden_xmr_median:.0f} (median bound) "
          f"and {gap.estimated_hidden_xmr_mean:.0f} (mean bound); "
          f"undercount >= {gap.undercount_fraction_median*100:.1f}%")
