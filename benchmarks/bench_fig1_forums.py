"""Fig. 1 — forum mining-thread shares per coin per year.

Paper: Bitcoin dominates early; Monero is the most-discussed mining
coin by 2018.
"""

from repro.analysis import fig1_forum_trends
from repro.reporting.render import render_fig1


def bench_fig1_forum_trends(benchmark, bench_world):
    shares = benchmark(fig1_forum_trends, bench_world.forum_corpus)
    assert max(shares[2018], key=shares[2018].get) == "Monero"
    assert max(shares[2012], key=shares[2012].get) == "Bitcoin"
    print()
    print(render_fig1(shares))
