"""Ecosystem monthly revenue narrative (§VII context).

The paper summarises its payments as more than 1M USD per month over
4.5 years of operation.  At bench scale the absolute level shrinks, but
the narrative shape must hold: revenue ramps with the 2017 rally, peaks
around the January 2018 price spike, and collapses after the October
2018 fork + interventions.
"""

from repro.analysis.timeline import (
    monthly_ecosystem_series,
    peak_month,
)


def bench_monthly_timeline(benchmark, bench_result):
    series = benchmark(monthly_ecosystem_series, bench_result)
    assert series
    peak = peak_month(series, key="usd_paid")
    # the USD peak lands in the late-2017 / early-2018 price regime
    assert "2017-06" <= peak.month <= "2018-06", peak.month
    mid_2018 = max((p.xmr_paid for p in series
                    if "2018-04" <= p.month <= "2018-09"), default=0)
    early_2019 = max((p.xmr_paid for p in series
                      if p.month >= "2019-01"), default=0)
    assert early_2019 < mid_2018   # the post-fork collapse
    print()
    print(f"monthly series: {len(series)} months; USD peak in "
          f"{peak.month} (${peak.usd_paid:,.0f})")
    print("XMR/month around the October 2018 fork:")
    for point in series:
        if "2018-07" <= point.month <= "2019-02":
            bar = "#" * max(1, int(point.xmr_paid / mid_2018 * 40))
            print(f"  {point.month}  {point.xmr_paid:>9.0f}  {bar}")
