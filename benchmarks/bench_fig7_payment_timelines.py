"""Fig. 6c / 7 / 8 — per-wallet payment timelines and interventions.

Paper: Freebuf's payments collapse after the October 2018 wallet bans
plus the PoW change ('nearly turning it off'); USA-138 survives the
October fork and keeps receiving payments from crypto-pool.
"""

from repro.analysis import fig7_payment_timeline
from repro.analysis.exhibits import monthly_payment_series


def _campaign(world, result, label):
    truth = next(c for c in world.ground_truth if c.label == label)
    return result.campaign_for_wallet(truth.identifiers[0])


def _monthly_totals(result, campaign):
    monthly = monthly_payment_series(
        fig7_payment_timeline(result, campaign))
    totals = {}
    for series in monthly.values():
        for month, amount in series.items():
            totals[month] = totals.get(month, 0.0) + amount
    return totals


def bench_fig7_freebuf_timeline(benchmark, bench_world, bench_result):
    campaign = _campaign(bench_world, bench_result, "Freebuf")
    timeline = benchmark(fig7_payment_timeline, bench_result, campaign)
    assert timeline
    totals = _monthly_totals(bench_result, campaign)
    before = [v for m, v in totals.items() if "2018-04" <= m < "2018-10"]
    after = [v for m, v in totals.items() if m >= "2018-11"]
    assert max(after) < max(before) * 0.5  # the Fig. 8 collapse
    print()
    print("Freebuf payments per month around the intervention:")
    for month in sorted(m for m in totals if "2018-06" <= m <= "2019-02"):
        bar = "#" * max(1, int(totals[month] / 60))
        print(f"  {month}  {totals[month]:>8.0f}  {bar}")


def bench_fig7_usa138_survives(benchmark, bench_world, bench_result):
    campaign = _campaign(bench_world, bench_result, "USA-138")
    timeline = benchmark(fig7_payment_timeline, bench_result, campaign)
    totals = _monthly_totals(bench_result, campaign)
    post_fork = [m for m in totals if m >= "2018-11"]
    assert post_fork  # still paid after the October 2018 fork
    pools_late = {
        pool
        for payments in timeline.values()
        for when, _, pool in payments
        if when.isoformat() >= "2018-11"
    }
    assert "crypto-pool" in pools_late  # moved back to crypto-pool
    print()
    print(f"USA-138 active months after Oct-2018 fork: {len(post_fork)}; "
          f"late pools: {sorted(pools_late)}")
