"""Huang et al. (2014) baseline vs this methodology (§VII, Table XII).

Paper context: the only prior binary-mining study clustered BTC wallets
through the public ledger; the approach reads wallet income directly on
Bitcoin but is impossible on Monero, whose ledger hides everything.
"""

from repro.baselines.huang2014 import (
    attempt_on_monero,
    run_huang2014_baseline,
)


def _wallets(world, coin):
    return [w for c in world.ground_truth if c.coin == coin
            for w in c.identifiers]


def bench_huang2014_on_btc(benchmark, bench_world):
    wallets = _wallets(bench_world, "BTC")
    result = benchmark.pedantic(
        lambda: run_huang2014_baseline(bench_world, wallets),
        rounds=1, iterations=1)
    assert result.wallets_analyzed > 0
    assert result.total_usd < 5000   # §IV-B: negligible BTC earnings
    print()
    print(f"Huang-2014 on BTC: {result.wallets_analyzed} wallets, "
          f"{result.total_btc:.4f} BTC (~{result.total_usd:.0f} USD), "
          f"{result.operations} ledger-clustered operations")


def bench_huang2014_fails_on_monero(benchmark, bench_world):
    wallets = _wallets(bench_world, "XMR")
    message = benchmark(attempt_on_monero, wallets)
    assert "opaque" in message
    print()
    print(f"Huang-2014 on XMR: blocked -> {message!r}")
