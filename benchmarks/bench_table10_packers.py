"""Table X — packers used for binary obfuscation.

Paper: ~30% of samples are obfuscated; UPX dominates by a wide margin
(328,493 of ~367K packed samples); the rest are small families plus
signature-less crypters caught only by the entropy heuristic.
"""

from repro.analysis import table10_packers
from repro.reporting.render import format_table


def bench_table10_packers(benchmark, bench_result):
    rows = benchmark(table10_packers, bench_result)
    packed = {k: v for k, v in rows.items() if k != "Not packed"}
    assert packed
    assert max(packed, key=packed.get) == "UPX"
    packed_total = sum(packed.values())
    total = packed_total + rows["Not packed"]
    assert 0.05 < packed_total / total < 0.6  # paper: ~30%
    print()
    print(format_table(["packer", "#samples"],
                       [[k, v] for k, v in rows.items()],
                       title="Table X: packers"))
    print(f"packed fraction: {packed_total/total*100:.1f}% (paper: ~30%)")
