"""Fig. 4 — CDFs of samples, wallets and earnings per campaign.

Paper: the distributions are heavily skewed — 99% of campaigns earn
less than 100 XMR while the top campaign alone holds ~22% of all
earnings.
"""

from repro.analysis import fig4_cdf
from repro.analysis.exhibits import cdf_quantile


def bench_fig4_cdf(benchmark, bench_result):
    cdf = benchmark(fig4_cdf, bench_result)
    small_share = cdf_quantile(cdf["earnings_xmr"], 100.0)
    assert small_share > 0.7
    assert cdf["samples"][0] >= 1
    assert max(cdf["wallets"]) >= 4  # multi-wallet campaigns exist
    print()
    print("Fig 4 CDF checkpoints:")
    for name, series in cdf.items():
        if not series:
            continue
        n = len(series)
        print(f"  {name:<13s} n={n:<5d} p50={series[n // 2]:.1f} "
              f"p90={series[int(n * 0.9)]:.1f} max={series[-1]:.1f}")
    print(f"  campaigns earning <100 XMR: {small_share*100:.1f}% "
          "(paper: 99%)")
