"""Fig. 5 — number of pools used per campaign, grouped by earnings.

Paper: 49.3% of campaigns use more than one pool; 97% of the campaigns
earning over 1K XMR do.
"""

from repro.analysis import fig5_pools_per_campaign
from repro.analysis.exhibits import multi_pool_share
from repro.reporting.render import format_table


def bench_fig5_pools(benchmark, bench_result):
    histograms = benchmark(fig5_pools_per_campaign, bench_result)
    rich_share = multi_pool_share(bench_result, min_xmr=1000.0)
    assert rich_share > 0.5  # paper: 97%
    print()
    max_pools = max((n for h in histograms.values() for n in h), default=1)
    rows = []
    for label, histogram in histograms.items():
        rows.append([label] + [histogram.get(n, 0)
                               for n in range(1, max_pools + 1)])
    print(format_table(
        ["XMR band"] + [str(n) for n in range(1, max_pools + 1)],
        rows, title="Fig 5: #pools used per campaign by earnings band"))
    print(f"multi-pool share among >=1K XMR campaigns: "
          f"{rich_share*100:.0f}% (paper: 97%)")
