"""AV-threshold sweep (§VI "Quality of the ground-truth", quantified).

The paper keeps samples flagged by >=10 AVs to minimise false
positives and names the 5-AV variant as future work.  This bench runs
the whole pipeline across thresholds and prints the precision/recall
curve the original study could not compute without ground truth.
"""

from repro.analysis.groundtruth_eval import av_threshold_sweep
from repro.reporting.render import format_table


def bench_av_threshold_sweep(benchmark, tiny_world):
    rows = benchmark.pedantic(
        lambda: av_threshold_sweep(tiny_world, thresholds=(3, 5, 10, 15)),
        rounds=1, iterations=1)
    recalls = [row["recall"] for row in rows]
    assert recalls == sorted(recalls, reverse=True)
    assert all(row["precision"] > 0.9 for row in rows)
    print()
    print(format_table(
        ["AV threshold", "kept miners", "precision", "recall", "F1"],
        [[int(r["threshold"]), int(r["kept_miners"]),
          f"{r['precision']:.3f}", f"{r['recall']:.3f}",
          f"{r['f1']:.3f}"] for r in rows],
        title="Sanity-funnel quality vs AV-positives threshold"))
    print("paper: threshold 10 chosen to minimise FPs; 5 conjectured "
          "safe thanks to the tool whitelist")
