#!/usr/bin/env python
"""Unified benchmark harness entry point.

Thin wrapper over :mod:`repro.scale.bench` so the suite can be run
without installing the package::

    PYTHONPATH=src python benchmarks/harness.py --suite all
    PYTHONPATH=src python benchmarks/harness.py --suite scale \
        --scales 0.055,0.55 --workers-list 1,2,4

Emits ``BENCH_scale.json`` (out-of-core scaling curve: samples, time,
throughput, peak RSS per point — crossed with ``--workers-list``
aggregation worker counts), ``BENCH_pipeline.json`` (batch pipeline
stage breakdown), ``BENCH_scan.json`` (one-pass scan kernel vs the
legacy per-pattern path, equivalence-asserted), ``BENCH_serve.json``
(sustained-QPS serving run with p50/p95/p99 latency; ``workers=1``
hot-swaps under load, ``workers>1`` benchmarks the SO_REUSEPORT
fleet — see docs/serving.md) and ``BENCH_ingest.json`` (checkpointed
ingestion: batches/s plus cold-resume cost).  Every point runs in a
fresh subprocess so peak-RSS numbers are per-point, not a shared
high-water mark, and each suite also appends an immutable
``BENCH_history/<suite>-<NNNN>.json`` entry.  CI gates fresh runs
against the committed JSONs with ``benchmarks/regression_gate.py``
(>25% throughput drop on any matched point fails).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scale.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
