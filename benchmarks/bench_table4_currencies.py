"""Table IV — campaigns per currency and samples per year.

Paper: XMR 2,449 campaigns > BTC 1,535 > ZEC/ETN/ETH...; 5,008 e-mail
campaigns; XMR samples peak in 2017, BTC interest decays.
"""

from repro.analysis import table4_currencies
from repro.reporting.render import render_table4


def bench_table4_currencies(benchmark, bench_result):
    data = benchmark(table4_currencies, bench_result)
    per_currency = data["campaigns_per_currency"]
    assert max(per_currency, key=per_currency.get) == "XMR"
    assert per_currency["XMR"] > per_currency["BTC"]
    assert data["email_campaigns"] > 0
    assert data["unknown_campaigns"] > 0
    print()
    print(render_table4(data))
