"""Scan-kernel throughput bench: one-pass kernel vs legacy per-pattern.

Replays the per-sample byte-scanning workload of the measurement
pipeline over a generated corpus two ways:

- **legacy** — the seed's path: sanity and static analysis each unpack
  the sample, every rule pattern walks the bytes on its own (nocase
  patterns re-folding ``data.lower()`` per pattern), and the thirteen
  sequential per-coin identifier regexes run over every token of the
  strings blob.
- **kernel** — one shared :class:`repro.perf.scan.ScanContext` per
  sample: a single unpack, a single strings walk, bitmask literal
  matching + fused regex alternations for the rules, and the combined
  named-group wallet alternation for identifiers.

The work splits into two stages, timed separately:

- ``materialize`` — unpacking and building the strings view.  Both
  paths need it (static findings carry the strings list); the kernel
  builds it once, the legacy path once per consumer.
- ``scan`` — the pattern-matching work proper: rule evaluation,
  identifier extraction, Stratum IoC detection over the materialized
  views.  This is the per-pattern path the kernel replaces, and the
  headline ``speedup`` in the JSON output.

Both paths must produce identical rule matches, strings, identifiers
and Stratum endpoints for every sample — any mismatch exits non-zero,
which is what the CI smoke step asserts.  Results are printed as JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_scan_kernel.py \
        [--scale 0.004] [--seed 2019] [--iterations 3] [--min-speedup 0]
"""

import argparse
import json
import re
import sys
import time

from repro.binfmt.packers import identify_packer, unpack
from repro.binfmt.strings import extract_strings
from repro.common.errors import BinaryFormatError
from repro.core.static_analysis import _STRATUM_URL_RE
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.perf.cache import clear_caches
from repro.perf.scan import ScanContext
from repro.wallets.detect import (
    extract_identifiers,
    extract_identifiers_legacy,
)
from repro.yarm.builtin import builtin_miner_rules
from repro.yarm.engine import Match


def _stratum_entries(blob):
    entries = []
    for match in _STRATUM_URL_RE.finditer(blob):
        entry = (match.group("host").lower(), int(match.group("port")))
        if entry not in entries:
            entries.append(entry)
    return entries


# --------------------------------------------------------------------------
# Legacy path (the seed's code, kept verbatim in spirit)
# --------------------------------------------------------------------------


def _seed_scannable(raw):
    """The seed's inline unpack step (run once per consumer)."""
    packer = identify_packer(raw)
    if packer is not None and packer.unpackable:
        try:
            return unpack(raw)
        except BinaryFormatError:
            pass
    return raw


def _seed_pattern_matches(sp, data):
    """Seed-era ``StringPattern.matches``: per-pattern lowercase fold."""
    if sp.kind == "text":
        if sp.nocase:
            return sp.pattern.lower() in data.lower()
        return sp.pattern in data
    if sp.kind == "hex":
        return sp.pattern in data
    flags = re.IGNORECASE if sp.nocase else 0
    return re.search(sp.pattern, data, flags) is not None


def legacy_materialize(raw):
    """Unpack (once per consumer, like the seed) and build the views."""
    data = _seed_scannable(raw)         # sanity's unpack
    static_data = _seed_scannable(raw)  # static analysis unpacks again
    strings = extract_strings(static_data)
    return data, strings, "\n".join(strings)


def legacy_scan(data, blob, rules):
    """The seed's per-pattern scan: rules, identifiers, Stratum IoCs."""
    matches = []
    for rule in rules.rules:
        fired = {sp.identifier: _seed_pattern_matches(sp, data)
                 for sp in rule.strings}
        if rule.condition.evaluate(fired):
            matches.append(Match(
                rule=rule.name, tags=list(rule.tags),
                fired=[name for name, hit in fired.items() if hit]))
    identifiers = extract_identifiers_legacy(blob)
    return matches, identifiers, _stratum_entries(blob)


def legacy_scan_sample(raw, rules):
    data, strings, blob = legacy_materialize(raw)
    matches, identifiers, stratum = legacy_scan(data, blob, rules)
    return matches, strings, identifiers, stratum


# --------------------------------------------------------------------------
# Kernel path
# --------------------------------------------------------------------------


def kernel_materialize(raw):
    """One shared context: single unpack, single strings walk."""
    ctx = ScanContext.for_sample(raw)
    ctx.strings  # builds blob + text once, reused by every scanner
    return ctx


def kernel_scan(ctx, rules):
    """One-pass kernel scan over the shared context."""
    matches = rules.scan(ctx)
    identifiers = extract_identifiers(ctx.text)
    stratum = (_stratum_entries(ctx.text)
               if "stratum+" in ctx.text else [])
    return matches, identifiers, stratum


def kernel_scan_sample(raw, rules):
    ctx = kernel_materialize(raw)
    matches, identifiers, stratum = kernel_scan(ctx, rules)
    return matches, list(ctx.strings), identifiers, stratum


# --------------------------------------------------------------------------
# Harness
# --------------------------------------------------------------------------


def _best_of(fn, iterations):
    best = float("inf")
    for _ in range(iterations):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail when the scan-stage speedup drops "
                             "below this")
    args = parser.parse_args(argv)

    world = generate_world(ScenarioConfig(
        seed=args.seed, scale=args.scale, include_junk=False))
    samples = [sample.raw for sample in world.samples]
    rules = builtin_miner_rules()
    rules.kernel()  # compile outside the timed region

    # equivalence gate: every sample, all four result families
    clear_caches()
    mismatches = 0
    for raw in samples:
        if legacy_scan_sample(raw, rules) != kernel_scan_sample(raw, rules):
            mismatches += 1
    equivalent = mismatches == 0

    # stage timings (each iteration pays its own unpacks)
    def legacy_mat():
        for raw in samples:
            legacy_materialize(raw)

    def kernel_mat():
        clear_caches()
        for raw in samples:
            kernel_materialize(raw)

    legacy_mat_s = _best_of(legacy_mat, args.iterations)
    kernel_mat_s = _best_of(kernel_mat, args.iterations)

    legacy_views = [legacy_materialize(raw) for raw in samples]
    clear_caches()
    kernel_views = [kernel_materialize(raw) for raw in samples]

    def legacy_scan_all():
        for data, _, blob in legacy_views:
            legacy_scan(data, blob, rules)

    def kernel_scan_all():
        for ctx in kernel_views:
            kernel_scan(ctx, rules)

    legacy_scan_s = _best_of(legacy_scan_all, args.iterations)
    kernel_scan_s = _best_of(kernel_scan_all, args.iterations)

    def legacy_all():
        for raw in samples:
            legacy_scan_sample(raw, rules)

    def kernel_all():
        clear_caches()
        for raw in samples:
            kernel_scan_sample(raw, rules)

    legacy_s = _best_of(legacy_all, args.iterations)
    kernel_s = _best_of(kernel_all, args.iterations)

    def ratio(a, b):
        return round(a / b, 2) if b else float("inf")

    scan_speedup = ratio(legacy_scan_s, kernel_scan_s)
    print(json.dumps({
        "samples": len(samples),
        "iterations": args.iterations,
        "stages": {
            "materialize": {"legacy_s": round(legacy_mat_s, 4),
                            "kernel_s": round(kernel_mat_s, 4),
                            "speedup": ratio(legacy_mat_s, kernel_mat_s)},
            "scan": {"legacy_s": round(legacy_scan_s, 4),
                     "kernel_s": round(kernel_scan_s, 4),
                     "speedup": scan_speedup},
        },
        "overall": {"legacy_s": round(legacy_s, 4),
                    "kernel_s": round(kernel_s, 4),
                    "speedup": ratio(legacy_s, kernel_s)},
        "speedup": scan_speedup,
        "equivalent": equivalent,
        "mismatches": mismatches,
    }, indent=2))

    if not equivalent:
        print("FAIL: kernel and legacy scan paths disagree",
              file=sys.stderr)
        return 1
    if scan_speedup < args.min_speedup:
        print(f"FAIL: scan speedup {scan_speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
