"""Table IX — stock mining tools used by campaigns.

Paper: xmrig, claymore and niceHash lead; the top frameworks cover
~18% of Monero campaigns; attribution uses CTPH distance <= 0.1.
"""

from repro.analysis import table9_stock_tools
from repro.analysis.exhibits import stock_tool_campaign_share
from repro.reporting.render import format_table


def bench_table9_stock_tools(benchmark, bench_result):
    rows = benchmark(table9_stock_tools, bench_result)
    assert rows
    names = {r["tool"] for r in rows}
    assert names & {"xmrig", "claymore", "niceHash"}
    share = stock_tool_campaign_share(bench_result)
    assert 0.02 < share < 0.5  # paper: ~18%
    print()
    print(format_table(
        ["tool", "#instances", "#versions", "#campaigns"],
        [[r["tool"], r["instances"], r["versions"], r["campaigns"]]
         for r in rows],
        title="Table IX: stock mining tools"))
    print(f"share of XMR campaigns using stock tools: {share*100:.1f}% "
          "(paper: ~18%)")
