"""Worker-count scaling of the extraction stages, plus cache hit rates.

Times the full pipeline at 1 / 2 / 4 extraction workers against the
same world and reports the relative throughput and the hit rates of the
content-keyed memos.  On single-core runners the pooled configurations
mostly measure pool overhead; the cache counters are the
machine-independent part of the output.
"""

import time

from repro.core.pipeline import MeasurementPipeline
from repro.perf.cache import cache_stats, clear_caches

WORKER_COUNTS = (1, 2, 4)


def _timed_run(world, workers):
    clear_caches()
    start = time.perf_counter()
    result = MeasurementPipeline(world, workers=workers).run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def bench_parallel_scaling(benchmark, tiny_world):
    timings = {}
    reference = None
    for workers in WORKER_COUNTS:
        result, elapsed = _timed_run(tiny_world, workers)
        timings[workers] = elapsed
        if reference is None:
            reference = result
        else:
            # scaling must never change the measurement
            assert result.stats == reference.stats
            assert len(result.campaigns) == len(reference.campaigns)

    # the benchmark fixture wants one timed callable; re-time the widest
    # configuration so the run shows up in the comparison table.
    benchmark.pedantic(
        lambda: _timed_run(tiny_world, WORKER_COUNTS[-1]),
        rounds=1, iterations=1)

    print()
    base = timings[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS:
        print(f"workers={workers}: {timings[workers]:6.3f} s "
              f"(x{base / timings[workers]:.2f} vs serial)")
    for name, stats in cache_stats().items():
        print(f"cache {name}: {stats['hits']} hits / "
              f"{stats['misses']} misses "
              f"(hit rate {stats['hit_rate'] * 100:.1f}%)")


def bench_cache_effectiveness(benchmark, tiny_world):
    """Second run against a warm memo: repeat work should be hits."""
    clear_caches()
    MeasurementPipeline(tiny_world).run()  # populate

    result = benchmark.pedantic(
        lambda: MeasurementPipeline(tiny_world).run(),
        rounds=1, iterations=1)
    assert result.stats.miners > 0

    print()
    for name, stats in cache_stats().items():
        print(f"cache {name}: {stats['hits']} hits / "
              f"{stats['misses']} misses "
              f"(hit rate {stats['hit_rate'] * 100:.1f}%)")
