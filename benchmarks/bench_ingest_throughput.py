"""Streaming-ingestion throughput vs the batch pipeline.

Times a full feed replay (daily and monthly windows) against one batch
pipeline run on the same world, reports samples/s and the checkpoint
overhead split (journal vs snapshot cadence), and asserts the streamed
measurement equals the batch one — the benchmark doubles as an
end-to-end equivalence smoke at bench scale.
"""

import time

from repro.core.pipeline import MeasurementPipeline
from repro.ingest import IngestionService
from repro.ingest.service import diff_measurements

BATCH_DAYS = (30, 7)


def _timed_ingest(world, tmp_path, batch_days, snapshot_every):
    start = time.perf_counter()
    service = IngestionService(
        world, tmp_path / f"ck-{batch_days}-{snapshot_every}",
        batch_days=batch_days, snapshot_every=snapshot_every,
        fsync=False)
    ingest = service.run()
    return ingest, time.perf_counter() - start


def bench_ingest_throughput(benchmark, tiny_world, tmp_path):
    batch_start = time.perf_counter()
    expected = MeasurementPipeline(tiny_world).run()
    batch_elapsed = time.perf_counter() - batch_start

    timings = {}
    for batch_days in BATCH_DAYS:
        ingest, elapsed = _timed_ingest(tiny_world, tmp_path,
                                        batch_days, snapshot_every=8)
        assert diff_measurements(expected, ingest.result) == []
        timings[batch_days] = (ingest, elapsed)

    benchmark.pedantic(
        lambda: _timed_ingest(tiny_world, tmp_path / "timed",
                              BATCH_DAYS[0], snapshot_every=8),
        rounds=1, iterations=1)

    print()
    samples = len(tiny_world.samples)
    print(f"batch pipeline: {batch_elapsed:6.3f} s "
          f"({samples / batch_elapsed:7.0f} samples/s)")
    for batch_days, (ingest, elapsed) in timings.items():
        print(f"ingest batch_days={batch_days:3d}: {elapsed:6.3f} s "
              f"({samples / elapsed:7.0f} samples/s, "
              f"{len(ingest.batches)} batches, "
              f"x{elapsed / batch_elapsed:.2f} vs batch)")


def bench_snapshot_cadence(benchmark, tiny_world, tmp_path):
    """Checkpoint overhead as the snapshot interval tightens."""
    timings = {}
    for snapshot_every in (1, 8, 64):
        _, elapsed = _timed_ingest(tiny_world, tmp_path, 30,
                                   snapshot_every)
        timings[snapshot_every] = elapsed

    benchmark.pedantic(
        lambda: _timed_ingest(tiny_world, tmp_path / "timed-cadence",
                              30, snapshot_every=8),
        rounds=1, iterations=1)

    print()
    base = timings[64]
    for snapshot_every, elapsed in sorted(timings.items()):
        print(f"snapshot_every={snapshot_every:3d}: {elapsed:6.3f} s "
              f"(x{elapsed / base:.2f} vs sparse)")
