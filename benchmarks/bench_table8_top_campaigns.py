"""Table VIII — top-10 campaigns by XMR mined.

Paper: C#627 (Freebuf) tops the list with 163K XMR (~22% of the total
741K XMR / 58M USD); the top-10 out-earn the remaining 2,225 campaigns.
"""

from repro.analysis import table8_top_campaigns
from repro.reporting.render import render_table8


def bench_table8_top_campaigns(benchmark, bench_result):
    data = benchmark(table8_top_campaigns, bench_result)
    assert data["rows"]
    # Freebuf's fixture dominates, like C#627 in the paper
    assert data["rows"][0]["xmr"] > 150_000
    assert data["top1_share"] > 0.15          # paper: ~22%
    top10 = sum(r["xmr"] for r in data["rows"])
    rest = data["total_xmr"] - top10
    assert top10 > rest                        # top-10 out-earn the rest
    print()
    print(render_table8(data))
