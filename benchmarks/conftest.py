"""Benchmark fixtures.

Benches share one world at a larger scale than the unit tests (0.04 of
the paper's campaign counts, ~90 XMR campaigns with payments) so the
band structure of Tables VIII/XI and Fig. 5 is populated.  World
generation and the pipeline run are *not* part of the timed sections —
each bench times its exhibit computation; two dedicated benches time
the pipeline stages themselves at a smaller scale.
"""

import pytest

from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig

BENCH_SEED = 2019
BENCH_SCALE = 0.04


@pytest.fixture(scope="session")
def bench_world():
    return generate_world(ScenarioConfig(seed=BENCH_SEED,
                                         scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def bench_result(bench_world):
    return MeasurementPipeline(bench_world).run()


@pytest.fixture(scope="session")
def tiny_world():
    """Smaller world for benches that time the pipeline itself."""
    return generate_world(ScenarioConfig(seed=BENCH_SEED, scale=0.004,
                                         include_junk=False))
