"""Reprolint overhead bench: full-repo lint wall time and throughput.

The lint gate runs on every ``pytest`` invocation
(``tests/test_lint_gate.py``) and in CI's strict job, so its cost has
to stay negligible next to the suite it guards.  This bench times the
complete pass — module discovery, parse, the single traversal with all
six rule families, baseline reconciliation — over the real
``src/repro`` tree and fails if it exceeds a generous wall-time
budget.

The engine parses each module once and walks its AST once regardless
of rule count, so the expected cost is ~parse time for the tree
(well under a second for the ~125-module repo).  Results are printed
as JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint_overhead.py \
        [--iterations 3] [--budget-s 5.0]
"""

import argparse
import json
import sys
import time

from repro.lint import default_source_root, lint_source_tree


def _best_of(fn, iterations):
    best = float("inf")
    result = None
    for _ in range(iterations):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--budget-s", type=float, default=5.0,
                        help="fail when a full-repo lint pass takes "
                             "longer than this")
    args = parser.parse_args(argv)

    best_s, run = _best_of(lint_source_tree, args.iterations)
    report = run.report
    modules = report.modules_scanned

    print(json.dumps({
        "root": str(default_source_root()),
        "iterations": args.iterations,
        "modules": modules,
        "wall_s": round(best_s, 4),
        "modules_per_s": round(modules / best_s, 1) if best_s else None,
        "findings": len(report.findings),
        "regressions": len(run.regressions),
        "parse_errors": len(report.parse_errors),
        "budget_s": args.budget_s,
        "within_budget": best_s <= args.budget_s,
    }, indent=2))

    if report.parse_errors:
        print("FAIL: lint pass hit parse errors", file=sys.stderr)
        return 1
    if run.regressions:
        print("FAIL: unbaselined findings on the tree", file=sys.stderr)
        return 1
    if best_s > args.budget_s:
        print(f"FAIL: lint pass took {best_s:.2f}s, budget "
              f"{args.budget_s:.2f}s", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
