"""Reprolint overhead bench: full-repo lint wall time and throughput.

The lint gate runs on every ``pytest`` invocation
(``tests/test_lint_gate.py``) and in CI's strict job, so its cost has
to stay negligible next to the suite it guards.  This bench times the
complete pass — module discovery, parse, the single traversal with all
per-module rule families, the whole-program passes (call graph +
interprocedural taint, schema contracts, dead-symbol reachability),
baseline reconciliation — over the real ``src/repro`` tree and fails
if it exceeds a generous wall-time budget.

Three configurations are timed:

* **serial** — one process, the default engine;
* **parallel** — per-module parse+walk fanned over a process pool
  (``--workers``), merged deterministically; the project passes still
  run in the parent, so speedup approaches the per-module share of
  total cost (Amdahl), not the worker count — and on a single-core
  host the pool is pure overhead (the JSON records ``cpu_count`` so
  the ratio reads in context);
* **changed-one** — the ``--changed`` fast path with a single-file
  focus and a warm fact cache: the whole program still feeds the
  cross-module passes, but unchanged modules come from the pickled
  summary cache instead of a re-parse (the steady state of an
  edit/lint loop; the first ``--changed`` run after a cold start
  pays one full parse to warm the cache).

Results are printed as JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint_overhead.py \
        [--iterations 3] [--budget-s 5.0] [--workers 4] \
        [--changed-budget-s 1.5]
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.lint import (
    LintEngine,
    default_source_root,
    lint_source_tree,
)


def _best_of(fn, iterations):
    best = float("inf")
    result = None
    for _ in range(iterations):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--budget-s", type=float, default=5.0,
                        help="fail when a full-repo lint pass takes "
                             "longer than this")
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool width for the parallel "
                             "configuration")
    # 1.0s until the unit/kind pass landed; that pass is whole-program
    # (the fixpoint + checks run even when one file changed, ~0.2s on
    # the reference core), so the lane's floor moved and the budget
    # moved with it — same ~40% headroom the cold budget carries.
    parser.add_argument("--changed-budget-s", type=float, default=1.5,
                        help="fail when the one-file --changed path "
                             "takes longer than this")
    args = parser.parse_args(argv)

    root = default_source_root()
    best_s, run = _best_of(lint_source_tree, args.iterations)
    report = run.report
    modules = report.modules_scanned

    parallel_s, parallel_run = _best_of(
        lambda: lint_source_tree(workers=args.workers),
        args.iterations)
    assert [f.render() for f in parallel_run.report.findings] == \
        [f.render() for f in report.findings], \
        "parallel lint diverged from serial"

    # the --changed fast path, pinned to a one-file focus so the
    # number doesn't depend on the working tree's actual diff state;
    # a warm cache in a scratch dir mirrors the edit/lint steady state.
    one_file = "cli.py"
    with tempfile.TemporaryDirectory() as scratch:
        cache_path = Path(scratch) / "reprolint-cache"
        LintEngine(cache_path=cache_path).run(
            root, focus=[one_file])  # warm
        changed_s, changed_report = _best_of(
            lambda: LintEngine(cache_path=cache_path).run(
                root, focus=[one_file]),
            args.iterations)

    print(json.dumps({
        "root": str(root),
        "iterations": args.iterations,
        "modules": modules,
        "wall_s": round(best_s, 4),
        "modules_per_s": round(modules / best_s, 1) if best_s else None,
        "parallel_workers": args.workers,
        "cpu_count": os.cpu_count(),
        "parallel_wall_s": round(parallel_s, 4),
        "parallel_speedup": round(best_s / parallel_s, 2)
        if parallel_s else None,
        "changed_one_file_wall_s": round(changed_s, 4),
        "changed_focus_findings": len(changed_report.findings),
        "findings": len(report.findings),
        "regressions": len(run.regressions),
        "parse_errors": len(report.parse_errors),
        "budget_s": args.budget_s,
        "changed_budget_s": args.changed_budget_s,
        "within_budget": best_s <= args.budget_s,
    }, indent=2))

    if report.parse_errors:
        print("FAIL: lint pass hit parse errors", file=sys.stderr)
        return 1
    if run.regressions:
        print("FAIL: unbaselined findings on the tree", file=sys.stderr)
        return 1
    if best_s > args.budget_s:
        print(f"FAIL: lint pass took {best_s:.2f}s, budget "
              f"{args.budget_s:.2f}s", file=sys.stderr)
        return 1
    if changed_s > args.changed_budget_s:
        print(f"FAIL: one-file --changed path took {changed_s:.2f}s, "
              f"budget {args.changed_budget_s:.2f}s", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
