"""Fig. 6a / 6b — structure of the Freebuf and USA-138 campaigns.

Paper: Freebuf is held together by identifiers + ancestors + the three
CNAME aliases (xt.freebuf.info, x.alibuf.com, xmr.honker.info); USA-138
bridges two clusters through the host 221.9.251.236 and carries one
Electroneum wallet next to three Monero ones.
"""

from repro.analysis import fig6_campaign_structure


def _campaign(world, result, label):
    truth = next(c for c in world.ground_truth if c.label == label)
    return result.campaign_for_wallet(truth.identifiers[0])


def bench_fig6_freebuf(benchmark, bench_world, bench_result):
    campaign = _campaign(bench_world, bench_result, "Freebuf")
    structure = benchmark(fig6_campaign_structure, bench_result, campaign)
    assert structure["wallets"] == 7
    assert set(structure["cname_aliases"]) >= {
        "xt.freebuf.info", "x.alibuf.com", "xmr.honker.info"}
    print()
    print("Freebuf structure:", structure)


def bench_fig6_usa138(benchmark, bench_world, bench_result):
    campaign = _campaign(bench_world, bench_result, "USA-138")
    structure = benchmark(fig6_campaign_structure, bench_result, campaign)
    assert set(structure["coins"]) == {"ETN", "XMR"}
    assert "221.9.251.236" in structure["hosting_ips"]
    assert "xmr.usa-138.com" in structure["cname_aliases"]
    print()
    print("USA-138 structure:", structure)
