"""Table XII — comparison with related measurement studies.

A static comparison table (prior web-cryptojacking and BTC studies)
with this reproduction's own measurement appended as the last row.
"""

from repro.analysis import table12_related_work
from repro.reporting.render import format_table


def bench_table12_related_work(benchmark, bench_result):
    rows = benchmark(table12_related_work, bench_result)
    assert len(rows) == 7
    assert rows[-1]["work"] == "This reproduction"
    print()
    print(format_table(
        ["work", "focus", "analyzed", "detected", "profits"],
        [[r["work"], r["focus"], r["analyzed"], r["detected"],
          r["profits"]] for r in rows],
        title="Table XII: related work"))
