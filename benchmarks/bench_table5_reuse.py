"""Table V — pre-2014 droppers later updated to mine Monero.

Paper: 4 samples first seen in 2012/2013 whose dropper chains later
deliver XMR miners; two of them share the same XMR wallet.
"""

from repro.analysis import table5_pre2014_reuse
from repro.reporting.render import format_table


def bench_table5_pre2014(benchmark, bench_result):
    rows = benchmark(table5_pre2014_reuse, bench_result)
    assert len(rows) == 4
    assert sorted(r["year"] for r in rows) == ["2012", "2013",
                                               "2013", "2013"]
    wallets = [r["xmr_wallet"] for r in rows]
    assert len(set(wallets)) < len(wallets)  # the shared-wallet pair
    print()
    print(format_table(
        ["sha256 (prefix)", "year", "XMR wallet", "campaign"],
        [[r["sha256"][:16], r["year"], r["xmr_wallet"],
          "C#" + r["campaign"]] for r in rows],
        title="Table V: pre-2014 samples later mining Monero"))
