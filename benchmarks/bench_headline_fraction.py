"""§IV-D headline — share of circulating Monero mined illicitly.

Paper: the observed campaigns mined >= 4.37% of all XMR in circulation
(~741K XMR, ~58M USD).  At bench scale (4% of the paper's campaign
population) the expected fraction scales down proportionally; the bench
asserts the scale-adjusted figure lands near the paper's.
"""

from repro.analysis import headline_monero_fraction

BENCH_SCALE = 0.04  # keep in sync with benchmarks/conftest.py


def bench_headline_fraction(benchmark, bench_world, bench_result):
    from repro.corpus.distributions import XMR_BAND_COUNTS, band_of

    headline = benchmark(headline_monero_fraction, bench_result)
    assert headline["total_xmr"] > 0
    # Rescale band-wise: paper band population x measured band mean.
    # The Freebuf/USA-138 fixtures mine their paper-reported totals
    # regardless of scale and are added verbatim.
    fixture_xmr = sum(c.actual_xmr for c in bench_world.ground_truth
                      if c.label is not None)
    band_totals = [0.0] * 4
    band_counts = [0] * 4
    for campaign in bench_world.ground_truth:
        if campaign.coin != "XMR" or campaign.label is not None:
            continue
        if campaign.actual_xmr <= 0:
            continue
        band = band_of(campaign.actual_xmr)
        band_totals[band] += campaign.actual_xmr
        band_counts[band] += 1
    scaled_xmr = fixture_xmr
    for band, (_, _, paper_count) in enumerate(XMR_BAND_COUNTS):
        if band_counts[band]:
            scaled_xmr += (band_totals[band] / band_counts[band]) \
                * paper_count
    scaled_fraction = scaled_xmr / headline["circulating_supply"]
    # the paper's 4.37%, within a factor-2 tolerance
    assert 0.02 < scaled_fraction < 0.09
    print()
    print(f"illicit XMR: {headline['total_xmr']:.0f} "
          f"= {headline['fraction']*100:.3f}% of "
          f"{headline['circulating_supply']/1e6:.1f}M circulating")
    print(f"band-rescaled: {scaled_xmr/1e3:.0f}K XMR -> "
          f"{scaled_fraction*100:.2f}% of supply "
          "(paper: 741K XMR, 4.37%)")
    print(f"estimated USD: {headline['total_usd']/1e6:.1f}M")
