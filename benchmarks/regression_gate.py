#!/usr/bin/env python
"""Throughput regression gate over committed BENCH_*.json baselines.

Compares a fresh bench run against the previously committed JSON for
each suite and fails (exit 1) when any matched point's throughput
metric dropped by more than the threshold (default 25%)::

    PYTHONPATH=src python benchmarks/regression_gate.py \
        --previous-dir . --current-dir /tmp/bench \
        --suites scale,serve,ingest [--threshold 0.25]

Points are matched on their identifying fields (see
``repro.scale.bench.GATE_METRICS``): scale points on (scale, workers),
serve points on (scale, concurrency, workers), ingest points on
(scale, batch_days), lint points on (mode, workers).  Points present
on only one side — a grown or shrunk curve — are reported but never
fail the gate, so CI smoke runs covering a subset of the committed
curve still gate the overlap.  A missing baseline file is a pass
(first run of a new lane).

When both sides carry a ``calibration`` stamp
(:mod:`repro.common.calibrate`), deltas are taken over
machine-normalised ratios, so baselines committed from a faster or
slower box gate code changes rather than hardware.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scale.bench import compare_runs  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="regression-gate",
        description="fail on >threshold throughput regression vs the "
                    "committed BENCH_*.json")
    parser.add_argument("--previous-dir", type=str, default=".",
                        help="directory holding the committed "
                             "baselines (default: repo root)")
    parser.add_argument("--current-dir", type=str, required=True,
                        help="directory holding the fresh run's "
                             "BENCH_*.json")
    parser.add_argument("--suites", type=str, default="scale,serve",
                        help="comma-separated suites to gate")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional throughput drop that fails "
                             "the gate")
    args = parser.parse_args(argv)

    failures = []
    for suite in [s.strip() for s in args.suites.split(",") if s.strip()]:
        previous_path = Path(args.previous_dir) / f"BENCH_{suite}.json"
        current_path = Path(args.current_dir) / f"BENCH_{suite}.json"
        if not current_path.exists():
            print(f"{suite}: no current run at {current_path}; FAIL")
            failures.append(f"{suite}: missing current run")
            continue
        if not previous_path.exists():
            print(f"{suite}: no committed baseline at {previous_path}; "
                  "skipping (first run)")
            continue
        previous = json.loads(previous_path.read_text())
        current = json.loads(current_path.read_text())
        regressions, notes = compare_runs(previous, current,
                                          threshold=args.threshold)
        for note in notes:
            print(f"  {note}")
        for regression in regressions:
            print(f"  REGRESSION: {regression}")
        failures.extend(regressions)
    if failures:
        print(f"regression gate: {len(failures)} failure(s) at "
              f"-{args.threshold:.0%}")
        return 1
    print(f"regression gate: ok (threshold -{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
