"""Throughput of the measurement pipeline itself.

Not a paper exhibit, but the harness that produces all of them: times
the end-to-end pipeline (pooled and serial) and the per-sample
extraction path.  Caches are cleared before each timed run so the
numbers reflect a cold start, not fixture warm-up.
"""

from repro.core.dynamic_analysis import DynamicAnalyzer
from repro.core.extraction import ExtractionEngine
from repro.core.pipeline import MeasurementPipeline
from repro.core.static_analysis import StaticAnalyzer
from repro.perf.cache import clear_caches
from repro.sandbox.emulator import Sandbox

PIPELINE_WORKERS = 4


def bench_full_pipeline(benchmark, tiny_world):
    result = benchmark.pedantic(
        lambda: MeasurementPipeline(
            tiny_world, workers=PIPELINE_WORKERS).run(),
        setup=clear_caches, rounds=1, iterations=1)
    assert result.stats.miners > 0
    print()
    print(f"pipeline (workers={PIPELINE_WORKERS}): "
          f"{result.stats.collected} collected -> "
          f"{result.stats.miners} miners, "
          f"{len(result.campaigns)} campaigns")


def bench_full_pipeline_serial(benchmark, tiny_world):
    result = benchmark.pedantic(
        lambda: MeasurementPipeline(tiny_world).run(),
        setup=clear_caches, rounds=1, iterations=1)
    assert result.stats.miners > 0
    print()
    print(f"pipeline (serial): {result.stats.collected} collected -> "
          f"{result.stats.miners} miners, "
          f"{len(result.campaigns)} campaigns")


def bench_per_sample_extraction(benchmark, tiny_world):
    engine = ExtractionEngine(
        StaticAnalyzer(), DynamicAnalyzer(Sandbox(tiny_world.resolver)),
        tiny_world.vt, tiny_world.pool_directory,
        tiny_world.resolver, tiny_world.passive_dns)
    miners = [s for s in tiny_world.samples if s.kind == "miner"][:50]

    def extract_batch():
        return [engine.extract(s) for s in miners]

    records = benchmark(extract_batch)
    assert sum(1 for r in records if r.identifiers) > len(miners) // 2
