"""Table III — dataset summary (miners, ancillaries, sources).

Paper: 1,230,033 executables = 1,017,110 miners + 212,923 ancillaries;
VT is the biggest source, dynamic analysis the biggest resource.
"""

from repro.analysis import table3_dataset
from repro.reporting.render import format_table


def bench_table3_dataset(benchmark, bench_result):
    rows = benchmark(table3_dataset, bench_result)
    assert rows["Miner Binaries"] > rows["Ancillary Binaries"] > 0
    assert rows["ALL EXECUTABLES"] == (rows["Miner Binaries"]
                                       + rows["Ancillary Binaries"])
    # miner:ancillary ratio near the paper's ~4.8:1
    ratio = rows["Miner Binaries"] / rows["Ancillary Binaries"]
    assert 2.0 < ratio < 12.0
    # feeds overlap (Appendix C): per-source counts exceed the total,
    # exactly like 956K (VT) + 629K (PaloAlto) > 1.23M in Table III
    per_source = (rows.get("Virus Total", 0)
                  + rows.get("Palo Alto Networks", 0))
    assert per_source > rows["ALL EXECUTABLES"]
    print()
    print(format_table(["category", "count"],
                       [[k, v] for k, v in rows.items()],
                       title="Table III: dataset"))
