"""Table XV — e-mail identifiers per pool.

Paper: 4,980 of 5,153 e-mail identifiers mine at minergate, the opaque
pool whose rewards cannot be measured.
"""

from repro.analysis import table15_email_pools
from repro.reporting.render import format_table


def bench_table15_email_pools(benchmark, bench_result):
    rows = benchmark(table15_email_pools, bench_result)
    assert rows
    assert max(rows, key=rows.get) == "minergate"
    total = sum(rows.values())
    assert rows["minergate"] / total > 0.8  # paper: ~97%
    print()
    print(format_table(["pool", "#emails"],
                       [[k, v] for k, v in rows.items()],
                       title="Table XV: e-mail identifiers per pool"))
