"""Table XIV — top-10 wallets by XMR mined.

Paper: the top wallet alone mined ~83K XMR; 2,433 wallets total about
733.6K XMR, mirroring the campaign-level skew.
"""

from repro.analysis import table14_top_wallets
from repro.reporting.render import format_table


def bench_table14_top_wallets(benchmark, bench_result):
    rows = benchmark(table14_top_wallets, bench_result)
    assert rows
    values = [r["xmr"] for r in rows]
    assert values == sorted(values, reverse=True)
    total = sum(p.total_paid for p in bench_result.profiles.values())
    assert rows[0]["xmr"] / total > 0.05  # heavy concentration
    print()
    print(format_table(
        ["wallet", "XMR mined", "USD"],
        [[r["wallet"], f"{r['xmr']:.0f}", f"{r['usd']:.0f}"]
         for r in rows],
        title="Table XIV: top wallets"))
