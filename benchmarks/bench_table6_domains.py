"""Table VI / XIII — domains hosting crypto-mining malware.

Paper: GitHub tops the list; public repos/CDNs (AWS, weebly, Google,
Discord) dominate, showing reliance on legitimate third-party hosting.
"""

from repro.analysis import table6_hosting_domains
from repro.core.aggregation import is_public_repo_host
from repro.reporting.render import format_table


def bench_table6_hosting_domains(benchmark, bench_result):
    rows = benchmark(table6_hosting_domains, bench_result, 25)
    assert rows
    counts = [r[1] for r in rows]
    assert counts == sorted(counts, reverse=True)
    public_in_top10 = sum(1 for domain, _, _ in rows[:10]
                          if is_public_repo_host(domain))
    assert public_in_top10 >= 2  # public hosting prominent, like Table VI
    print()
    print(format_table(["domain", "#samples", "#URLs"], rows,
                       title="Table VI: hosting domains"))
