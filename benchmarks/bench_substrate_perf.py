"""Substrate micro-benchmarks.

Not paper exhibits — throughput numbers for the hot building blocks, so
performance regressions in the substrates (which bound how large a
scenario is practical) are caught by the bench suite.
"""

from repro.binfmt.codegen import pseudo_code
from repro.binfmt.entropy import shannon_entropy
from repro.common.rng import DeterministicRNG
from repro.fuzzyhash.ctph import compare, compute
from repro.pools.pool import MiningPool, PoolConfig
from repro.stratum.channel import make_channel_pair
from repro.stratum.client import StratumClient
from repro.stratum.server import StratumServerSession
from repro.wallets.detect import extract_identifiers
from repro.yarm.builtin import builtin_miner_rules

_RNG = DeterministicRNG(99)
_DATA_4K = pseudo_code(_RNG, 4096)
_DATA_4K_B = bytearray(_DATA_4K)
_DATA_4K_B[100:108] = b"XXXXXXXX"
_DATA_4K_B = bytes(_DATA_4K_B)


def bench_ctph_compute_4k(benchmark):
    fh = benchmark(compute, _DATA_4K)
    assert fh.signature


def bench_ctph_compare(benchmark):
    h1, h2 = compute(_DATA_4K), compute(_DATA_4K_B)
    score = benchmark(compare, h1, h2)
    assert score >= 85


def bench_entropy_4k(benchmark):
    value = benchmark(shannon_entropy, _DATA_4K)
    assert 0 < value < 8


def bench_yara_scan(benchmark):
    rules = builtin_miner_rules()
    data = _DATA_4K + b"stratum+tcp://pool.minexmr.com:4444"
    matches = benchmark(rules.scan, data)
    assert matches


def bench_identifier_extraction(benchmark):
    text = ("xmrig.exe -o stratum+tcp://pool.minexmr.com:4444 "
            "-u 48jTZcLDToL45LcfM7tsVZWTWMBQEcyPLoqLzJsYEBqKHGgCn9i"
            "DJXSGwrugBJRSZvtQuyUWAUxknQNfXZPfUBTZJz2x3Gs -p x") * 3
    found = benchmark(extract_identifiers, text)
    assert isinstance(found, list)


def bench_stratum_session_throughput(benchmark):
    """Login + 50 shares over the in-memory wire, per round."""
    def session():
        client_end, server_end = make_channel_pair()
        pool = MiningPool(PoolConfig("perf"))
        StratumServerSession(server_end, pool, src_ip="10.0.0.1")
        client = StratumClient(client_end, "W")
        client.connect()
        return client.mine(50)

    accepted = benchmark(session)
    assert accepted == 50
