"""Table XI — infrastructure, stealth and activity by profit band.

Paper: CNAME aliases and proxies concentrate in the richest band
(26.7% / 20.0% for >=10K XMR vs 0.3% / 2.6% for <100); campaign
die-off at the PoW forks reaches 72% / 89% / 96%.
"""

from repro.analysis import table11_infrastructure
from repro.analysis.exhibits import fork_dieoff
from repro.reporting.render import render_table11


def bench_table11_infrastructure(benchmark, bench_result):
    columns = benchmark(table11_infrastructure, bench_result)
    assert columns[">=10k"]["cnames"] >= columns["<100"]["cnames"]
    dieoff = fork_dieoff(bench_result)
    assert dieoff[0] > 0.5
    assert dieoff == sorted(dieoff)
    print()
    print(render_table11(columns))
    print("fork die-off: " + " / ".join(f"{d*100:.0f}%" for d in dieoff)
          + "  (paper: 72% / 89% / 96%)")
