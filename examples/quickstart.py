#!/usr/bin/env python3
"""Quickstart: generate a synthetic ecosystem, run the measurement
pipeline, and print the headline findings of the paper.

Usage::

    python examples/quickstart.py [scale]

``scale`` (default 0.01) multiplies campaign counts relative to the
paper's 11,387 campaigns; 0.01 runs in seconds on a laptop.
"""

import sys

from repro.analysis import (
    headline_monero_fraction,
    table4_currencies,
    table8_top_campaigns,
)
from repro.analysis.validation import aggregation_quality
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.reporting.render import render_table4, render_table8


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01

    print(f"== generating synthetic ecosystem (scale={scale}) ==")
    world = generate_world(ScenarioConfig(seed=2019, scale=scale))
    print(f"   {len(world.samples)} samples, "
          f"{len(world.ground_truth)} ground-truth campaigns")

    print("== running the measurement pipeline ==")
    result = MeasurementPipeline(world).run()
    stats = result.stats
    print(f"   collected {stats.collected} -> "
          f"{stats.miners} miners + {stats.ancillaries} ancillaries "
          f"({len(result.campaigns)} campaigns)")

    print()
    print(render_table4(table4_currencies(result)))
    print()
    print(render_table8(table8_top_campaigns(result)))

    headline = headline_monero_fraction(result)
    print()
    print("== headline (paper: >=4.37% of XMR, ~58M USD) ==")
    print(f"   illicit XMR mined: {headline['total_xmr']:.0f} "
          f"({headline['fraction']*100:.2f}% of the "
          f"{headline['circulating_supply']/1e6:.1f}M circulating)")
    print(f"   estimated value:   {headline['total_usd']/1e6:.1f}M USD")

    scores = aggregation_quality(world, result)
    print()
    print("== aggregation quality vs ground truth ==")
    print(f"   pairwise precision={scores.precision:.3f} "
          f"recall={scores.recall:.3f} f1={scores.f1:.3f}")


if __name__ == "__main__":
    main()
