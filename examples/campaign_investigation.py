#!/usr/bin/env python3
"""Case-study walkthrough: investigate the Freebuf and USA-138
campaigns the way §V of the paper does.

Shows the recovered campaign structure (Fig. 6a/6b), the per-wallet
payment timelines (Fig. 6c/7), and the effect of the October 2018
intervention — two wallets banned at minexmr after the authors'
report — plus the PoW-fork die-off (Fig. 8).
"""

from repro.analysis import fig6_campaign_structure, fig7_payment_timeline
from repro.analysis.exhibits import monthly_payment_series
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig


def investigate(result, world, label: str) -> None:
    truth = next(c for c in world.ground_truth if c.label == label)
    campaign = result.campaign_for_wallet(truth.identifiers[0])
    print(f"== {label} (recovered as C#{campaign.campaign_id}) ==")
    structure = fig6_campaign_structure(result, campaign)
    print(f"   samples:  {structure['samples']}")
    print(f"   wallets:  {structure['wallets']} "
          f"({', '.join(sorted(structure['coins']))})")
    print(f"   aliases:  {', '.join(structure['cname_aliases'])}")
    print(f"   hosts:    {', '.join(structure['hosting_ips']) or '-'}")
    print(f"   pools:    {', '.join(structure['pools_used'])}")
    print(f"   earnings: {campaign.total_xmr:.0f} XMR "
          f"({campaign.total_usd/1e6:.2f}M USD)")

    minexmr = world.pool_directory.get("minexmr")
    banned = [w for w in campaign.identifiers if minexmr.is_banned(w)]
    print(f"   banned at minexmr after the report: {len(banned)} wallets")
    for wallet in banned:
        print(f"      {wallet[:12]}... "
              f"({minexmr.distinct_connections(wallet)} distinct IPs)")

    timeline = fig7_payment_timeline(result, campaign)
    monthly = monthly_payment_series(timeline)
    totals = {}
    for series in monthly.values():
        for month, amount in series.items():
            totals[month] = totals.get(month, 0.0) + amount
    print("   payments per quarter (XMR):")
    quarters = {}
    for month, amount in sorted(totals.items()):
        quarter = month[:4] + "-Q" + str((int(month[5:7]) - 1) // 3 + 1)
        quarters[quarter] = quarters.get(quarter, 0.0) + amount
    for quarter, amount in sorted(quarters.items()):
        bar = "#" * max(1, int(40 * amount / max(quarters.values())))
        print(f"      {quarter}  {amount:>9.0f}  {bar}")
    print()


def main() -> None:
    world = generate_world(ScenarioConfig(seed=2019, scale=0.01))
    result = MeasurementPipeline(world).run()
    investigate(result, world, "Freebuf")
    investigate(result, world, "USA-138")
    print("note: the post-2018-Q3 collapse is the combined effect of the "
          "wallet bans\n(authors' intervention) and the October 2018 "
          "PoW change — Fig. 8 of the paper.")


if __name__ == "__main__":
    main()
