#!/usr/bin/env python3
"""Ablation: what each grouping feature buys (§III-E vs prior work).

Runs the pipeline under several grouping policies — the full feature
set, the wallet-only baseline of prior cryptojacking studies, and
leave-one-out variants — and scores each against corpus ground truth.
This is the experiment the paper could not run (no ground truth on real
malware); the synthetic corpus makes it possible.
"""

from repro.analysis.validation import aggregation_quality
from repro.core.aggregation import GroupingPolicy
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.reporting.render import format_table

POLICIES = [
    ("full (paper)", GroupingPolicy.full()),
    ("wallet-only (prior work)", GroupingPolicy.wallet_only()),
    ("no CNAME de-aliasing", GroupingPolicy(cname_aliases=False)),
    ("no ancestor links", GroupingPolicy(ancestors=False)),
    ("no hosting links", GroupingPolicy(hosting=False)),
    ("no proxy links", GroupingPolicy(proxies=False)),
    ("no donation whitelist",
     GroupingPolicy(exclude_donation_wallets=False)),
]


def main() -> None:
    world = generate_world(ScenarioConfig(seed=2019, scale=0.01))
    rows = []
    for label, policy in POLICIES:
        result = MeasurementPipeline(world, policy=policy).run()
        scores = aggregation_quality(world, result)
        rows.append([
            label,
            len(result.campaigns),
            f"{scores.precision:.3f}",
            f"{scores.recall:.3f}",
            f"{scores.f1:.3f}",
        ])
    print(format_table(
        ["policy", "#campaigns", "precision", "recall", "F1"],
        rows,
        title="Campaign-recovery quality by grouping policy",
    ))
    print("\nNotes: wallet-only splits multi-wallet campaigns (recall "
          "drops);\ndisabling the donation whitelist can glue unrelated "
          "campaigns\nthrough developer donation wallets (precision "
          "drops).")


if __name__ == "__main__":
    main()
