#!/usr/bin/env python3
"""Countermeasure evaluation (§VI of the paper, executed).

Runs the four defence directions the paper discusses against one
measured ecosystem and prints their efficacy:

1. pool-domain blacklisting (and the CNAME/proxy evasions);
2. reporting illicit wallets to the pools (the authors' intervention);
3. counterfactual PoW-fork cadences;
4. host CPU monitoring vs an externalised power-meter detector.
"""

from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.defense.blacklist import BlacklistDefense
from repro.defense.fork_policy import compare_cadences
from repro.defense.host_monitor import (
    CpuAnomalyMonitor,
    MinerTrick,
    PowerMeterMonitor,
    typical_day_trace,
)
from repro.defense.intervention import WalletReportingCampaign


def main() -> None:
    world = generate_world(ScenarioConfig(seed=2019, scale=0.01))
    result = MeasurementPipeline(world).run()

    print("== 1. pool-domain blacklisting ==")
    naive = BlacklistDefense(world.pool_directory).evaluate(
        result.miner_records(), result.proxy_ips)
    learned = BlacklistDefense(
        world.pool_directory).evaluate_with_alias_learning(
        result.miner_records(), result.proxy_ips)
    print(f"   naive blacklist:      {naive.blocked}/{naive.total_miners}"
          f" blocked ({naive.block_rate*100:.0f}%)")
    print(f"   evasions: {naive.evaded_by_cname} CNAME, "
          f"{naive.evaded_by_proxy} proxy, "
          f"{naive.evaded_by_raw_ip} raw-IP")
    print(f"   + learned aliases:    {learned.blocked}/"
          f"{learned.total_miners} blocked "
          f"({learned.block_rate*100:.0f}%)")

    print()
    print("== 2. reporting wallets to pools ==")
    report = WalletReportingCampaign(world.pool_directory).run(result)
    print(f"   reported {report.wallets_reported} wallets; "
          f"{report.wallets_banned} banned "
          f"({report.ban_rate*100:.0f}%)")
    print(f"   bans by pool:    {report.bans_by_pool}")
    print(f"   refusals (non-cooperative / below threshold): "
          f"{sum(report.refused_by_pool.values())}")
    print(f"   disrupted run-rate: {report.disrupted_run_rate:.1f} XMR/day")

    print()
    print("== 3. PoW-fork cadence (counterfactual) ==")
    none, historical, quarterly = compare_cadences(world.ground_truth)
    for label, outcome in [("no forks", none),
                           ("historical (3 forks)", historical),
                           ("quarterly forks", quarterly)]:
        print(f"   {label:<22s} retains "
              f"{outcome.retained_fraction*100:5.1f}% of mining-days, "
              f"{outcome.surviving_campaigns}/{outcome.campaigns} "
              "campaigns intact")

    print()
    print("== 4. host CPU monitor vs power meter ==")
    trace = typical_day_trace()
    cpu = CpuAnomalyMonitor()
    power = PowerMeterMonitor()
    print(f"   {'miner behaviour':<18s} {'CPU monitor':<14s} power meter")
    for trick in MinerTrick:
        cpu_hit = cpu.evaluate(trace, trick).detected
        pow_hit = power.evaluate(trace, trick).detected
        print(f"   {trick.value:<18s} "
              f"{'DETECTED' if cpu_hit else 'missed':<14s} "
              f"{'DETECTED' if pow_hit else 'missed'}")
    print("\n   (rootkit-grade miners defeat host monitors; the "
          "externalised\n   power-meter detector the paper proposes "
          "is immune.)")


if __name__ == "__main__":
    main()
