#!/usr/bin/env python3
"""Operator-side economics: what running a mining botnet costs and pays.

Builds on §II (underground price card) and §VIII ("low cost and high
return of investment"): simulates botnet populations under different
operator strategies and prices each operation against mined revenue at
historical XMR rates.
"""

import datetime

from repro.botnet.economics import campaign_roi
from repro.botnet.population import BotnetConfig, BotnetSimulator
from repro.common.rng import DeterministicRNG
from repro.reporting.render import format_table

STRATEGIES = [
    ("small & stealthy (<2K bots)", BotnetConfig(
        initial_installs=1500, target_cap=2000, max_resupplies=6), False),
    ("large, no cap", BotnetConfig(
        initial_installs=8000, target_cap=None, max_resupplies=10,
        resupply_batch=2000), True),
    ("fire-and-forget (no resupply)", BotnetConfig(
        initial_installs=3000, max_resupplies=0, target_cap=None), False),
    ("greedy (no idle mining)", BotnetConfig(
        initial_installs=1500, target_cap=2000, idle_mining=False), False),
]

WINDOW = (datetime.date(2017, 3, 1), datetime.date(2018, 9, 1))


def main() -> None:
    rows = []
    for label, config, uses_proxy in STRATEGIES:
        simulator = BotnetSimulator(config, DeterministicRNG(2019))
        trace = simulator.run(*WINDOW)
        economics = campaign_roi(simulator, trace, uses_proxy=uses_proxy)
        rows.append([
            label,
            economics.installs,
            simulator.peak_bots(trace),
            f"{economics.mined_xmr:.0f}",
            f"${economics.total_cost:,.0f}",
            f"${economics.revenue_usd:,.0f}",
            f"{economics.roi:.1f}x",
        ])
    print(format_table(
        ["strategy", "installs", "peak bots", "XMR", "cost", "revenue",
         "ROI"],
        rows,
        title=f"Operator economics, {WINDOW[0]} to {WINDOW[1]}"))
    print("\nEvery strategy clears its costs by a wide margin — the "
          "paper's\n'low cost, high return' conclusion (§VIII). The "
          "greedy no-idle strategy\nmines more but is the one users "
          "notice (fan noise, slow machine).")


if __name__ == "__main__":
    main()
