#!/usr/bin/env python3
"""Produce the full release bundle for one measured world.

Writes everything a downstream analyst needs into ``out/`` (or the
directory given as argv[1]): the Table I/II dataset CSVs, the campaign
index JSON, per-figure data series, Graphviz DOT files for the two §V
case-study graphs, and the complete markdown measurement report.
"""

import sys
from pathlib import Path

from repro.analysis.graphs import campaign_graph, to_dot
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.reporting.dataset_export import export_all
from repro.reporting.figure_export import export_all_figures
from repro.reporting.summary_report import render_measurement_report


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "out")
    out_dir.mkdir(parents=True, exist_ok=True)

    world = generate_world(ScenarioConfig(seed=2019, scale=0.01))
    result = MeasurementPipeline(world).run()

    counts = export_all(result, out_dir)
    counts.update(export_all_figures(result, world.forum_corpus, out_dir))
    print(f"dataset + figures: {counts}")

    for truth in world.ground_truth:
        if truth.label is None:
            continue
        campaign = result.campaign_for_wallet(truth.identifiers[0])
        if campaign is None:
            continue
        dot_path = out_dir / f"fig6_{truth.label.lower()}.dot"
        dot_path.write_text(to_dot(campaign_graph(campaign),
                                   title=truth.label))
        print(f"wrote {dot_path}")

    report_path = out_dir / "measurement_report.md"
    report_path.write_text(render_measurement_report(world, result))
    print(f"wrote {report_path} "
          f"({len(report_path.read_text().splitlines())} lines)")


if __name__ == "__main__":
    main()
