#!/usr/bin/env python3
"""Underground-economy analysis (§II, Appendix B, Fig. 1).

Generates the synthetic CrimeBB-style forum corpus and reproduces the
paper's observations: Monero overtaking Bitcoin as the most-discussed
mining coin, encrypted miners selling for ~$35, builder services for
~$13, and the recurring proxy / friendly-pool discussion topics.
"""

from repro.common.rng import DeterministicRNG
from repro.forums.corpus import generate_forum_corpus
from repro.forums.trends import (
    coin_thread_shares,
    dominant_coin,
    mining_topic_threads,
    offer_price_stats,
)
from repro.reporting.render import render_fig1


def main() -> None:
    corpus = generate_forum_corpus(DeterministicRNG(2019), scale=1.0)
    print(f"generated {len(corpus)} mining-related forum threads\n")

    print(render_fig1(coin_thread_shares(corpus)))
    print()
    for year in (2013, 2016, 2018):
        print(f"   most-discussed coin in {year}: "
              f"{dominant_coin(corpus, year)}")

    print()
    print("== commoditisation (paper: $35 encrypted miner, $13 builder) ==")
    for kind, label in [("miner_sale", "encrypted miner"),
                        ("builder", "builder service"),
                        ("package", "all-you-need botnet package")]:
        count, average = offer_price_stats(corpus, kind)
        print(f"   {label:<28s} {count:>4d} offers, avg ${average:.0f}")

    print()
    print("== recurring topics ==")
    for keyword in ("proxy", "ban", "2K bots"):
        hits = mining_topic_threads(corpus, keyword)
        print(f"   threads mentioning {keyword!r}: {len(hits)}")
        if hits:
            print(f"      e.g. \"{hits[0].title}\"")


if __name__ == "__main__":
    main()
