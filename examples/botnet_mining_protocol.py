#!/usr/bin/env python3
"""Protocol-level walkthrough: a mining botnet on the wire.

Uses the Stratum substrate directly — no corpus, no pipeline — to show
the mechanics the paper describes:

1. bots mining straight to a pool expose one IP per bot, crossing the
   pool's ban threshold;
2. the same botnet behind a mining proxy shows the pool exactly one IP,
   defeating the connection-count heuristic (§III-E, §VI);
3. a PoW fork strands bots running outdated miners: their shares stop
   validating (the 72% / 89% / 96% die-off mechanism).
"""

from repro.pools.pool import BanPolicy, MiningPool, PoolConfig
from repro.stratum.channel import make_channel_pair
from repro.stratum.client import StratumClient
from repro.stratum.proxy import MiningProxy
from repro.stratum.server import StratumServerSession


def direct_botnet(pool: MiningPool, wallet: str, n_bots: int) -> None:
    print(f"-- {n_bots} bots mining directly to the pool --")
    import datetime
    for i in range(n_bots):
        client_end, server_end = make_channel_pair()
        StratumServerSession(server_end, pool, current_algo="cn/0",
                             src_ip=f"10.1.{i // 256}.{i % 256}")
        bot = StratumClient(client_end, wallet, supported_algo="cn/0")
        bot.connect()
        bot.mine(3)
    print(f"   pool sees {pool.distinct_connections(wallet)} distinct IPs")
    banned = pool.report_wallet(wallet, datetime.date(2018, 9, 27))
    print(f"   abuse report filed -> banned: {banned}")


def proxied_botnet(pool: MiningPool, wallet: str, n_bots: int) -> None:
    print(f"-- the same botnet behind a mining proxy --")
    import datetime
    up_client_end, up_server_end = make_channel_pair()
    StratumServerSession(up_server_end, pool, current_algo="cn/0",
                         src_ip="203.0.113.7")
    upstream = StratumClient(up_client_end, wallet, supported_algo="cn/0")
    proxy = MiningProxy(upstream, "203.0.113.7")
    proxy.connect_upstream()
    for i in range(n_bots):
        bot_end = proxy.accept_bot(f"10.2.{i // 256}.{i % 256}")
        bot = StratumClient(bot_end, f"bot{i}", supported_algo="cn/0")
        bot.connect()
        bot.mine(3)
    stats = proxy.stats()
    print(f"   proxy aggregated {stats['downstream_shares']} shares "
          f"from {stats['distinct_ips']} bots")
    print(f"   pool sees {pool.distinct_connections(wallet)} distinct IP(s)")
    banned = pool.report_wallet(wallet, datetime.date(2018, 9, 27))
    print(f"   abuse report filed -> banned: {banned} "
          "(below the connection threshold)")


def pow_fork(pool: MiningPool, wallet: str) -> None:
    print("-- PoW fork strands outdated bots --")
    client_end, server_end = make_channel_pair()
    session = StratumServerSession(server_end, pool,
                                   current_algo="cn/0", src_ip="10.3.0.1")
    bot = StratumClient(client_end, wallet, supported_algo="cn/0")
    bot.connect()
    accepted = bot.mine(5)
    print(f"   before the fork: {accepted}/5 shares accepted")
    session.set_algo("cn/1")   # 2018-04-06: CryptoNight v7
    bot.poll()
    accepted = bot.mine(5)
    print(f"   after the fork (bot not updated): {accepted}/5 accepted")
    bot.supported_algo = "cn/1"  # the operator pushes an update
    accepted = bot.mine(5)
    print(f"   after the operator updates the bot: {accepted}/5 accepted")


def main() -> None:
    config = PoolConfig(
        "demo-pool", fee=0.01,
        ban_policy=BanPolicy(cooperative=True, min_connections_to_ban=100),
    )
    pool_a = MiningPool(config)
    direct_botnet(pool_a, "WALLET-DIRECT", n_bots=150)
    print()
    pool_b = MiningPool(config)
    proxied_botnet(pool_b, "WALLET-PROXIED", n_bots=150)
    print()
    pool_c = MiningPool(config)
    pow_fork(pool_c, "WALLET-FORK")


if __name__ == "__main__":
    main()
