"""Setuptools shim.

Kept so that ``pip install -e .`` / ``python setup.py develop`` work on
offline environments without the ``wheel`` package (metadata lives in
pyproject.toml).
"""

from setuptools import setup

setup()
