"""Tests for the world-consistency validator."""

import datetime

import pytest

from repro.corpus.model import GroundTruthCampaign
from repro.corpus.validation import validate_world


class TestValidator:
    def test_generated_world_is_valid(self, small_world):
        report = validate_world(small_world)
        assert report.ok, report.issues
        assert report.checks_run >= 7

    def test_detects_inverted_window(self, small_world):
        bad = GroundTruthCampaign(
            campaign_id=999999, actor_id=999999,
            identifier_kind="wallet", coin="XMR",
            start=datetime.date(2018, 6, 1),
            end=datetime.date(2018, 1, 1))
        small_world.ground_truth.append(bad)
        try:
            report = validate_world(small_world)
            assert not report.ok
            assert any("ends before" in issue for issue in report.issues)
        finally:
            small_world.ground_truth.remove(bad)

    def test_detects_pre_monero_campaign(self, small_world):
        bad = GroundTruthCampaign(
            campaign_id=999998, actor_id=999998,
            identifier_kind="wallet", coin="XMR",
            start=datetime.date(2013, 1, 1),
            end=datetime.date(2015, 1, 1))
        small_world.ground_truth.append(bad)
        try:
            report = validate_world(small_world)
            assert any("predates" in issue for issue in report.issues)
        finally:
            small_world.ground_truth.remove(bad)

    def test_detects_donation_wallet_ownership(self, small_world):
        donation = sorted(small_world.stock_catalog.donation_wallets())[0]
        bad = GroundTruthCampaign(
            campaign_id=999997, actor_id=999997,
            identifier_kind="wallet", coin="XMR",
            identifiers=[donation])
        small_world.ground_truth.append(bad)
        try:
            report = validate_world(small_world)
            assert any("donation" in issue for issue in report.issues)
        finally:
            small_world.ground_truth.remove(bad)

    def test_detects_dangling_sample_reference(self, small_world):
        bad = GroundTruthCampaign(
            campaign_id=999996, actor_id=999996,
            identifier_kind="wallet", coin="XMR",
            sample_hashes=["not-a-real-hash"])
        small_world.ground_truth.append(bad)
        try:
            report = validate_world(small_world)
            assert any("missing sample" in issue
                       for issue in report.issues)
        finally:
            small_world.ground_truth.remove(bad)
