"""Cold start from checkpoints and lock-free hot swap.

Scenario under test (the ISSUE acceptance): build an index from a
checkpoint mid-ingestion, let ingestion commit more batches, poll →
the watcher rebuilds and swaps; a request in flight on the old
generation completes consistently on its original index while new
requests already see the new one, and the old generation retires only
once it drains.
"""

import asyncio
import json

import pytest

from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.ingest import IngestionService
from repro.ingest.service import diff_measurements
from repro.serve.app import IntelService
from repro.serve.auth import ApiKeyRegistry
from repro.serve.http import HttpRequest
from repro.serve.index import build_index
from repro.serve.snapshot import (
    CheckpointIndexSource,
    checkpoint_plan,
    measurement_from_checkpoint,
)
from repro.serve.watcher import SnapshotWatcher

_KEY = "swap-key"


@pytest.fixture(scope="module")
def world():
    return generate_world(ScenarioConfig(seed=7, scale=0.003))


@pytest.fixture(scope="module")
def expected(world):
    return MeasurementPipeline(world).run()


class _Stop(Exception):
    """Simulated shutdown partway through ingestion."""


def _ingest(world, checkpoint, stop_after=None, resume=False):
    def hook(point, batch_id):
        if stop_after is not None and point == "post-commit" \
                and batch_id == stop_after:
            raise _Stop(batch_id)
    service = IngestionService(world, checkpoint, batch_days=30,
                               snapshot_every=4, fsync=False,
                               resume=resume,
                               fault_hook=hook if stop_after else None)
    if stop_after is not None:
        with pytest.raises(_Stop):
            service.run()
        return None
    return service.run()


def _req(path):
    return HttpRequest(method="GET", target=path, path=path,
                       headers={"x-api-key": _KEY})


def _registry():
    registry = ApiKeyRegistry()
    registry.add(_KEY)
    return registry


class TestColdStart:
    def test_finished_checkpoint_restores_identically(self, world,
                                                      expected,
                                                      tmp_path):
        checkpoint = tmp_path / "ck"
        _ingest(world, checkpoint)
        plan = checkpoint_plan(checkpoint)
        assert plan["finalized"] is True
        assert plan["batch_days"] == 30
        restored = measurement_from_checkpoint(world, checkpoint)
        assert diff_measurements(expected, restored) == []
        index = build_index(restored, generation=1)
        assert index.counts()["hashes"] == len(expected.records)

    def test_partial_checkpoint_serves_committed_prefix(self, world,
                                                        expected,
                                                        tmp_path):
        checkpoint = tmp_path / "ck"
        _ingest(world, checkpoint, stop_after=90)
        restored = measurement_from_checkpoint(world, checkpoint,
                                               batch_days=30)
        index = build_index(restored, generation=1)
        hashes = index.counts()["hashes"]
        assert 0 < hashes < len(expected.records)
        # everything the partial index knows agrees with the full run
        full = {r.sha256 for r in expected.records}
        served = {intel["sha256"] for intel in index._hashes.values()}
        assert served <= full


class TestWatcherSwap:
    def test_journal_advance_triggers_rebuild_and_swap(self, world,
                                                       expected,
                                                       tmp_path):
        checkpoint = tmp_path / "ck"
        _ingest(world, checkpoint, stop_after=90)
        source = CheckpointIndexSource(world, checkpoint, batch_days=30)
        assert source.stamp() is not None
        service = IntelService(source.build(1), _registry())
        watcher = SnapshotWatcher(service, source)
        watcher.prime()

        # unchanged checkpoint: the poll is a no-op
        assert asyncio.run(watcher.poll_once()) is False
        assert service.generation == 1

        stale_count = service.index.counts()["hashes"]
        missing = sorted({r.sha256 for r in expected.records}
                         - set(service.index._hashes))[0]
        assert service.index.hash_intel(missing) is None

        _ingest(world, checkpoint, resume=True)  # commit the rest
        assert asyncio.run(watcher.poll_once()) is True
        assert watcher.swaps == 1
        assert service.generation == 2
        assert service.index.counts()["hashes"] \
            == len(expected.records) > stale_count
        # the swapped index serves the new fact
        assert service.index.hash_intel(missing) is not None
        assert service.retired_generations == [1]

    def test_inflight_request_completes_on_old_generation(self, world,
                                                          expected,
                                                          tmp_path):
        checkpoint = tmp_path / "ck"
        _ingest(world, checkpoint)
        result = measurement_from_checkpoint(world, checkpoint)
        first = build_index(result, generation=1)
        second = build_index(result, generation=2)

        async def scenario():
            parked = asyncio.Event()
            release = asyncio.Event()
            calls = []

            async def hook(request, index):
                calls.append(index.generation)
                if len(calls) == 1:  # park only the first request
                    parked.set()
                    await release.wait()

            service = IntelService(first, _registry(),
                                   request_hook=hook)
            old_task = asyncio.create_task(
                service.handle(_req("/v1/info")))
            await parked.wait()
            assert service.inflight == 1

            service.swap(second)
            # old generation is drained, not dropped: still un-retired
            assert service.generation == 2
            assert service.retired_generations == []

            # a request racing the parked one answers from gen 2
            fresh = await service.handle(_req("/v1/info"))
            assert json.loads(fresh.body)["generation"] == 2
            assert service.retired_generations == []

            release.set()
            old = await old_task
            # the parked request answered from its original index …
            assert json.loads(old.body)["generation"] == 1
            # … and only its completion retired generation 1
            assert service.retired_generations == [1]
            assert calls == [1, 2]

        asyncio.run(scenario())


class TestServeBenchSmoke:
    def test_sustained_load_swap_is_clean(self):
        from repro.serve.bench import measure_serve_point
        point = measure_serve_point(scale=0.002, seed=11,
                                    duration_s=1.2, concurrency=2)
        assert point["requests"] > 0
        assert point["errors"] == 0
        assert point["swap_clean"] is True
        assert set(point["generations_seen"]) <= {1, 2}
        assert point["p99_ms"] >= point["p50_ms"] >= 0
