"""Unit tests for static analysis, dynamic analysis and extraction."""

import datetime

import pytest

from repro.binfmt.codegen import pseudo_code
from repro.binfmt.format import ExecutableKind, build_binary
from repro.binfmt.packers import CUSTOM_CRYPTER, PACKERS, pack
from repro.common.rng import DeterministicRNG
from repro.core.dynamic_analysis import DynamicAnalyzer
from repro.core.extraction import ExtractionEngine
from repro.core.static_analysis import StaticAnalyzer
from repro.corpus.model import SampleRecord
from repro.intel.vt import VtService, AvReport
from repro.netsim.dns import DnsZone, PassiveDns, Resolver
from repro.pools.directory import default_directory
from repro.sandbox.behavior import (
    BehaviorScript,
    DnsQuery,
    DropFile,
    SpawnProcess,
    StratumSession,
)
from repro.sandbox.emulator import Sandbox, SandboxEnvironment

D = datetime.date

WALLET = ("4" + "7" * 90 +
          "")  # placeholder replaced in fixture


@pytest.fixture
def wallet():
    from repro.wallets.addresses import WalletFactory
    return WalletFactory(DeterministicRNG(31)).new_address("XMR")


@pytest.fixture
def analyzer():
    return StaticAnalyzer()


def binary_with(wallet, host="pool.minexmr.com", port=4444, config=True):
    rng = DeterministicRNG(55)
    cmdline = f"xmrig -o stratum+tcp://{host}:{port} -u {wallet} -p x"
    return build_binary(
        ExecutableKind.PE,
        code=pseudo_code(rng, 1500),
        strings=[cmdline],
        config={"url": f"stratum+tcp://{host}:{port}",
                "user": wallet} if config else None,
    )


class TestStaticAnalysis:
    def test_wallet_extracted(self, analyzer, wallet):
        findings = analyzer.analyze(binary_with(wallet))
        assert wallet in findings.wallets

    def test_stratum_url_extracted(self, analyzer, wallet):
        findings = analyzer.analyze(binary_with(wallet))
        assert ("pool.minexmr.com", 4444) in findings.stratum_urls

    def test_config_pool_extracted(self, analyzer, wallet):
        findings = analyzer.analyze(binary_with(wallet))
        assert findings.config_pool == "pool.minexmr.com"

    def test_packer_identified_and_unpacked(self, analyzer, wallet):
        packed = pack(binary_with(wallet), PACKERS["UPX"])
        findings = analyzer.analyze(packed)
        assert findings.packer == "UPX"
        assert findings.unpacked
        # strings survive because UPX is unpackable
        assert wallet in findings.wallets

    def test_crypter_blocks_statics(self, analyzer, wallet):
        packed = pack(binary_with(wallet), CUSTOM_CRYPTER)
        findings = analyzer.analyze(packed)
        assert findings.packer is None
        assert findings.obfuscated          # entropy heuristic fires
        assert wallet not in findings.wallets

    def test_clean_binary_not_obfuscated(self, analyzer, wallet):
        findings = analyzer.analyze(binary_with(wallet))
        assert not findings.obfuscated


class TestDynamicAnalysis:
    def _sample(self, wallet, host="pool.minexmr.com"):
        behavior = BehaviorScript([
            DnsQuery(host),
            SpawnProcess("xmrig.exe",
                         f"xmrig.exe -o stratum+tcp://{host}:4444 "
                         f"-u {wallet} -p x -t 4"),
            DropFile("payload.exe", "dropped-sha"),
            StratumSession(host=host, port=4444, login=wallet,
                           agent="xmrig/2.8.1"),
        ])
        return SampleRecord(sha256="dyn1", md5="", raw=b"MZ",
                            behavior=behavior, first_seen=None,
                            source="test", kind="miner")

    def _analyzer(self):
        return DynamicAnalyzer(Sandbox())

    def test_login_from_flow(self, wallet):
        findings = self._analyzer().analyze(self._sample(wallet))
        assert wallet in [i.value for i in findings.identifiers]
        assert findings.logins[0][0] == wallet
        assert findings.logins[0][2] == "xmrig/2.8.1"

    def test_cmdline_threads(self, wallet):
        findings = self._analyzer().analyze(self._sample(wallet))
        assert findings.nthreads == 4

    def test_stratum_target(self, wallet):
        findings = self._analyzer().analyze(self._sample(wallet))
        assert ("pool.minexmr.com", 4444) in findings.stratum_targets

    def test_dropped_files(self, wallet):
        findings = self._analyzer().analyze(self._sample(wallet))
        assert findings.dropped == ["dropped-sha"]

    def test_ha_report_reused(self, wallet):
        """When HA already analysed the sample, reuse that report."""
        from repro.intel.ha import HaService
        ha = HaService()
        sandbox = Sandbox()
        sample = self._sample(wallet)
        ha.publish(sandbox.run(sample.sha256, sample.behavior))
        analyzer = DynamicAnalyzer(Sandbox(), ha)
        findings = analyzer.analyze(sample)
        assert findings.logins  # mined from the HA report


class TestExtraction:
    def _engine(self, zone=None):
        zone = zone or DnsZone()
        resolver = Resolver(zone)
        vt = VtService()
        return ExtractionEngine(
            StaticAnalyzer(), DynamicAnalyzer(Sandbox(resolver)),
            vt, default_directory(), resolver, PassiveDns(zone),
        ), vt

    def _sample(self, wallet, host="pool.minexmr.com"):
        behavior = BehaviorScript([
            DnsQuery(host),
            StratumSession(host=host, port=4444, login=wallet),
        ])
        return SampleRecord(
            sha256="x1", md5="", raw=binary_with(wallet, host),
            behavior=behavior, first_seen=None, source="test",
            kind="miner")

    def test_merged_record(self, wallet):
        engine, vt = self._engine()
        vt.add_report(AvReport(sha256="x1",
                               first_seen=D(2018, 3, 1),
                               itw_urls=["http://h.x/m.exe"]))
        record = engine.extract(self._sample(wallet))
        assert record.user == wallet
        assert record.pool == "minexmr"
        assert record.url_pool == "stratum+tcp://pool.minexmr.com:4444"
        assert record.first_seen == D(2018, 3, 1)
        assert record.itw_urls == ["http://h.x/m.exe"]
        assert record.type == "Miner"

    def test_ancillary_type_without_identifiers(self):
        engine, _ = self._engine()
        sample = SampleRecord(
            sha256="anc", md5="",
            raw=build_binary(ExecutableKind.PE, code=b"\x90" * 50,
                             strings=["http://host/x.exe"]),
            behavior=BehaviorScript(), first_seen=None,
            source="test", kind="ancillary")
        record = engine.extract(sample)
        assert record.type == "Ancillary"
        assert not record.is_miner

    def test_cname_dealiasing_live(self, wallet):
        zone = DnsZone()
        zone.add_cname("xt.freebuf.info", "pool.minexmr.com")
        zone.add_a("pool.minexmr.com", "10.0.0.1")
        engine, _ = self._engine(zone)
        record = engine.extract(self._sample(wallet,
                                             host="xt.freebuf.info"))
        assert record.pool == "minexmr"
        assert "xt.freebuf.info" in record.cname_aliases

    def test_cname_dealiasing_passive_history(self, wallet):
        """Expired CNAMEs are recovered via passive DNS (§III-E)."""
        zone = DnsZone()
        zone.add_cname("old.alias.com", "xmr.crypto-pool.fr",
                       valid_to=D(2017, 1, 1))  # long expired
        engine, _ = self._engine(zone)
        record = engine.extract(self._sample(wallet,
                                             host="old.alias.com"))
        assert record.pool == "crypto-pool"
        assert "old.alias.com" in record.cname_aliases

    def test_unknown_domain_no_pool(self, wallet):
        engine, _ = self._engine()
        record = engine.extract(self._sample(wallet,
                                             host="private.pool.xyz"))
        assert record.pool is None
        assert record.cname_aliases == []

    def test_static_only_path(self, wallet):
        engine, _ = self._engine()
        record = engine.extract_static_only(self._sample(wallet))
        assert record.used_static and not record.used_dynamic
        assert wallet in record.identifiers
