"""Tests for the synthetic ecosystem generator and mining driver."""

import datetime
from collections import Counter

import pytest

from repro.corpus.distributions import band_of, BAND_LABELS
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig

D = datetime.date


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = ScenarioConfig(seed=9, scale=0.003,
                                include_case_studies=False,
                                include_junk=False)
        w1 = generate_world(config)
        w2 = generate_world(config)
        assert [s.sha256 for s in w1.samples] == \
            [s.sha256 for s in w2.samples]

    def test_different_seed_different_world(self):
        base = dict(scale=0.003, include_case_studies=False,
                    include_junk=False)
        w1 = generate_world(ScenarioConfig(seed=1, **base))
        w2 = generate_world(ScenarioConfig(seed=2, **base))
        assert [s.sha256 for s in w1.samples] != \
            [s.sha256 for s in w2.samples]


class TestWorldShape:
    def test_sample_kinds(self, small_world):
        kinds = Counter(s.kind for s in small_world.samples)
        assert kinds["miner"] > kinds["ancillary"] > 0
        assert kinds["junk"] > 0

    def test_junk_ratio_applied(self, small_world):
        kinds = Counter(s.kind for s in small_world.samples)
        mining = kinds["miner"] + kinds["ancillary"] + kinds["tool"]
        assert kinds["junk"] == pytest.approx(
            mining * small_world.config.junk_ratio, rel=0.05)

    def test_every_sample_has_vt_report(self, small_world):
        for sample in small_world.samples:
            assert small_world.vt.get_report(sample.sha256) is not None

    def test_unique_hashes(self, small_world):
        hashes = [s.sha256 for s in small_world.samples]
        assert len(hashes) == len(set(hashes))

    def test_currencies_present(self, small_world):
        coins = {c.coin for c in small_world.ground_truth if c.coin}
        assert {"XMR", "BTC", "ZEC", "ETN", "ETH"} <= coins

    def test_email_and_unknown_campaigns(self, small_world):
        kinds = Counter(c.identifier_kind for c in small_world.ground_truth)
        assert kinds["email"] >= 5
        assert kinds["unknown"] >= 2
        assert kinds["wallet"] > kinds["unknown"]

    def test_xmr_band_skew(self, small_world):
        bands = Counter(c.band for c in small_world.ground_truth
                        if c.coin == "XMR" and c.band is not None)
        assert bands[0] > bands.get(2, 0) + bands.get(3, 0)

    def test_pool_dns_configured(self, small_world):
        result = small_world.resolver.resolve("pool.minexmr.com",
                                              D(2018, 6, 1))
        assert result.resolved

    def test_donation_whitelist_populated(self, small_world):
        assert len(small_world.osint.donation_wallets) == 14


class TestMiningDriver:
    def test_earnings_near_targets(self, small_world):
        for campaign in small_world.ground_truth:
            if campaign.coin != "XMR" or campaign.target_xmr <= 0:
                continue
            if campaign.custom_driven:
                continue
            assert campaign.actual_xmr == pytest.approx(
                campaign.target_xmr, rel=0.05), campaign.campaign_id

    def test_payments_within_activity_window(self, small_world):
        for pool in small_world.pool_directory.pools():
            for wallet in pool.known_wallets():
                stats = pool._account(wallet)
                for when, amount in stats.payments:
                    assert amount > 0
                    assert D(2012, 1, 1) <= when <= D(2019, 5, 1)

    def test_btc_earnings_negligible(self, small_world):
        """§IV-B: BTC wallets show <5K USD in total."""
        total_btc = 0.0
        for campaign in small_world.ground_truth:
            if campaign.coin != "BTC":
                continue
            for pool_name in campaign.pools:
                pool = small_world.pool_directory.get(pool_name)
                account = pool._account(campaign.identifiers[0])
                total_btc += account.total_paid
        assert total_btc * 20000 < 5000  # even at peak BTC prices


class TestCaseStudies:
    def _by_label(self, world, label):
        return [c for c in world.ground_truth if c.label == label][0]

    def test_freebuf_target(self, small_world):
        freebuf = self._by_label(small_world, "Freebuf")
        assert freebuf.actual_xmr == pytest.approx(163_756, rel=0.02)
        assert len(freebuf.identifiers) == 7

    def test_freebuf_cnames(self, small_world):
        freebuf = self._by_label(small_world, "Freebuf")
        assert "xt.freebuf.info" in freebuf.cname_domains
        assert "x.alibuf.com" in freebuf.cname_domains

    def test_alibuf_fronted_two_pools(self, small_world):
        targets = small_world.passive_dns.ever_cname_targets("x.alibuf.com")
        assert len(targets) == 2

    def test_freebuf_wallets_banned_after_report(self, small_world):
        freebuf = self._by_label(small_world, "Freebuf")
        minexmr = small_world.pool_directory.get("minexmr")
        banned = [w for w in freebuf.identifiers if minexmr.is_banned(w)]
        assert len(banned) == 2  # the two wallets of Fig. 8

    def test_usa138_target(self, small_world):
        usa = self._by_label(small_world, "USA-138")
        assert usa.actual_xmr == pytest.approx(7_242, rel=0.02)

    def test_usa138_has_etn_wallet(self, small_world):
        usa = self._by_label(small_world, "USA-138")
        etn = [i for i in usa.identifiers if i.startswith("etn")]
        assert len(etn) == 1

    def test_usa138_host_pinned(self, small_world):
        usa = self._by_label(small_world, "USA-138")
        assert any("221.9.251.236" in url for url in usa.hosting_urls)


class TestFixtures:
    def test_pre2014_droppers(self, small_world):
        # BTC campaigns legitimately pre-date 2014; the Table V fixture
        # is the set of pre-2014 samples inside *Monero* campaigns.
        xmr_ids = {c.campaign_id for c in small_world.ground_truth
                   if c.coin == "XMR"}
        old = [s for s in small_world.samples
               if s.first_seen and s.first_seen < D(2014, 1, 1)
               and s.true_campaign_id in xmr_ids]
        assert len(old) == 4
        years = sorted(s.first_seen.year for s in old)
        assert years == [2012, 2013, 2013, 2013]

    def test_known_operations_assigned(self, small_world):
        named = {c.known_operation for c in small_world.ground_truth
                 if c.known_operation}
        assert len(named) >= 3  # scale-limited subset of the six

    def test_operation_iocs_published(self, small_world):
        for operation in small_world.osint.operations():
            if operation.wallets:
                campaign = [c for c in small_world.ground_truth
                            if c.known_operation == operation.name][0]
                assert operation.wallets <= set(campaign.identifiers)


class TestScaling:
    def test_scale_changes_counts(self):
        base = dict(seed=3, include_case_studies=False, include_junk=False)
        small = generate_world(ScenarioConfig(scale=0.002, **base))
        large = generate_world(ScenarioConfig(scale=0.01, **base))
        assert len(large.ground_truth) > len(small.ground_truth)


class TestBandHelper:
    def test_band_of(self):
        assert band_of(5) == 0
        assert band_of(100) == 1
        assert band_of(999.9) == 1
        assert band_of(1000) == 2
        assert band_of(50000) == 3
        assert len(BAND_LABELS) == 4
