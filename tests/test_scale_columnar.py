"""Columnar segment store: exact roundtrip, immutability, discovery."""

import datetime

import pytest

from repro.core.records import MinerRecord
from repro.scale.columnar import RecordStore, SegmentReader, write_segment


def _rich_record(i: int = 0) -> MinerRecord:
    return MinerRecord(
        sha256=f"{i:064x}",
        pool="crypto-pool.fr",
        url_pool="stratum+tcp://xmr.crypto-pool.fr:3333",
        user="W" + "a" * 90,
        password="x",
        nthreads=4,
        agent="xmrig/2.8.1",
        dst_ip="203.0.113.7",
        dst_port=3333,
        dns_rr=["pool.minexmr.com", "backup.minexmr.com"],
        source="virusshare",
        first_seen=datetime.date(2017, 5, 12),
        itw_urls=["http://evil.ru/a.exe"],
        packer="UPX",
        positives=41,
        type="Miner",
        identifiers=["W" + "a" * 90],
        identifier_coins=["XMR"],
        parents=[f"{i + 1:064x}"],
        dropped=[f"{i + 2:064x}"],
        cname_aliases=["mine.ppxxmr.com"],
        proxy_ips=["198.51.100.9"],
        entropy=7.12345678901234,
        obfuscated=True,
        used_dynamic=True,
        used_static=False,
    )


def _sparse_record(i: int = 1) -> MinerRecord:
    # everything optional left at its None/empty default
    return MinerRecord(sha256=f"{i:064x}")


class TestSegmentRoundtrip:
    def test_rich_record_exact(self, tmp_path):
        record = _rich_record()
        path = write_segment([record], tmp_path / "seg-0.rcol")
        with SegmentReader(path) as reader:
            assert len(reader) == 1
            assert reader.record(0) == record

    def test_sparse_record_exact(self, tmp_path):
        record = _sparse_record()
        path = write_segment([record], tmp_path / "seg-0.rcol")
        with SegmentReader(path) as reader:
            out = reader.record(0)
        assert out == record
        assert out.pool is None
        assert out.dst_port is None
        assert out.nthreads is None
        assert out.first_seen is None
        assert out.identifiers == []

    def test_nthreads_zero_distinct_from_none(self, tmp_path):
        zero = _sparse_record(0)
        zero.nthreads = 0
        none = _sparse_record(1)
        path = write_segment([zero, none], tmp_path / "seg-0.rcol")
        with SegmentReader(path) as reader:
            assert reader.record(0).nthreads == 0
            assert reader.record(1).nthreads is None

    def test_none_inside_identifier_coins(self, tmp_path):
        record = _sparse_record()
        record.identifiers = ["Wx", "Wy"]
        record.identifier_coins = ["XMR", None]
        path = write_segment([record], tmp_path / "seg-0.rcol")
        with SegmentReader(path) as reader:
            assert reader.record(0).identifier_coins == ["XMR", None]
            # identifiers_of drops nothing here (no None identifiers)
            assert reader.identifiers_of(0) == ["Wx", "Wy"]

    def test_unicode_strings(self, tmp_path):
        record = _sparse_record()
        record.user = "майнер-中文-\U0001f511"
        record.agent = "agént"
        path = write_segment([record], tmp_path / "seg-0.rcol")
        with SegmentReader(path) as reader:
            out = reader.record(0)
        assert out.user == record.user
        assert out.agent == record.agent

    def test_entropy_is_exact_f64(self, tmp_path):
        record = _sparse_record()
        record.entropy = 7.999999999999999
        path = write_segment([record], tmp_path / "seg-0.rcol")
        with SegmentReader(path) as reader:
            assert reader.record(0).entropy == record.entropy

    def test_many_rows_and_sha_access(self, tmp_path):
        records = [_rich_record(i) if i % 2 else _sparse_record(i)
                   for i in range(100)]
        path = write_segment(records, tmp_path / "seg-0.rcol")
        with SegmentReader(path) as reader:
            assert list(reader.shas()) == [r.sha256 for r in records]
            assert list(reader.iter_records()) == records

    def test_bad_sha_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_segment([MinerRecord(sha256="nothex")],
                          tmp_path / "seg-0.rcol")

    def test_no_tmp_left_behind(self, tmp_path):
        write_segment([_sparse_record()], tmp_path / "seg-0.rcol")
        assert list(tmp_path.glob("*.tmp")) == []

    def test_index_error(self, tmp_path):
        path = write_segment([_sparse_record()], tmp_path / "seg-0.rcol")
        with SegmentReader(path) as reader:
            with pytest.raises(IndexError):
                reader.record(1)

    def test_not_a_segment(self, tmp_path):
        bogus = tmp_path / "seg-x.rcol"
        bogus.write_bytes(b"NOTRCOL!" + b"\x00" * 32)
        with pytest.raises(ValueError):
            SegmentReader(bogus)


class TestRecordStore:
    def test_append_and_iterate_in_order(self, tmp_path):
        store = RecordStore(tmp_path / "store")
        first = [_sparse_record(i) for i in range(3)]
        second = [_rich_record(i) for i in range(10, 13)]
        store.append_segment(first)
        store.append_segment(second)
        assert store.num_segments == 2
        assert len(store) == 6
        assert list(store.iter_records()) == first + second

    def test_named_segments_and_immutability(self, tmp_path):
        store = RecordStore(tmp_path / "store")
        store.append_segment([_sparse_record()], name="batch-000007")
        assert store.has_segment("batch-000007")
        assert not store.has_segment("batch-000008")
        with pytest.raises(FileExistsError):
            store.append_segment([_sparse_record()], name="batch-000007")

    def test_empty_store(self, tmp_path):
        store = RecordStore(tmp_path / "store")
        assert store.num_segments == 0
        assert len(store) == 0
        assert list(store.iter_records()) == []

    def test_empty_segment(self, tmp_path):
        store = RecordStore(tmp_path / "store")
        store.append_segment([])
        assert store.num_segments == 1
        assert len(store) == 0
