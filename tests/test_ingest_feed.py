"""Unit tests for the feed scheduler's batch plan."""

import pytest

from repro.ingest.feed import FeedScheduler


@pytest.fixture(scope="module")
def plan(small_world):
    return FeedScheduler(small_world, batch_days=7).batches()


class TestFeedScheduler:
    def test_exact_coverage(self, small_world, plan):
        """Every sample index appears in exactly one batch."""
        delivered = [i for batch in plan for i in batch.indices]
        assert sorted(delivered) == list(range(len(small_world.samples)))
        assert len(delivered) == len(set(delivered))

    def test_batch_ids_contiguous(self, plan):
        assert [b.batch_id for b in plan] == list(range(len(plan)))

    def test_windows_ordered_and_sized(self, plan):
        """Windows advance strictly and span exactly batch_days days."""
        for batch in plan:
            assert (batch.end - batch.start).days == 6
        for earlier, later in zip(plan, plan[1:]):
            assert earlier.end < later.start

    def test_dated_samples_inside_their_window(self, small_world, plan):
        for batch in plan:
            for index in batch.indices:
                first_seen = small_world.samples[index].first_seen
                if first_seen is None:
                    assert batch.batch_id == 0  # pre-polling backlog
                else:
                    assert batch.start <= first_seen <= batch.end

    def test_feed_order_within_batch(self, small_world, plan):
        """Within a window, samples arrive in first-seen order."""
        for batch in plan:
            dates = [small_world.samples[i].first_seen
                     for i in batch.indices
                     if small_world.samples[i].first_seen is not None]
            assert dates == sorted(dates)

    def test_deterministic_and_cached(self, small_world):
        scheduler = FeedScheduler(small_world, batch_days=7)
        assert scheduler.batches() is scheduler.batches()
        again = FeedScheduler(small_world, batch_days=7).batches()
        assert scheduler.batches() == again

    def test_huge_window_is_one_batch(self, small_world):
        scheduler = FeedScheduler(small_world, batch_days=10**6)
        assert scheduler.num_batches == 1
        assert scheduler.batches()[0].num_samples == \
            len(small_world.samples)

    def test_coarser_windows_mean_fewer_batches(self, small_world):
        daily = FeedScheduler(small_world, batch_days=1).num_batches
        monthly = FeedScheduler(small_world, batch_days=30).num_batches
        assert monthly <= daily
        assert monthly >= 1

    def test_rejects_bad_window(self, small_world):
        with pytest.raises(ValueError):
            FeedScheduler(small_world, batch_days=0)
