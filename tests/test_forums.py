"""Unit tests for the underground-forum substrate (Fig. 1, §II)."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.forums.corpus import generate_forum_corpus
from repro.forums.trends import (
    coin_thread_shares,
    dominant_coin,
    mining_topic_threads,
    offer_price_stats,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_forum_corpus(DeterministicRNG(42), scale=1.0)


class TestGeneration:
    def test_nonempty(self, corpus):
        assert len(corpus) > 500

    def test_deterministic(self):
        c1 = generate_forum_corpus(DeterministicRNG(7), scale=0.3)
        c2 = generate_forum_corpus(DeterministicRNG(7), scale=0.3)
        assert len(c1) == len(c2)
        assert [t.title for t in c1.threads[:20]] == \
            [t.title for t in c2.threads[:20]]

    def test_years_span(self, corpus):
        years = {t.created_on.year for t in corpus.threads}
        assert years == set(range(2012, 2019))

    def test_threads_have_posts(self, corpus):
        assert all(t.posts for t in corpus.threads)


class TestTrends:
    def test_shares_normalised(self, corpus):
        shares = coin_thread_shares(corpus)
        for year, per_coin in shares.items():
            assert sum(per_coin.values()) == pytest.approx(1.0)

    def test_bitcoin_dominates_2012(self, corpus):
        assert dominant_coin(corpus, 2012) == "Bitcoin"

    def test_monero_dominates_2018(self, corpus):
        """The paper's headline Fig. 1 finding."""
        assert dominant_coin(corpus, 2018) == "Monero"

    def test_monero_rises_monotonically(self, corpus):
        shares = coin_thread_shares(corpus)
        series = [shares[y].get("Monero", 0.0) for y in (2015, 2016,
                                                         2017, 2018)]
        assert series[-1] > series[0]

    def test_bitcoin_declines(self, corpus):
        shares = coin_thread_shares(corpus)
        assert shares[2018].get("Bitcoin", 0) < shares[2013]["Bitcoin"]

    def test_dominant_coin_missing_year(self, corpus):
        assert dominant_coin(corpus, 1999) is None


class TestCommoditisation:
    def test_miner_sale_price_near_35(self, corpus):
        """§II: encrypted Monero miners sell for ~$35 on average."""
        count, average = offer_price_stats(corpus, "miner_sale")
        assert count > 10
        assert 28 < average < 42

    def test_builder_price_near_13(self, corpus):
        count, average = offer_price_stats(corpus, "builder")
        assert count > 10
        assert 10 < average < 17

    def test_unknown_kind_empty(self, corpus):
        assert offer_price_stats(corpus, "nonexistent") == (0, 0.0)

    def test_keyword_search(self, corpus):
        hits = mining_topic_threads(corpus, "proxy")
        assert hits
        assert all(
            "proxy" in t.title.lower()
            or any("proxy" in p.body.lower() for p in t.posts)
            for t in hits)
