"""Shared fixtures.

The synthetic world and the pipeline run are expensive (seconds), so
they are session-scoped: every integration test shares one deterministic
world (seed 1, scale 0.01) and one measurement result.
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig


@pytest.fixture
def rng():
    return DeterministicRNG(1234)


@pytest.fixture(scope="session")
def small_world():
    return generate_world(ScenarioConfig(seed=1, scale=0.01))


@pytest.fixture(scope="session")
def pipeline_result(small_world):
    return MeasurementPipeline(small_world).run()


@pytest.fixture(scope="session")
def stock_catalog(small_world):
    return small_world.stock_catalog
