"""Unit tests for the exchange-rate substrate."""

import datetime

import pytest

from repro.market.rates import AVERAGE_XMR_USD, RATES, ExchangeRates

D = datetime.date


class TestXmrRates:
    def test_none_before_launch(self):
        assert RATES["XMR"].rate(D(2013, 1, 1)) is None

    def test_january_2018_peak(self):
        peak = RATES["XMR"].rate(D(2018, 1, 7))
        assert 400 < peak < 540

    def test_late_2018_decay(self):
        assert RATES["XMR"].rate(D(2018, 12, 20)) < 70

    def test_sub_dollar_2015(self):
        assert RATES["XMR"].rate(D(2015, 3, 1)) < 1.5

    def test_interpolation_continuity(self):
        r1 = RATES["XMR"].rate(D(2017, 10, 1))
        r2 = RATES["XMR"].rate(D(2017, 10, 2))
        assert abs(r1 - r2) / r1 < 0.15  # wobble + drift only

    def test_wobble_deterministic(self):
        assert RATES["XMR"].rate(D(2018, 6, 1)) == \
            RATES["XMR"].rate(D(2018, 6, 1))


class TestConversion:
    def test_dated_conversion(self):
        usd = RATES["XMR"].to_usd(10.0, D(2018, 1, 7))
        assert usd > 4000  # near the peak

    def test_fallback_for_undated(self):
        assert RATES["XMR"].to_usd(10.0, None) == \
            pytest.approx(10.0 * AVERAGE_XMR_USD)

    def test_fallback_before_series(self):
        assert RATES["XMR"].to_usd(10.0, D(2012, 1, 1)) == \
            pytest.approx(10.0 * AVERAGE_XMR_USD)

    def test_derived_fallback_for_undated(self):
        """Coins without an explicit fallback get an era average, not
        $0 — undated ETN/BTC payments must not vanish from totals."""
        usd = RATES["ETN"].to_usd(10.0, None)
        assert 10.0 * 0.007 < usd < 10.0 * 0.16  # within anchor range

    def test_derived_fallback_before_series(self):
        assert RATES["BTC"].to_usd(1.0, D(2009, 1, 1)) > 0.0

    def test_btc_2014(self):
        """Huang et al.: 4.5K BTC was worth ~$3.2M around 2014."""
        rate = RATES["BTC"].rate(D(2014, 6, 1))
        assert 2_000_000 < 4500 * rate < 4_500_000


class TestValidation:
    def test_empty_anchors_rejected(self):
        with pytest.raises(ValueError):
            ExchangeRates("X", [])

    def test_first_date(self):
        assert RATES["XMR"].first_date == D(2014, 6, 1)
