"""Batch-vs-incremental equivalence: the streaming headline invariant.

The ingestion service must land on *exactly* the batch pipeline's
output — records, verdicts, funnel stats, proxies, campaign partition
and per-campaign profit — for any batch width, seed and scale, and the
incremental aggregator must agree with the graph aggregator on any
record stream in any order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import CampaignAggregator, GroupingPolicy
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.ingest import IncrementalAggregator, IngestionService
from repro.ingest.service import diff_measurements
from repro.osint.feeds import OsintFeeds
from tests.test_property_aggregation import miner_records


def run_ingest(world, tmp_path, **kwargs):
    kwargs.setdefault("batch_days", 30)
    kwargs.setdefault("fsync", False)
    service = IngestionService(world, tmp_path / "ck", **kwargs)
    return service.run()


class TestEndToEndEquivalence:
    def test_weekly_feed_equals_batch(self, small_world, pipeline_result,
                                      tmp_path):
        ingest = run_ingest(small_world, tmp_path, batch_days=7)
        assert diff_measurements(pipeline_result, ingest.result) == []
        assert ingest.resumed_from == 0
        assert len(ingest.batches) == ingest.total_batches

    def test_parallel_workers_equal_batch(self, small_world,
                                          pipeline_result, tmp_path):
        ingest = run_ingest(small_world, tmp_path, batch_days=60,
                            workers=2)
        assert diff_measurements(pipeline_result, ingest.result) == []

    @pytest.mark.parametrize("batch_days", [1, 30, 365, 10**6])
    def test_any_batch_width(self, tmp_path, batch_days):
        """Daily drops, monthly drops, yearly drops and one mega-batch
        all converge to the same measurement."""
        world = generate_world(ScenarioConfig(seed=7, scale=0.003))
        expected = MeasurementPipeline(world).run()
        ingest = run_ingest(world, tmp_path, batch_days=batch_days)
        assert diff_measurements(expected, ingest.result) == []

    @pytest.mark.parametrize("seed", [2, 3, 11])
    def test_any_seed(self, tmp_path, seed):
        world = generate_world(ScenarioConfig(seed=seed, scale=0.003))
        expected = MeasurementPipeline(world).run()
        ingest = run_ingest(world, tmp_path, batch_days=45)
        assert diff_measurements(expected, ingest.result) == []

    def test_batch_metrics_account_for_every_sample(self, small_world,
                                                    tmp_path):
        ingest = run_ingest(small_world, tmp_path, batch_days=90)
        assert sum(m.samples for m in ingest.batches) == \
            len(small_world.samples)
        assert sum(m.analyzed for m in ingest.batches) == \
            len(small_world.samples)
        assert sum(m.admitted for m in ingest.batches) == \
            len(ingest.result.records)
        assert all(m.new_miners + m.promotions + m.recovered
                   <= m.admitted for m in ingest.batches)


def _clusterings(campaigns):
    return frozenset(frozenset(c.sample_hashes) for c in campaigns)


class TestIncrementalAggregatorProperties:
    @given(miner_records())
    @settings(max_examples=50, deadline=None)
    def test_stream_equals_graph(self, records):
        """Feeding records one at a time reproduces the batch graph's
        campaigns exactly — ids, members, everything."""
        incremental = IncrementalAggregator(OsintFeeds())
        for record in records:
            incremental.add_record(record)
        batch = CampaignAggregator(
            OsintFeeds(), GroupingPolicy.full()).aggregate(records)
        assert incremental.campaigns() == batch

    @given(miner_records(), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_arrival_order_irrelevant(self, records, rnd):
        shuffled = list(records)
        rnd.shuffle(shuffled)
        forward = IncrementalAggregator(OsintFeeds())
        for record in records:
            forward.add_record(record)
        permuted = IncrementalAggregator(OsintFeeds())
        for record in shuffled:
            permuted.add_record(record)
        assert _clusterings(forward.campaigns()) == \
            _clusterings(permuted.campaigns())

    @given(miner_records())
    @settings(max_examples=25, deadline=None)
    def test_materialisation_is_non_destructive(self, records):
        """campaigns() mid-stream never perturbs the final state."""
        probed = IncrementalAggregator(OsintFeeds())
        for record in records:
            probed.add_record(record)
            probed.campaigns()  # observe after every arrival
        unprobed = IncrementalAggregator(OsintFeeds())
        for record in records:
            unprobed.add_record(record)
        assert probed.campaigns() == unprobed.campaigns()

    @given(miner_records())
    @settings(max_examples=25, deadline=None)
    def test_late_proxy_equals_early_proxy(self, records):
        """Learning a proxy IP after the fact yields the same campaigns
        as knowing it up front (the retroactive-edge guarantee)."""
        ip = "198.51.100.7"
        for record in records:
            record.dst_ip = ip
        early = CampaignAggregator(OsintFeeds(), GroupingPolicy.full(),
                                   proxy_ips={ip}).aggregate(records)
        late = IncrementalAggregator(OsintFeeds())
        for record in records:
            late.add_record(record)
        late.add_proxy_ips([ip])
        assert late.campaigns() == early

    def test_duplicate_record_rejected(self):
        from tests.test_core_aggregation import miner
        aggregator = IncrementalAggregator(OsintFeeds())
        aggregator.add_record(miner("s1", wallets=["W1"]))
        with pytest.raises(ValueError, match="duplicate"):
            aggregator.add_record(miner("s1", wallets=["W1"]))
