"""Unit tests for the wallet-address substrate."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.wallets.addresses import COINS, WalletFactory, is_valid_address
from repro.wallets.base58 import b58decode, b58encode, is_base58
from repro.wallets.detect import (
    IdentifierKind,
    classify_identifier,
    extract_identifiers,
)


@pytest.fixture
def factory():
    return WalletFactory(DeterministicRNG(99))


class TestBase58:
    def test_roundtrip(self):
        data = b"\x00\x01\xffhello"
        assert b58decode(b58encode(data)) == data

    def test_leading_zeros(self):
        data = b"\x00\x00\x01"
        encoded = b58encode(data)
        assert encoded.startswith("11")
        assert b58decode(encoded) == data

    def test_empty(self):
        assert b58encode(b"") == ""
        assert b58decode("") == b""

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            b58decode("0OIl")

    def test_is_base58(self):
        assert is_base58("1A2b3C")
        assert not is_base58("0")
        assert not is_base58("")


class TestGeneration:
    def test_all_coins_valid(self, factory):
        for ticker, coin in COINS.items():
            address = factory.new_address(ticker)
            assert address.startswith(coin.prefix)
            assert len(address) == coin.total_length
            assert is_valid_address(address, coin)

    def test_uniqueness(self, factory):
        addresses = {factory.new_address("XMR") for _ in range(200)}
        assert len(addresses) == 200

    def test_checksum_rejects_mutation(self, factory):
        address = factory.new_address("XMR")
        mutated = address[:-1] + ("2" if address[-1] != "2" else "3")
        assert not is_valid_address(mutated)

    def test_truncation_rejected(self, factory):
        address = factory.new_address("BTC")
        assert not is_valid_address(address[:-2])

    def test_email_format(self, factory):
        email = factory.new_email()
        assert "@" in email and "." in email.split("@")[1]

    def test_username_prefix(self, factory):
        assert factory.new_username().startswith("worker_")


class TestClassification:
    def test_each_coin_classifies_to_itself(self, factory):
        for key, coin in COINS.items():
            address = factory.new_address(key)
            classified = classify_identifier(address)
            assert classified.kind is IdentifierKind.WALLET
            # variants (XMR_SUB) classify to their underlying ticker
            assert classified.ticker == coin.ticker, (key, address)

    def test_monero_subaddress(self, factory):
        address = factory.new_address("XMR_SUB")
        assert address.startswith("8")
        classified = classify_identifier(address)
        assert classified.ticker == "XMR"

    def test_email(self, factory):
        classified = classify_identifier(factory.new_email())
        assert classified.kind is IdentifierKind.EMAIL
        assert classified.ticker is None

    def test_username(self, factory):
        classified = classify_identifier(factory.new_username())
        assert classified.kind is IdentifierKind.USERNAME

    def test_garbage_is_unknown(self):
        assert classify_identifier("not-a-wallet").kind is \
            IdentifierKind.UNKNOWN

    def test_whitespace_stripped(self, factory):
        address = factory.new_address("XMR")
        assert classify_identifier(f"  {address} ").value == address


class TestExtraction:
    def test_from_cmdline(self, factory):
        wallet = factory.new_address("XMR")
        cmdline = (f"xmrig.exe -o stratum+tcp://pool.minexmr.com:4444 "
                   f"-u {wallet} -p x")
        found = extract_identifiers(cmdline)
        assert [i.value for i in found] == [wallet]
        assert found[0].ticker == "XMR"

    def test_multiple_identifiers(self, factory):
        w1 = factory.new_address("XMR")
        w2 = factory.new_address("BTC")
        email = factory.new_email()
        text = f"miners: {w1} {w2} contact {email}"
        found = extract_identifiers(text)
        assert {i.value for i in found} == {w1, w2, email}

    def test_deduplication(self, factory):
        wallet = factory.new_address("XMR")
        found = extract_identifiers(f"{wallet} {wallet} {wallet}")
        assert len(found) == 1

    def test_quoted_and_equals_delimiters(self, factory):
        wallet = factory.new_address("XMR")
        found = extract_identifiers(f'--user="{wallet}"')
        assert [i.value for i in found] == [wallet]

    def test_no_false_positives_on_prose(self):
        text = "The quick brown fox jumps over the lazy dog " * 5
        assert extract_identifiers(text) == []
