"""Disjoint-set forest shared by the ingest and sharded aggregators."""

from repro.core.unionfind import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        for node in "abc":
            uf.ensure(node)
        assert len(uf) == 3
        assert uf.num_components() == 3
        assert uf.merges == 0
        assert [sorted(c) for c in uf.components()] == \
            [["a"], ["b"], ["c"]]

    def test_union_fuses(self):
        uf = UnionFind()
        assert uf.union("a", "b") is True
        assert uf.union("a", "b") is False  # redundant: free, uncounted
        assert uf.merges == 1
        assert uf.num_components() == 1
        assert uf.find("a") == uf.find("b")

    def test_transitive(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.union("x", "y")
        assert uf.find("a") == uf.find("c")
        assert uf.find("a") != uf.find("x")
        assert uf.num_components() == 2

    def test_ensure_is_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.ensure("a")
        assert uf.num_components() == 1

    def test_contains(self):
        uf = UnionFind()
        uf.ensure("a")
        assert "a" in uf
        assert "b" not in uf

    def test_insertion_order_preserved(self):
        uf = UnionFind()
        for node in ["d", "b", "a", "c"]:
            uf.ensure(node)
        assert list(uf.nodes()) == ["d", "b", "a", "c"]
        uf.union("a", "d")
        # components ordered by first-node insertion, members likewise
        assert uf.components() == [["d", "a"], ["b"], ["c"]]

    def test_tuple_nodes(self):
        uf = UnionFind()
        uf.union(("sample", "s1"), ("id", "W1"))
        uf.union(("sample", "s2"), ("id", "W1"))
        assert uf.find(("sample", "s1")) == uf.find(("sample", "s2"))

    def test_many_chained_unions(self):
        uf = UnionFind()
        for i in range(100):
            uf.union(i, i + 1)
        assert uf.num_components() == 1
        assert uf.merges == 100
        assert uf.find(0) == uf.find(100)
