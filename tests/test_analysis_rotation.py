"""Tests for the wallet-rotation detector."""

import datetime

import pytest

from repro.analysis.rotation import (
    RotationCandidate,
    detect_rotations,
    score_against_campaigns,
)
from repro.core.pipeline import MeasurementResult
from repro.core.profit import WalletProfile
from repro.core.records import WalletRecord

D = datetime.date


def _profile(wallet, pool, history):
    record = WalletRecord(pool=pool, user=wallet,
                          hashrate_history=history,
                          total_paid=1.0)
    profile = WalletProfile(identifier=wallet, records=[record])
    return profile


def _result_with(profiles):
    return MeasurementResult(records=[], campaigns=[],
                             profiles=profiles, verdicts={},
                             stats=None, proxy_ips=set())


def _steady(start, end, rate, step=7):
    days = []
    current = start
    while current <= end:
        days.append((current, rate))
        current += datetime.timedelta(days=step)
    return days


class TestDetection:
    def test_clean_handover_detected(self):
        profiles = {
            "WA": _profile("WA", "minexmr",
                           _steady(D(2018, 1, 1), D(2018, 4, 1), 5e5)),
            "WB": _profile("WB", "minexmr",
                           _steady(D(2018, 4, 10), D(2018, 9, 1), 4.5e5)),
        }
        candidates = detect_rotations(_result_with(profiles), "minexmr")
        assert len(candidates) == 1
        c = candidates[0]
        assert (c.from_wallet, c.to_wallet) == ("WA", "WB")
        assert c.rate_similarity > 0.8

    def test_large_gap_rejected(self):
        profiles = {
            "WA": _profile("WA", "minexmr",
                           _steady(D(2018, 1, 1), D(2018, 2, 1), 5e5)),
            "WB": _profile("WB", "minexmr",
                           _steady(D(2018, 8, 1), D(2018, 9, 1), 5e5)),
        }
        assert detect_rotations(_result_with(profiles), "minexmr") == []

    def test_concurrent_wallets_not_rotation(self):
        profiles = {
            "WA": _profile("WA", "minexmr",
                           _steady(D(2018, 1, 1), D(2018, 9, 1), 5e5)),
            "WB": _profile("WB", "minexmr",
                           _steady(D(2018, 1, 1), D(2018, 9, 1), 5e5)),
        }
        assert detect_rotations(_result_with(profiles), "minexmr") == []

    def test_dissimilar_rates_rejected(self):
        profiles = {
            "WA": _profile("WA", "minexmr",
                           _steady(D(2018, 1, 1), D(2018, 4, 1), 5e6)),
            "WB": _profile("WB", "minexmr",
                           _steady(D(2018, 4, 10), D(2018, 9, 1), 2e3)),
        }
        assert detect_rotations(_result_with(profiles), "minexmr") == []

    def test_dust_rates_ignored(self):
        profiles = {
            "WA": _profile("WA", "minexmr",
                           _steady(D(2018, 1, 1), D(2018, 4, 1), 10.0)),
            "WB": _profile("WB", "minexmr",
                           _steady(D(2018, 4, 10), D(2018, 9, 1), 10.0)),
        }
        assert detect_rotations(_result_with(profiles), "minexmr") == []

    def test_other_pool_history_not_used(self):
        profiles = {
            "WA": _profile("WA", "crypto-pool",
                           _steady(D(2018, 1, 1), D(2018, 4, 1), 5e5)),
            "WB": _profile("WB", "crypto-pool",
                           _steady(D(2018, 4, 10), D(2018, 9, 1), 5e5)),
        }
        assert detect_rotations(_result_with(profiles), "minexmr") == []


class TestOnMeasuredWorld:
    def test_freebuf_rotation_found(self, small_world, pipeline_result):
        """Freebuf rotates wallets at minexmr around the 2018 forks —
        the detector should surface at least one in-campaign hand-over."""
        candidates = detect_rotations(pipeline_result, "minexmr")
        assert candidates
        scores = score_against_campaigns(candidates, pipeline_result)
        assert scores["inside_campaign"] >= 1

    def test_scores_partition(self, pipeline_result):
        candidates = detect_rotations(pipeline_result, "minexmr")
        scores = score_against_campaigns(candidates, pipeline_result)
        assert sum(scores.values()) == len(candidates)
