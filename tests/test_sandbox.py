"""Unit tests for the sandbox emulator and evasion modelling."""

import datetime

import pytest

from repro.netsim.dns import DnsZone, Resolver
from repro.sandbox.behavior import (
    BehaviorScript,
    CheckIdle,
    CheckSandbox,
    DnsQuery,
    DropFile,
    HttpGet,
    SpawnProcess,
    Stall,
    StratumSession,
)
from repro.sandbox.emulator import Sandbox, SandboxEnvironment


def miner_script(host="pool.minexmr.com", login="WALLET1"):
    return BehaviorScript([
        DnsQuery(host),
        SpawnProcess("xmrig.exe",
                     f"xmrig.exe -o stratum+tcp://{host}:4444 -u {login}"),
        StratumSession(host=host, port=4444, login=login),
    ])


class TestExecution:
    def test_artifacts_collected(self):
        report = Sandbox().run("s1", miner_script())
        assert report.processes and "xmrig.exe" in report.processes[0]
        assert "pool.minexmr.com" in report.dns_queries
        flows = report.flows.stratum_flows()
        assert len(flows) == 1
        assert flows[0].login == "WALLET1"
        assert report.complete

    def test_drop_file_recorded(self):
        script = BehaviorScript([DropFile("m.exe", "abc123")])
        report = Sandbox().run("s1", script)
        assert report.dropped_files == ["abc123"]

    def test_http_recorded(self):
        script = BehaviorScript([HttpGet("http://github.com/x/m.exe")])
        report = Sandbox().run("s1", script)
        assert report.http_urls == ["http://github.com/x/m.exe"]

    def test_ip_endpoint_no_dns(self):
        script = BehaviorScript([
            StratumSession(host="10.1.2.3", port=4444, login="W")])
        report = Sandbox().run("s1", script)
        assert report.dns_queries == []
        assert report.flows.stratum_flows()[0].dst_ip == "10.1.2.3"

    def test_dns_resolution_with_resolver(self):
        zone = DnsZone()
        zone.add_a("pool.minexmr.com", "10.5.5.5")
        sandbox = Sandbox(Resolver(zone), SandboxEnvironment(
            analysis_date=datetime.date(2018, 6, 1)))
        report = sandbox.run("s1", miner_script())
        assert report.flows.stratum_flows()[0].dst_ip == "10.5.5.5"

    def test_unresolved_host_sentinel(self):
        zone = DnsZone()
        sandbox = Sandbox(Resolver(zone), SandboxEnvironment(
            analysis_date=datetime.date(2018, 6, 1)))
        report = sandbox.run("s1", miner_script(host="ghost.example"))
        assert report.flows.stratum_flows()[0].dst_ip == "0.0.0.0"

    def test_unknown_action_raises(self):
        class Weird:
            duration_s = 0.0
        with pytest.raises(TypeError):
            Sandbox().run("s1", BehaviorScript([Weird()]))


class TestEvasion:
    def test_stalling_outlasts_timeout(self):
        """Execution-stalling hides the payload from the sandbox."""
        script = BehaviorScript([
            Stall(seconds=600),
            StratumSession(host="p.x", port=4444, login="W"),
        ])
        report = Sandbox(environment=SandboxEnvironment(timeout_s=300)).run(
            "s1", script)
        assert report.timed_out
        assert not report.flows.stratum_flows()
        assert not report.complete

    def test_stalling_within_budget_observed(self):
        script = BehaviorScript([
            Stall(seconds=100),
            StratumSession(host="p.x", port=4444, login="W"),
        ])
        report = Sandbox(environment=SandboxEnvironment(timeout_s=300)).run(
            "s1", script)
        assert report.flows.stratum_flows()

    def test_idle_check_passes_in_sandbox(self):
        """Idle mining evades users, not sandboxes (§I)."""
        script = BehaviorScript([
            CheckIdle(),
            StratumSession(host="p.x", port=4444, login="W"),
        ])
        report = Sandbox().run("s1", script)
        assert report.flows.stratum_flows()

    def test_sandbox_detection_deterministic(self):
        script = BehaviorScript([
            CheckSandbox(detectability=0.5),
            StratumSession(host="p.x", port=4444, login="W"),
        ])
        r1 = Sandbox().run("same-sample", script)
        r2 = Sandbox().run("same-sample", script)
        assert r1.aborted_by_evasion == r2.aborted_by_evasion

    def test_certain_detection_aborts(self):
        script = BehaviorScript([
            CheckSandbox(detectability=1.0),
            StratumSession(host="p.x", port=4444, login="W"),
        ])
        report = Sandbox().run("s1", script)
        assert report.aborted_by_evasion
        assert not report.flows.stratum_flows()

    def test_hardened_environment_defeats_detection(self):
        """Bare-metal analysis (the paper's [7]) sees everything."""
        script = BehaviorScript([
            CheckSandbox(detectability=1.0),
            StratumSession(host="p.x", port=4444, login="W"),
        ])
        env = SandboxEnvironment(hardened=True)
        report = Sandbox(environment=env).run("s1", script)
        assert not report.aborted_by_evasion
        assert report.flows.stratum_flows()

    def test_non_sandbox_environment_not_detected(self):
        script = BehaviorScript([CheckSandbox(detectability=1.0)])
        env = SandboxEnvironment(is_sandbox=False)
        report = Sandbox(environment=env).run("s1", script)
        assert not report.aborted_by_evasion


class TestBehaviorScript:
    def test_append_chains(self):
        script = BehaviorScript().append(CheckIdle()).append(
            DnsQuery("x.y"))
        assert len(script) == 2

    def test_stratum_sessions_filter(self):
        script = miner_script()
        assert len(script.stratum_sessions()) == 1
