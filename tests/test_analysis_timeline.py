"""Tests for ecosystem timeline analytics and scenario presets."""

import pytest

from repro.analysis.timeline import (
    active_campaigns_per_month,
    average_monthly_usd,
    campaign_starts_per_month,
    monthly_ecosystem_series,
    peak_month,
)
from repro.corpus.model import ScenarioConfig
from repro.corpus.scenarios import available_scenarios, scenario


class TestMonthlySeries:
    def test_series_sorted_and_positive(self, pipeline_result):
        series = monthly_ecosystem_series(pipeline_result)
        assert series
        months = [p.month for p in series]
        assert months == sorted(months)
        assert all(p.xmr_paid > 0 for p in series)
        assert all(p.wallets_paid >= 1 for p in series)

    def test_usd_tracks_price_regime(self, pipeline_result):
        """USD/XMR ratio must be far higher near the Jan-2018 peak than
        in the 2016 sub-10-dollar era."""
        series = monthly_ecosystem_series(pipeline_result)
        by_month = {p.month: p for p in series}
        early = [p for m, p in by_month.items() if m < "2016-09"]
        peak = [p for m, p in by_month.items()
                if "2017-12" <= m <= "2018-02"]
        if early and peak:
            early_rate = sum(p.usd_paid for p in early) / \
                sum(p.xmr_paid for p in early)
            peak_rate = sum(p.usd_paid for p in peak) / \
                sum(p.xmr_paid for p in peak)
            assert peak_rate > early_rate * 10

    def test_post_fork_collapse(self, pipeline_result):
        """XMR paid per month collapses after the October 2018 fork +
        intervention (Fig. 7/8 at ecosystem level)."""
        series = monthly_ecosystem_series(pipeline_result)
        mid_2018 = [p.xmr_paid for p in series
                    if "2018-04" <= p.month <= "2018-09"]
        early_2019 = [p.xmr_paid for p in series
                      if "2019-01" <= p.month <= "2019-04"]
        assert mid_2018 and early_2019
        assert max(early_2019) < max(mid_2018)

    def test_average_monthly_usd_range_filter(self, pipeline_result):
        series = monthly_ecosystem_series(pipeline_result)
        overall = average_monthly_usd(series)
        windowed = average_monthly_usd(series, first="2018-01",
                                       last="2018-06")
        assert overall > 0
        assert windowed >= 0
        assert average_monthly_usd(series, first="2030-01") == 0.0

    def test_peak_month(self, pipeline_result):
        series = monthly_ecosystem_series(pipeline_result)
        peak = peak_month(series)
        assert peak is not None
        assert peak.usd_paid == max(p.usd_paid for p in series)
        assert peak_month([]) is None


class TestCampaignActivity:
    def test_active_campaigns_counts(self, pipeline_result):
        active = active_campaigns_per_month(pipeline_result)
        assert active
        paying = len([c for c in pipeline_result.campaigns
                      if c.total_xmr > 0])
        assert max(active.values()) <= paying

    def test_starts_per_month(self, pipeline_result):
        starts = campaign_starts_per_month(pipeline_result)
        total = sum(starts.values())
        with_fs = len([c for c in pipeline_result.campaigns
                       if c.first_seen is not None])
        assert total == with_fs


class TestScenarios:
    def test_known_presets(self):
        assert {"smoke", "test", "bench", "large"} <= \
            set(available_scenarios())

    def test_fresh_instances(self):
        a = scenario("smoke")
        b = scenario("smoke")
        assert a is not b
        a.scale = 99.0
        assert scenario("smoke").scale != 99.0

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            scenario("nope")

    def test_presets_are_valid_configs(self):
        for name in available_scenarios():
            config = scenario(name)
            assert isinstance(config, ScenarioConfig)
            assert config.scale > 0
