"""Tests for the sanity-funnel evaluation (§VI quantified)."""

import pytest

from repro.analysis.groundtruth_eval import (
    FunnelQuality,
    av_threshold_sweep,
    funnel_quality,
)
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig


class TestFunnelQuality:
    def test_high_precision_at_default_threshold(self, small_world,
                                                 pipeline_result):
        quality = funnel_quality(small_world, pipeline_result)
        # the paper errs on minimising FPs (§VI)
        assert quality.precision > 0.99

    def test_fn_exist_as_paper_acknowledges(self, small_world,
                                            pipeline_result):
        quality = funnel_quality(small_world, pipeline_result)
        assert quality.false_negatives > 0  # the under-approximation
        assert quality.recall > 0.8

    def test_junk_rejected(self, small_world, pipeline_result):
        quality = funnel_quality(small_world, pipeline_result)
        junk_total = sum(1 for s in small_world.samples
                         if s.kind == "junk")
        assert quality.true_negatives > junk_total * 0.95

    def test_counts_partition_non_tool_samples(self, small_world,
                                               pipeline_result):
        quality = funnel_quality(small_world, pipeline_result)
        non_tool = sum(1 for s in small_world.samples
                       if s.kind != "tool")
        assert (quality.true_positives + quality.false_positives
                + quality.false_negatives
                + quality.true_negatives) == non_tool

    def test_metric_edge_cases(self):
        empty = FunnelQuality(0, 0, 0, 10)
        assert empty.precision == 1.0
        assert empty.recall == 1.0
        zero = FunnelQuality(0, 5, 5, 0)
        assert zero.f1 == 0.0


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        world = generate_world(ScenarioConfig(
            seed=21, scale=0.004, include_case_studies=False))
        return av_threshold_sweep(world, thresholds=(3, 10, 20))

    def test_recall_monotone_down_in_threshold(self, sweep):
        recalls = [row["recall"] for row in sweep]
        assert recalls == sorted(recalls, reverse=True)

    def test_kept_miners_monotone(self, sweep):
        kept = [row["kept_miners"] for row in sweep]
        assert kept == sorted(kept, reverse=True)

    def test_paper_conjecture_on_five_avs(self, sweep):
        """Low thresholds stay precise because the tool whitelist soaks
        the likeliest FPs — the §VI conjecture."""
        low = sweep[0]
        assert low["threshold"] == 3.0
        assert low["precision"] > 0.95
