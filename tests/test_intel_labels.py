"""Tests for AV-label normalisation."""

import datetime

import pytest

from repro.intel.labels import (
    family_distribution,
    family_of,
    normalize_token,
    tokenize_label,
)
from repro.intel.vt import AV_VENDORS, AvReport

D = datetime.date


def report_with_labels(labels):
    detections = {
        AV_VENDORS[i]: (label, D(2018, 1, 1))
        for i, label in enumerate(labels)
    }
    return AvReport(sha256="x", detections=detections)


class TestTokenisation:
    def test_generic_tokens_dropped(self):
        assert tokenize_label("Trojan.Generic.Agent") == []

    def test_family_token_kept(self):
        assert "virut" in tokenize_label("Win32.Virut.ab")

    def test_hex_variants_dropped(self):
        tokens = tokenize_label("Trojan.CoinMiner.deadbeef")
        assert "deadbeef" not in tokens

    def test_short_tokens_dropped(self):
        assert tokenize_label("W32.ab.x") == []

    def test_separators(self):
        assert tokenize_label("Win32/Virut!gen") == ["virut"]


class TestNormalisation:
    def test_miner_synonyms_collapse(self):
        for token in ("coinminer", "bitcoinminer", "miner",
                      "cryptonight", "xmrig"):
            assert normalize_token(token) == "coinminer"

    def test_other_tokens_preserved(self):
        assert normalize_token("virut") == "virut"


class TestFamilyVote:
    def test_plurality(self):
        report = report_with_labels([
            "Trojan.CoinMiner.aa", "Win32.BitcoinMiner.x",
            "Riskware.Miner", "Win32.Virut.b"])
        assert family_of(report) == "coinminer"

    def test_min_votes_threshold(self):
        report = report_with_labels(["Win32.Virut.b"])
        assert family_of(report) is None
        assert family_of(report, min_votes=1) == "virut"

    def test_all_generic_is_none(self):
        report = report_with_labels(["Trojan.Generic.a",
                                     "Malware.Heur.b"])
        assert family_of(report) is None

    def test_distribution(self):
        reports = [
            report_with_labels(["Trojan.CoinMiner.a", "PUA.Miner.b"]),
            report_with_labels(["Win32.Virut.a", "Virut.gen"]),
        ]
        dist = family_distribution(reports)
        assert dist == {"coinminer": 1, "virut": 1}

    def test_on_world_miners(self, small_world):
        """Most generated miner samples vote 'coinminer'."""
        miners = [s for s in small_world.samples
                  if s.kind == "miner"][:100]
        reports = [small_world.vt.get_report(s.sha256) for s in miners]
        dist = family_distribution(reports)
        assert dist.get("coinminer", 0) > len(miners) * 0.5
