"""HTTP layer: auth, rate limiting, routing, metrics, real sockets.

Auth and throttling run against the transport-free ``handle()``
coroutine with an explicit fake clock — no sleeping.  One class runs
the full stack over real sockets (BackgroundServer + the bundled
client), which is also what CI's smoke job exercises.
"""

import asyncio
import json

import pytest

from repro.serve.app import MAX_SCAN_IOCS, IntelService
from repro.serve.auth import ApiKeyRegistry, TokenBucket
from repro.serve.client import IntelClient
from repro.serve.http import BackgroundServer, HttpRequest
from repro.serve.index import build_index

_KEY = "test-key"


@pytest.fixture(scope="module")
def index(pipeline_result):
    return build_index(pipeline_result, generation=1, source="test")


def _service(index, rate=0.0, burst=10, clock=None):
    registry = ApiKeyRegistry(clock=clock) if clock else ApiKeyRegistry()
    registry.add(_KEY, name="tests", rate=rate, burst=burst)
    return IntelService(index, registry)


def _req(method, path, key=_KEY, body=b"", headers=None):
    all_headers = dict(headers or {})
    if key:
        all_headers.setdefault("x-api-key", key)
    return HttpRequest(method=method, target=path, path=path,
                       headers=all_headers, body=body)


def _call(service, request):
    response = asyncio.run(service.handle(request))
    return response.status, json.loads(response.body)


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestAuth:
    def test_healthz_needs_no_key(self, index):
        status, payload = _call(_service(index),
                                _req("GET", "/v1/healthz", key=None))
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["generation"] == 1
        assert payload["pid"] > 0

    def test_missing_key_is_401(self, index):
        status, _ = _call(_service(index), _req("GET", "/v1/info",
                                                key=None))
        assert status == 401

    def test_wrong_key_is_401(self, index):
        status, _ = _call(_service(index), _req("GET", "/v1/info",
                                                key="not-the-key"))
        assert status == 401

    def test_bearer_header_accepted(self, index):
        request = _req("GET", "/v1/info", key=None,
                       headers={"authorization": f"Bearer {_KEY}"})
        status, payload = _call(_service(index), request)
        assert status == 200
        assert payload["generation"] == 1


class TestRateLimit:
    def test_bucket_refills_at_rate(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.allow() == (True, 0.0)
        assert bucket.allow() == (True, 0.0)
        allowed, retry = bucket.allow()
        assert not allowed and retry == pytest.approx(0.5)
        clock.t += 0.5
        assert bucket.allow() == (True, 0.0)

    def test_burst_then_429_with_retry_after(self, index):
        clock = _FakeClock()
        service = _service(index, rate=1.0, burst=2, clock=clock)
        assert _call(service, _req("GET", "/v1/info"))[0] == 200
        assert _call(service, _req("GET", "/v1/info"))[0] == 200
        response = asyncio.run(service.handle(_req("GET", "/v1/info")))
        assert response.status == 429
        assert float(response.headers["retry-after"]) > 0
        assert json.loads(response.body)["retry_after_s"] > 0
        clock.t += 1.0
        assert _call(service, _req("GET", "/v1/info"))[0] == 200

    def test_unlimited_key_never_throttled(self, index):
        service = _service(index, rate=0.0)
        for _ in range(50):
            assert _call(service, _req("GET", "/v1/healthz"))[0] == 200


class TestRouting:
    def test_unknown_endpoint_is_404(self, index):
        assert _call(_service(index),
                     _req("GET", "/v1/nonsense"))[0] == 404

    def test_unknown_hash_is_404(self, index):
        status, payload = _call(_service(index),
                                _req("GET", f"/v1/hash/{'f' * 64}"))
        assert status == 404
        assert payload["found"] is False

    def test_non_integer_campaign_is_400(self, index):
        assert _call(_service(index),
                     _req("GET", "/v1/campaign/abc"))[0] == 400

    def test_wrong_method_is_405(self, index):
        assert _call(_service(index),
                     _req("POST", "/v1/hash/abc"))[0] == 405
        assert _call(_service(index), _req("GET", "/v1/scan"))[0] == 405

    def test_scan_rejects_bad_bodies(self, index):
        service = _service(index)
        cases = [b"not json", b"[]", b"{}",
                 json.dumps({"iocs": "not-a-list"}).encode(),
                 json.dumps({"iocs": ["a"] * (MAX_SCAN_IOCS + 1)}
                            ).encode()]
        for body in cases:
            assert _call(service,
                         _req("POST", "/v1/scan", body=body))[0] == 400

    def test_every_response_carries_generation(self, index,
                                               pipeline_result):
        service = _service(index)
        sha = pipeline_result.records[0].sha256
        for request in [_req("GET", f"/v1/hash/{sha}"),
                        _req("GET", "/v1/hash/" + "f" * 64),
                        _req("GET", "/v1/info"),
                        _req("GET", "/v1/metrics")]:
            _, payload = _call(service, request)
            assert payload["generation"] == 1


class TestMetrics:
    def test_requests_are_observed_per_endpoint(self, index):
        service = _service(index)
        for _ in range(3):
            _call(service, _req("GET", "/v1/info"))
        _call(service, _req("GET", "/v1/info", key="bad"))
        snapshot = service.metrics.snapshot()
        endpoint = snapshot["endpoints"]["GET /v1/info"]
        assert endpoint["requests"] == 4
        assert endpoint["by_status"] == {"200": 3, "401": 1}
        assert endpoint["p50_ms"] >= 0
        assert snapshot["requests_total"] == 4


class TestRealSockets:
    """Full stack: asyncio server on its own thread + bundled client."""

    def test_point_scan_and_metrics_roundtrip(self, index,
                                              pipeline_result):
        service = _service(index)
        record = pipeline_result.records[0]
        with BackgroundServer(service.handle) as server:
            with IntelClient(server.host, server.port,
                             api_key=_KEY) as client:
                assert client.healthz()["status"] == "ok"
                info = client.info()
                assert info["hashes"] == len(pipeline_result.records)

                intel = client.hash_intel(record.sha256)["intel"]
                assert intel == index.hash_intel(record.sha256)
                assert client.hash_intel("f" * 64) is None
                assert client.campaign_intel(1)["intel"] \
                    == index.campaign_intel(1)

                scan = client.scan(iocs=[record.sha256, "junk"])
                assert scan["num_hits"] >= 1
                assert record.sha256 in {h["indicator"]
                                         for h in scan["hits"]}

                metrics = client.metrics()
                assert metrics["requests_total"] >= 5

    def test_unauthenticated_socket_client_gets_401(self, index):
        service = _service(index)
        with BackgroundServer(service.handle) as server:
            with IntelClient(server.host, server.port) as client:
                status, _ = client.request("GET", "/v1/info")
                assert status == 401
