"""Tests for the full measurement report."""

import pytest

from repro.cli import main as cli_main
from repro.reporting.summary_report import render_measurement_report


@pytest.fixture(scope="module")
def report(small_world, pipeline_result):
    return render_measurement_report(small_world, pipeline_result)


class TestMeasurementReport:
    def test_all_sections_present(self, report):
        for heading in ("## Dataset (Table III)",
                        "## Underground forums (Fig. 1)",
                        "## Currencies (Table IV)",
                        "## Mining pools (Table VII)",
                        "## Top campaigns (Table VIII)",
                        "## Infrastructure by profit band (Table XI)",
                        "## Headline (§IV-D)",
                        "## Aggregation quality vs ground truth"):
            assert heading in report, heading

    def test_case_studies_embedded(self, report):
        assert "# Freebuf" in report
        assert "# USA-138" in report

    def test_headline_numbers_present(self, report):
        assert "share of circulating supply" in report
        assert "pairwise precision" in report

    def test_dieoff_line(self, report):
        assert "PoW-fork die-off" in report

    def test_cli_fullreport(self, tmp_path):
        out = tmp_path / "report.md"
        code = cli_main(["fullreport", "--scale", "0.002", "--seed", "5",
                         "--output", str(out)])
        assert code == 0
        text = out.read_text()
        assert "## Dataset (Table III)" in text
