"""Multi-process serving fleet: real forks, real sockets.

A two-worker :class:`~repro.serve.fleet.ServerFleet` over the shared
pipeline-result index: point lookups and a bulk ``/v1/scan`` answered
correctly, connections actually landing on the forked children (every
``/v1/healthz`` pid is one of the fleet's), and ``stop()`` leaving no
live child behind.  POSIX-only by construction — the fleet refuses to
start without ``os.fork``.
"""

import os
import signal

import pytest

from repro.serve.app import IntelService
from repro.serve.auth import ApiKeyRegistry
from repro.serve.client import IntelClient
from repro.serve.fleet import ServerFleet, reuse_port_supported
from repro.serve.index import build_index

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="ServerFleet requires os.fork")

_KEY = "fleet-key"


@pytest.fixture(scope="module")
def index(pipeline_result):
    return build_index(pipeline_result, generation=1, source="test")


@pytest.fixture(scope="module")
def service(index):
    registry = ApiKeyRegistry()
    registry.add(_KEY, name="tests")
    return IntelService(index, registry)


def _healthz_pid(host, port):
    with IntelClient(host, port, api_key=_KEY) as client:
        status, payload = client.request("GET", "/v1/healthz")
    assert status == 200
    return payload["pid"]


class TestServerFleet:
    def test_rejects_zero_workers(self, service):
        with pytest.raises(ValueError):
            ServerFleet(service.handle, workers=0)

    def test_reuse_port_probe_is_boolean(self):
        assert reuse_port_supported() in (True, False)

    def test_two_worker_smoke(self, service, index):
        parent = os.getpid()
        with ServerFleet(service.handle, workers=2) as fleet:
            assert len(fleet.pids) == 2
            assert parent not in fleet.pids
            assert sorted(fleet.alive()) == sorted(fleet.pids)

            # every keep-alive connection is held by one of the forked
            # children (which one the kernel picks is its business)
            seen = {_healthz_pid(fleet.host, fleet.port)
                    for _ in range(8)}
            assert seen <= set(fleet.pids)

            # point + bulk queries answer from the pre-fork COW index
            wallet = index.examples(limit=1)["wallets"][0]
            sha = index.examples(limit=1)["hashes"][0]
            with IntelClient(fleet.host, fleet.port,
                             api_key=_KEY) as client:
                status, payload = client.request(
                    "GET", f"/v1/wallet/{wallet}")
                assert status == 200
                assert payload["found"] is True
                assert payload["kind"] == "wallet"
                status, payload = client.request(
                    "POST", "/v1/scan",
                    body={"iocs": [sha, wallet, "not-an-ioc"]})
                assert status == 200
                hits = {h["indicator"] for h in payload["hits"]}
                assert {sha, wallet} <= hits
                assert payload["submitted"] == 3
                assert payload["generation"] == 1
            pids = list(fleet.pids)
        # clean exit: every child reaped, none left running
        assert fleet.pids == []
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_stop_is_idempotent(self, service):
        fleet = ServerFleet(service.handle, workers=2).start()
        fleet.stop()
        fleet.stop()
        assert fleet.alive() == []

    def test_children_exit_on_sigterm(self, service):
        fleet = ServerFleet(service.handle, workers=2).start()
        try:
            victim = fleet.pids[0]
            os.kill(victim, signal.SIGTERM)
            _done, status = os.waitpid(victim, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            # the surviving worker still answers on the shared port
            assert _healthz_pid(fleet.host, fleet.port) == fleet.pids[1]
        finally:
            fleet.stop()
