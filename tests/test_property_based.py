"""Property-based tests (hypothesis) on the core data structures."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binfmt.entropy import shannon_entropy
from repro.binfmt.format import ExecutableKind, build_binary, parse_binary
from repro.binfmt.packers import PACKERS, pack, unpack
from repro.binfmt.strings import extract_strings
from repro.common.rng import DeterministicRNG, derive_seed
from repro.fuzzyhash.ctph import compare, compute, edit_distance
from repro.stratum.framing import LineFramer, encode_frame
from repro.wallets.base58 import b58decode, b58encode
from repro.wallets.detect import classify_identifier


class TestBase58Properties:
    @given(st.binary(max_size=128))
    def test_roundtrip(self, data):
        assert b58decode(b58encode(data)) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_alphabet(self, data):
        encoded = b58encode(data)
        assert all(c not in "0OIl" for c in encoded)


class TestEntropyProperties:
    @given(st.binary(min_size=1, max_size=4096))
    def test_bounds(self, data):
        assert 0.0 <= shannon_entropy(data) <= 8.0

    @given(st.binary(min_size=1, max_size=512))
    def test_concatenation_with_self_preserves(self, data):
        # duplicating content never changes the byte distribution
        assert abs(shannon_entropy(data) - shannon_entropy(data * 2)) < 1e-9

    @given(st.integers(min_value=1, max_value=255),
           st.integers(min_value=1, max_value=2000))
    def test_constant_is_zero(self, byte, length):
        assert shannon_entropy(bytes([byte]) * length) == 0.0


class TestEditDistanceProperties:
    texts = st.text(alphabet=string.ascii_letters, max_size=40)

    @given(texts)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(texts, texts)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(texts, texts)
    def test_length_bound(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @settings(max_examples=30)
    @given(texts, texts, texts)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= \
            edit_distance(a, b) + edit_distance(b, c)


class TestFuzzyHashProperties:
    @given(st.binary(min_size=0, max_size=8192))
    @settings(max_examples=50)
    def test_self_similarity(self, data):
        fh = compute(data)
        assert compare(fh, fh) >= 0
        if len(data) > 1024:  # long enough for a meaningful signature
            assert compare(fh, fh) == 100

    @given(st.binary(min_size=64, max_size=4096))
    @settings(max_examples=50)
    def test_deterministic(self, data):
        assert str(compute(data)) == str(compute(bytes(data)))

    @given(st.binary(min_size=0, max_size=2048), st.binary(min_size=0, max_size=2048))
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        ha, hb = compute(a), compute(b)
        assert compare(ha, hb) == compare(hb, ha)

    @given(st.binary(min_size=0, max_size=2048), st.binary(min_size=0, max_size=2048))
    @settings(max_examples=50)
    def test_score_range(self, a, b):
        assert 0 <= compare(compute(a), compute(b)) <= 100


class TestFramingProperties:
    json_values = st.recursive(
        st.none() | st.booleans() | st.integers(min_value=-10**9,
                                                max_value=10**9)
        | st.text(alphabet=string.printable.replace("\n", ""), max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(alphabet=string.ascii_letters,
                                  min_size=1, max_size=8),
                          children, max_size=4),
        max_leaves=10,
    )

    @given(st.lists(st.dictionaries(
        st.text(alphabet=string.ascii_letters, min_size=1, max_size=8),
        json_values, max_size=4), min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_stream_roundtrip(self, messages):
        wire = b"".join(encode_frame(m) for m in messages)
        framer = LineFramer()
        decoded = []
        # feed in 7-byte chunks to exercise partial-read handling
        for i in range(0, len(wire), 7):
            decoded.extend(framer.feed(wire[i:i + 7]))
        assert decoded == messages
        assert framer.pending_bytes == 0


class TestBinaryFormatProperties:
    @given(st.binary(max_size=2048),
           st.lists(st.text(alphabet=string.ascii_letters, min_size=1,
                            max_size=30), max_size=5))
    @settings(max_examples=50)
    def test_build_parse_roundtrip(self, code, strings):
        raw = build_binary(ExecutableKind.PE, code=code, strings=strings)
        parsed = parse_binary(raw)
        expected = [s for s in strings if s]
        assert parsed.data_strings == expected

    @given(st.binary(min_size=1, max_size=2048))
    @settings(max_examples=30)
    def test_pack_unpack_roundtrip(self, code):
        raw = build_binary(ExecutableKind.ELF, code=code)
        for name in ("UPX", "NSIS", "SFX"):
            assert unpack(pack(raw, PACKERS[name])) == raw


class TestStringsProperties:
    @given(st.binary(max_size=2048), st.integers(min_value=1, max_value=10))
    @settings(max_examples=50)
    def test_all_results_meet_min_length(self, data, min_length):
        for s in extract_strings(data, min_length=min_length):
            assert len(s) >= min_length
            assert all(0x20 <= ord(c) <= 0x7E for c in s)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**32),
           st.text(alphabet=string.ascii_letters, min_size=1, max_size=16))
    def test_derive_seed_stable(self, seed, label):
        assert derive_seed(seed, label) == derive_seed(seed, label)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_substream_reproducible(self, seed):
        a = DeterministicRNG(seed).substream("x").randbytes(16)
        b = DeterministicRNG(seed).substream("x").randbytes(16)
        assert a == b


class TestClassifierProperties:
    @given(st.text(alphabet=string.printable, max_size=120))
    @settings(max_examples=100)
    def test_never_crashes(self, text):
        classified = classify_identifier(text)
        assert classified.kind is not None
