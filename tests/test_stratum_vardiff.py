"""Tests for variable share difficulty (vardiff)."""

import pytest

from repro.pools.pool import MiningPool, PoolConfig
from repro.stratum.channel import make_channel_pair
from repro.stratum.client import StratumClient
from repro.stratum.messages import JobNotification
from repro.stratum.server import ShareSink, StratumServerSession


class DifficultySink(ShareSink):
    def __init__(self):
        self.shares = []

    def on_share(self, login, valid, src_ip, difficulty=1):
        self.shares.append((login, valid, difficulty))


def session_pair(difficulty=1, vardiff=False):
    client_end, server_end = make_channel_pair()
    sink = DifficultySink()
    server = StratumServerSession(server_end, sink,
                                  difficulty=difficulty, vardiff=vardiff)
    client = StratumClient(client_end, "W")
    return client, server, sink


class TestTargetEncoding:
    def test_difficulty_roundtrip(self):
        for difficulty in (1, 2, 16, 1000, 50000):
            target = JobNotification.target_for_difficulty(difficulty)
            job = JobNotification("j", "b", target, "cn/0")
            # floor division loses at most a rounding step
            assert job.difficulty == pytest.approx(difficulty, rel=0.01)

    def test_unit_target(self):
        job = JobNotification("j", "b", "ffffffff", "cn/0")
        assert job.difficulty == 1

    def test_malformed_target_degrades_to_one(self):
        job = JobNotification("j", "b", "zzzz", "cn/0")
        assert job.difficulty == 1

    def test_zero_target_guard(self):
        job = JobNotification("j", "b", "00000000", "cn/0")
        assert job.difficulty == 1


class TestStaticDifficulty:
    def test_job_carries_configured_difficulty(self):
        client, server, _ = session_pair(difficulty=5000)
        client.connect()
        assert client.current_job.difficulty == pytest.approx(5000,
                                                              rel=0.01)

    def test_sink_receives_share_difficulty(self):
        client, server, sink = session_pair(difficulty=100)
        client.connect()
        client.mine(3)
        assert len(sink.shares) == 3
        for _, valid, difficulty in sink.shares:
            assert valid
            assert difficulty == pytest.approx(100, rel=0.01)

    def test_retarget_pushes_job(self):
        client, server, _ = session_pair(difficulty=10)
        client.connect()
        server.set_difficulty(40)
        client.poll()
        assert client.current_job.difficulty == pytest.approx(40,
                                                              rel=0.03)


class TestVardiff:
    def test_difficulty_doubles_after_window(self):
        client, server, sink = session_pair(difficulty=1, vardiff=True)
        client.connect()
        window = StratumServerSession.VARDIFF_WINDOW
        # first window mines at difficulty 1 and triggers a retarget
        client.mine(window)
        client.poll()
        assert server.difficulty == 2
        assert client.current_job.difficulty == 2

    def test_work_accounting_fair_under_vardiff(self):
        """Total proven work == sum of per-share difficulties, so a
        retargeted miner is not short-changed."""
        pool = MiningPool(PoolConfig("p"))
        client_end, server_end = make_channel_pair()
        server = StratumServerSession(server_end, pool, vardiff=True,
                                      src_ip="10.0.0.1")
        client = StratumClient(client_end, "W")
        client.connect()
        window = StratumServerSession.VARDIFF_WINDOW
        client.mine(window)      # difficulty 1 each
        client.poll()            # pick up the retargeted job
        client.mine(4)           # difficulty 2 each
        stats = pool.api_wallet_stats("W")
        assert stats.hashes == pytest.approx(window * 1 + 4 * 2)

    def test_vardiff_off_by_default(self):
        client, server, _ = session_pair(difficulty=1)
        client.connect()
        client.mine(StratumServerSession.VARDIFF_WINDOW + 5)
        assert server.difficulty == 1
