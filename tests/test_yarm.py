"""Unit tests for the mini-YARA engine."""

import pytest

from repro.common.errors import RuleSyntaxError
from repro.yarm.builtin import builtin_miner_rules
from repro.yarm.engine import compile_rules


def compile_one(body: str):
    return compile_rules(body)


class TestCompilation:
    def test_basic_rule(self):
        rules = compile_one('''
        rule Simple {
            strings:
                $a = "hello"
            condition:
                $a
        }
        ''')
        assert rules.names() == ["Simple"]

    def test_tags_and_meta(self):
        rules = compile_one('''
        rule Tagged : miner network {
            meta:
                author = "repro"
            strings:
                $a = "x1x2x3"
            condition:
                any of them
        }
        ''')
        rule = rules.rules[0]
        assert rule.tags == ["miner", "network"]
        assert rule.meta["author"] == "repro"

    def test_multiple_rules(self):
        rules = compile_one('''
        rule A { strings:
                $a = "aaaa"
            condition:
                $a
        }
        rule B { strings:
                $b = "bbbb"
            condition:
                $b
        }
        ''')
        assert rules.names() == ["A", "B"]

    def test_no_rules_raises(self):
        with pytest.raises(RuleSyntaxError):
            compile_rules("this is not a rule")

    def test_missing_condition_raises(self):
        with pytest.raises(RuleSyntaxError):
            compile_one('''
            rule Bad {
                strings:
                    $a = "x"
            }
            ''')

    def test_bad_hex_raises(self):
        with pytest.raises(RuleSyntaxError):
            compile_one('''
            rule Bad {
                strings:
                    $a = { GG HH }
                condition:
                    $a
            }
            ''')


class TestMatching:
    def test_text_string(self):
        rules = compile_one('''
        rule T { strings:
                $a = "stratum+tcp://"
            condition:
                $a
        }
        ''')
        assert rules.scan(b"connect stratum+tcp://pool:3333")
        assert not rules.scan(b"nothing here")

    def test_nocase(self):
        rules = compile_one('''
        rule T { strings:
                $a = "MinerGate" nocase
            condition:
                $a
        }
        ''')
        assert rules.scan(b"minergate.com")

    def test_regex_string(self):
        rules = compile_one(r'''
        rule T { strings:
                $a = /4[0-9A-Za-z]{10}/
            condition:
                $a
        }
        ''')
        assert rules.scan(b"wallet 4AbCdEfGhIj999")
        assert not rules.scan(b"wallet short")

    def test_hex_string(self):
        rules = compile_one('''
        rule T { strings:
                $a = { DE AD BE EF }
            condition:
                $a
        }
        ''')
        assert rules.scan(b"xx\xde\xad\xbe\xefyy")

    def test_fired_identifiers_reported(self):
        rules = compile_one('''
        rule T { strings:
                $a = "one111"
                $b = "two222"
            condition:
                any of them
        }
        ''')
        match = rules.scan(b"has one111 only")[0]
        assert match.fired == ["a"]


class TestConditions:
    def _scan(self, condition: str, data: bytes):
        rules = compile_one(f'''
        rule T {{ strings:
                $a = "alpha1"
                $b = "bravo2"
                $c = "charlie3"
            condition:
                {condition}
        }}
        ''')
        return bool(rules.scan(data))

    def test_and(self):
        assert self._scan("$a and $b", b"alpha1 bravo2")
        assert not self._scan("$a and $b", b"alpha1 only")

    def test_or(self):
        assert self._scan("$a or $b", b"bravo2 only")

    def test_not(self):
        assert self._scan("$a and not $b", b"alpha1 here")
        assert not self._scan("$a and not $b", b"alpha1 bravo2")

    def test_parentheses(self):
        assert self._scan("($a or $b) and $c", b"bravo2 charlie3")
        assert not self._scan("($a or $b) and $c", b"bravo2 only")

    def test_any_of_them(self):
        assert self._scan("any of them", b"charlie3")
        assert not self._scan("any of them", b"nothing")

    def test_all_of_them(self):
        assert self._scan("all of them", b"alpha1 bravo2 charlie3")
        assert not self._scan("all of them", b"alpha1 bravo2")

    def test_n_of_them(self):
        assert self._scan("2 of them", b"alpha1 charlie3")
        assert not self._scan("2 of them", b"alpha1")

    def test_unknown_identifier_raises(self):
        rules = compile_one('''
        rule T { strings:
                $a = "alpha1"
            condition:
                $z
        }
        ''')
        with pytest.raises(RuleSyntaxError):
            rules.scan(b"data")


class TestBuiltinRules:
    def test_compiles(self):
        rules = builtin_miner_rules()
        assert len(rules) >= 4

    def test_detects_stratum(self):
        rules = builtin_miner_rules()
        hits = {m.rule for m in rules.scan(b"stratum+tcp://x:3333")}
        assert "StratumProtocol" in hits

    def test_detects_pool_domain(self):
        rules = builtin_miner_rules()
        hits = {m.rule for m in rules.scan(b"resolve DWARFPOOL.COM now")}
        assert "KnownPoolDomains" in hits

    def test_clean_data_no_match(self):
        rules = builtin_miner_rules()
        assert rules.scan(b"completely benign content") == []
