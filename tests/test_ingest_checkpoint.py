"""Unit tests for the checkpoint store and the durable-state codecs."""

import datetime
import json

import pytest

from repro.core.pipeline import PipelineStats
from repro.core.records import MinerRecord
from repro.core.sanity import SanityVerdict
from repro.ingest.checkpoint import (
    FORMAT_VERSION,
    CheckpointStore,
    JournalReplay,
)
from repro.ingest.codec import (
    decode_outcome,
    decode_record,
    decode_stats,
    encode_outcome,
    encode_record,
    encode_stats,
)
from repro.perf.parallel import SampleOutcome


def make_record(sha="a" * 8):
    record = MinerRecord(sha256=sha)
    record.identifiers = ["W1", "W2"]
    record.identifier_coins = ["XMR", "XMR"]
    record.pool = "minexmr"
    record.dst_ip = "10.9.8.7"
    record.dst_port = 4444
    record.first_seen = datetime.date(2017, 6, 1)
    record.itw_urls = ["http://h0.ru/a.exe"]
    record.parents = ["p" * 8]
    record.entropy = 7.25
    record.used_static = True
    return record


def make_outcome(sha="a" * 8, kind="miner"):
    return SampleOutcome(
        index=3, sha256=sha, kind=kind,
        verdict=SanityVerdict(sha, is_executable=True, is_malware=True),
        record=make_record(sha) if kind == "miner" else None,
        has_network=True, used_static=True)


class TestCodecs:
    def test_record_roundtrip(self):
        record = make_record()
        assert decode_record(encode_record(record)) == record

    def test_record_roundtrip_through_json(self):
        record = make_record()
        wire = json.dumps(encode_record(record), sort_keys=True)
        assert decode_record(json.loads(wire)) == record

    def test_undated_record_roundtrip(self):
        record = make_record()
        record.first_seen = None
        assert decode_record(encode_record(record)) == record

    def test_outcome_roundtrip(self):
        for kind in ("miner", "rejected", "deferred", "nonexec"):
            outcome = make_outcome(kind=kind)
            back = decode_outcome(
                json.loads(json.dumps(encode_outcome(outcome))))
            assert back == outcome

    def test_stats_roundtrip(self):
        stats = PipelineStats()
        stats.collected = 11
        stats.executables = 7
        stats.by_source = {"VT": 9, "HA": 2}
        assert decode_stats(
            json.loads(json.dumps(encode_stats(stats)))) == stats


class TestCheckpointStore:
    def test_fresh_store_is_empty(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", fsync=False)
        assert not store.exists()
        replay = store.load()
        assert replay.snapshot is None
        assert replay.committed == []
        assert replay.partial == {}
        assert replay.cursor == 0

    def test_committed_batch_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", fsync=False)
        payloads = [encode_outcome(make_outcome(sha=f"s{i}"))
                    for i in range(3)]
        for payload in payloads:
            store.append_outcome(0, payload)
        store.commit_batch(0, {"batch_id": 0, "samples": 3})
        store.close()
        replay = CheckpointStore(tmp_path / "ck", fsync=False).load()
        assert replay.committed == [(0, payloads)]
        assert replay.commits == [(0, {"batch_id": 0, "samples": 3})]
        assert replay.partial == {}
        assert replay.cursor == 1

    def test_uncommitted_outcomes_stay_partial(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", fsync=False)
        store.append_outcome(0, {"sha256": "x"})
        store.commit_batch(0, {})
        store.append_outcome(1, {"sha256": "y"})
        store.close()  # no commit line for batch 1
        replay = store.load()
        assert replay.cursor == 1
        assert replay.partial == {1: [{"sha256": "y"}]}

    def test_torn_tail_is_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", fsync=False)
        store.append_outcome(0, {"sha256": "x"})
        store.commit_batch(0, {})
        store.close()
        with open(store.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "outcome", "batch": 1, "da')  # power cut
        replay = store.load()
        assert replay.cursor == 1
        assert replay.partial == {}

    def test_snapshot_rotates_journal(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", fsync=False)
        store.append_outcome(0, {"sha256": "x"})
        store.commit_batch(0, {})
        store.write_snapshot({"cursor": 1, "records": []})
        store.close()
        assert store.journal_path.read_text() == ""
        replay = store.load()
        assert replay.snapshot["cursor"] == 1
        assert replay.committed == []
        assert replay.cursor == 1

    def test_stale_journal_entries_dropped(self, tmp_path):
        """A crash between snapshot and rotation leaves duplicate
        journal entries for compacted batches; the loader skips them."""
        store = CheckpointStore(tmp_path / "ck", fsync=False)
        store.write_snapshot({"cursor": 2})
        with open(store.journal_path, "a", encoding="utf-8") as fh:
            for batch_id in (0, 1, 2):
                fh.write(json.dumps({"type": "outcome", "batch": batch_id,
                                     "data": {"sha256": f"s{batch_id}"}})
                         + "\n")
                fh.write(json.dumps({"type": "commit", "batch": batch_id,
                                     "metrics": {}}) + "\n")
        replay = store.load()
        assert replay.committed == [(2, [{"sha256": "s2"}])]
        assert replay.cursor == 3

    def test_snapshot_version_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", fsync=False)
        store.snapshot_path.write_text(json.dumps({"cursor": 0, "v": -1}))
        with pytest.raises(ValueError, match="format"):
            store.load()
        assert FORMAT_VERSION >= 1

    def test_exists_after_any_write(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", fsync=False)
        store.append_outcome(0, {})
        store.close()
        assert store.exists()

    def test_fsync_path_works(self, tmp_path):
        """The fsync=True write path (the production default) commits
        and snapshots without error on a real filesystem."""
        store = CheckpointStore(tmp_path / "ck", fsync=True)
        store.append_outcome(0, {"sha256": "x"})
        store.commit_batch(0, {"batch_id": 0})
        store.write_snapshot({"cursor": 1})
        store.close()
        assert store.load().cursor == 1


class TestJournalReplayCursor:
    def test_cursor_is_max_of_snapshot_and_commits(self):
        replay = JournalReplay(snapshot={"cursor": 2},
                               committed=[(5, [])])
        assert replay.cursor == 6
        assert JournalReplay(snapshot={"cursor": 9}).cursor == 9
