"""UNIT/KIND negative fixture: unit-correct money flows and
same-kind lookups that must all stay silent.

Covers each rule's happy path: converted USD writes (both witnesses),
the XMR/coin join, span-multiplied rates, and same-kind keys."""

AVERAGE_XMR_USD = 54.0


def converted_by_call(record, row, rates):
    row["usd"] = rates.to_usd(record.total_paid, None)


def converted_by_rate(record, row):
    row["usd"] = record.total_paid * AVERAGE_XMR_USD


def xmr_joins_coin(record, entry):
    entry["xmr"] = record.total_paid
    return entry["xmr"] + record.balance


def rate_times_span(account):
    account.hashes += account.last_hashrate * 86400


def same_kind_key(campaign_of_sample, record):
    return campaign_of_sample.get(record.sha256)


def same_kind_compare(record, stats):
    return stats.identifier == record.user


def coin_arithmetic(record):
    return record.balance + record.total_paid
