"""DEAD fixture library: one live chain, one unreachable function."""


def used_entry(items):
    return _helper(items)


def _helper(items):
    return len(items)


def forgotten(items):  # DEAD001 unreachable from the cli entrypoint
    return sum(items)
