"""DEAD fixture entrypoint: reaches ``used_entry`` and, through it,
the private helper — but never ``forgotten``."""

from deadpkg.lib import used_entry


def main(argv):
    return used_entry(argv)
