"""DET positive fixture: every banned nondeterminism shape."""

import datetime
import os
import random
import time
from datetime import datetime as dt


def stamp_run():
    started = time.time()  # DET001 wall clock
    today = datetime.datetime.now()  # DET001 datetime.now
    alias = dt.utcnow()  # DET001 aliased utcnow
    return started, today, alias


def pick_sample(candidates):
    return random.choice(candidates)  # DET001 unseeded random


def session_token():
    return os.urandom(16)  # DET001 ambient entropy


def ordered_wallets(records):
    wallets = set()
    for record in records:
        wallets.update(record.identifiers)
    out = []
    for wallet in wallets:  # DET002 set iteration feeds output
        out.append(wallet)
    return out


def ordered_values(profiles):
    return [p.total for p in profiles.values()]  # DET002 values comp
