"""DET negative fixture: the sanctioned counterparts."""

import datetime


_ANALYSIS_DATE = datetime.date(2018, 9, 1)  # fixed date: fine


def stamp_run(simtime_date):
    return simtime_date  # explicit simulated time: fine


def pick_sample(rng, candidates):
    return rng.choice(candidates)  # seeded SeededRng instance: fine


def ordered_wallets(records):
    wallets = set()
    for record in records:
        wallets.update(record.identifiers)
    out = []
    for wallet in sorted(wallets):  # sorted first: fine
        out.append(wallet)
    return out


def wallet_index(records):
    seen = set()
    for record in records:
        for wallet in record.identifiers:
            seen.add(wallet)  # set sink: order-insensitive, fine
    return sorted(seen)


def total_paid(profiles):
    return sum(p.total for p in profiles.values())  # order-erasing sink
