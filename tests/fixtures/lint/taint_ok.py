"""TAINT negative fixture: a grouping module that stays clean —
no enrichment imports, edges drawn only from the six paper features."""


def record_attachments(record, policy, osint, proxy_ips):
    out = []
    for wallet in record.identifiers:
        if osint.is_donation_wallet(wallet):
            continue
        out.append((("id", wallet), "same_identifier"))
    for parent in record.parents:
        out.append((("sample", parent), "ancestor"))
    return out
