"""UNIT/KIND positive fixture: every mixed-unit and crossed-kind
violation the domain pass must flag, one marker comment per line.

``record`` plays a WalletRecord/MinerRecord, ``campaign`` a Campaign —
the seeds match on bare attribute names, so no imports are needed."""


def mixed_money(record, campaign):
    return record.total_paid + campaign.total_usd  # UNIT001


def compared_money(record, campaign):
    return record.balance < campaign.total_usd  # UNIT001


def unconverted_slot(record, row):
    row["usd"] = record.total_paid  # UNIT002


def unconverted_attr(record, other):
    other.usd = record.balance  # UNIT002


def rate_as_total(record):
    return record.hashrate + record.hashes  # UNIT003


def crossed_equality(record, campaign):
    return record.sha256 == campaign.campaign_id  # KIND001


def crossed_membership(record, campaign):
    return record.user in campaign.sample_hashes  # KIND001


def wrong_key_kind(campaign_of_sample, record):
    return campaign_of_sample.get(record.user)  # KIND002


def wrong_subscript_kind(wallet_samples, record):
    return wallet_samples[record.sha256]  # KIND002
