"""RES positive fixture: handles that can exit without release."""

import socket


def read_segment(path):
    handle = open(path, "rb")  # RES001 released only on the happy path
    payload = handle.readline()
    handle.close()
    return payload


def probe_pool(host):
    sock = socket.create_connection((host, 3333))  # RES001 never released
    sock.sendall(b"ping")
    return True


def touch_marker(path):
    open(path, "wb")  # RES001 acquired and immediately dropped
    return path


class SegmentCursor:
    def __init__(self, path):
        self._handle = open(path, "rb")  # RES001 class has no release


def _open_spill(path):
    return open(path, "w+b")  # factory: the caller inherits the handle


def merge_spills(paths):
    total = 0
    for path in paths:
        spill = _open_spill(path)  # RES001 never released
        total += len(spill.readline())
    return total
