"""RES negative fixture: every ownership transfer the rule sanctions."""


def read_all(path):
    with open(path, "rb") as handle:  # `with` management
        return handle.readline()


def read_guarded(path):
    handle = open(path, "rb")
    try:
        return handle.readline()
    finally:
        handle.close()  # released on every path


def open_spill(path):
    return open(path, "w+b")  # ownership moves to the caller


def register(registry, path):
    handle = open(path, "rb")
    registry.adopt(handle)  # ownership transferred as an argument
    return registry


class SpillReader:
    def __init__(self, path):
        self._handle = open(path, "rb")  # the class owns the release

    def close(self):
        self._handle.close()


def sum_spill(path):
    reader = SpillReader(path)
    try:
        return len(reader._handle.readline())
    finally:
        reader.close()
