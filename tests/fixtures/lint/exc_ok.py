"""EXC negative fixture: specific, handled failures."""

import json


def parse_entry(line):
    try:
        return json.loads(line)
    except json.JSONDecodeError:
        return None  # torn tail: the one failure this stage owns


def guarded(fn, fallback):
    try:
        return fn()
    except Exception as exc:
        return fallback(exc)  # catch-all that *handles* is fine
