"""ASYNC positive fixture: blocked loops and dropped coroutines."""

import time


async def poll_share(job):
    time.sleep(0.1)  # ASYNC001 blocking directly in the coroutine
    return job


def _read_manifest(path):
    with open(path) as handle:  # ASYNC001 laundered two hops down
        return handle.readline()


def _load_stats(path):
    return _read_manifest(path)


async def report_stats(path):
    return _load_stats(path)


async def _refresh(cache):
    cache.clear()


def tick(cache):
    _refresh(cache)  # ASYNC002 coroutine built but never awaited


class HotIndex:
    async def lookup(self, key):
        return self._live[key]

    def swap(self, snapshot):
        self._live = snapshot


def refresh_index(snapshot):
    index = HotIndex()
    index.swap(snapshot)  # ASYNC002 loop-affine call from sync code
    return index
