"""CKEY positive fixture: a memo key missing an input the compute reads."""

from repro.perf.cache import LruCache

_CACHE = LruCache("fixture", maxsize=16)


def cached_render(data, width):
    key = bytes(data)
    # 'width' changes the value but is absent from the key:
    return _CACHE.get_or_compute(key, lambda: data.render(width))  # CKEY001


def cached_score(sample, threshold):
    def compute():
        return sample.positives >= threshold  # reads threshold
    # keyed on the sample alone:
    return _CACHE.get_or_compute(sample.sha256, compute)  # CKEY001
