"""THR positive fixture: unguarded module state shared with a thread."""

import threading

_PROGRESS = {}  # THR001 mutated by the thread, read by the main path


def _track(done):
    _PROGRESS["done"] = done


def start_tracker(done):
    worker = threading.Thread(target=_track, args=(done,))
    worker.start()
    return worker


def render_progress():
    return dict(_PROGRESS)
