"""DUR positive fixture: checkpoint writes that tear on a crash."""

import json
import os


def overwrite_snapshot(path, state):
    with open(path, "w", encoding="utf-8") as fh:  # DUR001 in-place
        json.dump(state, fh)


def rename_without_sync(path, tmp, state):
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
    os.replace(tmp, path)  # DUR002 renamed bytes never fsynced
