"""DUR negative fixture: the CheckpointStore write discipline."""

import json
import os


def write_snapshot(path, tmp, state):
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def append_journal(journal_fh, entry):
    journal_fh.write(json.dumps(entry) + "\n")  # WAL append: exempt


def read_snapshot(path):
    with open(path, encoding="utf-8") as fh:  # read mode: exempt
        return json.load(fh)
