"""FORK negative fixture: quiesced forks and pre-fork worker state."""

import threading
from concurrent.futures import ProcessPoolExecutor

_POOL_STATE = None


def _consume(bucket):
    return len(bucket)


def _scale_chunk(items):
    return [_POOL_STATE[i] for i in items]


def fork_with_parked_producer(prefetcher, items):
    feeder = threading.Thread(target=_consume, args=(items,))
    feeder.start()
    with prefetcher.quiesced():  # the sanctioned fork barrier
        pool = ProcessPoolExecutor(max_workers=2)
    feeder.join()
    return pool


def fork_after_join(items):
    feeder = threading.Thread(target=_consume, args=(items,))
    feeder.start()
    feeder.join()  # nothing lives across the fork
    with ProcessPoolExecutor(max_workers=2) as pool:
        return pool.submit(_consume, items).result()


def fork_with_prestate(items):
    global _POOL_STATE
    _POOL_STATE = dict.fromkeys(items, 0)  # set before forking
    try:
        with ProcessPoolExecutor(max_workers=2) as pool:
            return pool.submit(_scale_chunk, items).result()
    finally:
        _POOL_STATE = None  # clearing to None is sanctioned
