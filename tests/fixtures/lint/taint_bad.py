"""TAINT positive fixture: enrichment leaking into edge construction."""

from repro.core.enrichment import CampaignEnricher  # TAINT001


def record_attachments(record, policy, osint, proxy_ips):
    out = [(("id", w), "same_identifier") for w in record.identifiers]
    for botnet in record.ppi_botnets:  # TAINT002 enrichment attribute
        out.append((("botnet", botnet), "ppi"))
    if record.packer:  # TAINT002 packer as a grouping signal
        out.append((("packer", record.packer), "packer"))  # TAINT002
    return out
