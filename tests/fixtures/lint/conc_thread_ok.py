"""THR negative fixture: queue hand-off and lock-guarded mutation."""

import queue
import threading

_EVENTS = queue.Queue()  # thread-safe hand-off type
_STATS = {}
_STATS_LOCK = threading.Lock()


def _pump(batch):
    for item in batch:
        _EVENTS.put(item)


def start_pump(batch):
    worker = threading.Thread(target=_pump, args=(batch,))
    worker.start()
    return worker


def drain():
    return _EVENTS.get_nowait()


def _count(batch):
    with _STATS_LOCK:  # every mutation holds the lock
        _STATS["seen"] = _STATS.get("seen", 0) + len(batch)


def start_counter(batch):
    worker = threading.Thread(target=_count, args=(batch,))
    worker.start()
    return worker


def snapshot():
    with _STATS_LOCK:
        return dict(_STATS)
