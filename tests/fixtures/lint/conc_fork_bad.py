"""FORK positive fixture: live threads and late worker state at forks."""

import threading
from concurrent.futures import ProcessPoolExecutor

_POOL_STATE = None


def _drain(bucket):
    bucket.append(1)


def _scale_chunk(items):
    return [_POOL_STATE[i] for i in items]


def fork_with_live_thread(items, bucket):
    feeder = threading.Thread(target=_drain, args=(bucket,))
    feeder.start()
    with ProcessPoolExecutor(max_workers=2) as pool:  # FORK001 direct
        return pool.submit(_drain, bucket).result()


def _start_feeder(bucket):
    feeder = threading.Thread(target=_drain, args=(bucket,))
    feeder.start()
    return feeder


def _build_pool():
    return ProcessPoolExecutor(max_workers=2)


def fork_via_helpers(items, bucket):
    _start_feeder(bucket)
    return _build_pool()  # FORK001 through both helpers


def fork_then_set_state(items):
    global _POOL_STATE
    with ProcessPoolExecutor(max_workers=2) as pool:
        _POOL_STATE = dict.fromkeys(items, 0)  # FORK002 set after fork
        return pool.submit(_scale_chunk, items).result()


def refork_with_mutation(items):
    global _POOL_STATE
    _POOL_STATE = dict.fromkeys(items, 0)
    with ProcessPoolExecutor(max_workers=2) as pool:
        pool.submit(_scale_chunk, items)
    _POOL_STATE = dict.fromkeys(items, 1)  # FORK002 mutated after fork
