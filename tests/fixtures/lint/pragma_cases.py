"""Pragma fixture: suppressed, file-wide-suppressed, and live findings."""

# reprolint: disable-file=EXC002


def suppressed_line(path):
    try:
        return open(path).read()
    except:  # reprolint: disable=EXC001
        return None


def suppressed_by_file(line, decoder):
    try:
        return decoder(line)
    except Exception:  # silenced by the disable-file pragma above
        pass
    return None


def still_caught(path):
    try:
        return open(path).read()
    except:  # EXC001 — no pragma here, must still fire
        return None
