"""PAR positive fixture: unpicklable and global-mutating submissions."""

from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}
_SEEN = []


def _tally_chunk(items):
    for item in items:
        _RESULTS[item.key] = item.value  # PAR002 module-global store
        _SEEN.append(item.key)  # PAR002 module-global mutation
    return len(items)


def run_direct(pool, items):
    return pool.submit(lambda: len(items))  # PAR001 lambda


def run_nested(pool, items):
    def chunk(part):
        return len(part)
    return pool.submit(chunk, items)  # PAR001 nested closure


def run_tally(items):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return pool.submit(_tally_chunk, items).result()


class Engine:
    def _map(self, fn, chunks):
        return [self._pool().submit(fn, chunk) for chunk in chunks]

    def run(self, chunks):
        return self._map(_tally_chunk, chunks)
