"""PAR negative fixture: the sanctioned worker-pool shape."""

from concurrent.futures import ProcessPoolExecutor

_WORKER_STATE = None


def _init_worker(state):
    global _WORKER_STATE  # initializers may prime per-process state
    _WORKER_STATE = state


def _sum_chunk(items):
    state = _WORKER_STATE  # read-only global access is fine
    out = []
    for item in items:
        out.append(item + state.offset)  # local mutation only
    return out


class Engine:
    def _pool(self):
        return ProcessPoolExecutor(max_workers=2,
                                   initializer=_init_worker,
                                   initargs=(None,))

    def _map(self, fn, chunks):
        return [self._pool().submit(fn, chunk) for chunk in chunks]

    def run(self, chunks):
        return self._map(_sum_chunk, chunks)
