"""EXC positive fixture: silent failure swallowing."""


def load_report(path):
    try:
        return open(path).read()
    except:  # EXC001 bare except
        return None


def parse_entry(line, decoder):
    try:
        return decoder(line)
    except Exception:  # EXC002 catch-all pass
        pass
    return None
