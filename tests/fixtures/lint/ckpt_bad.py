"""Checkpoint-sink positive fixture: enrichment-tainted values reach
the checkpoint store, both directly and laundered through a helper."""


def persist_outcome(store, campaign):
    annotation = campaign.packers  # enrichment-owned attribute
    store.append_outcome(annotation)  # TAINT003 direct sink write


def write_through(store, value):
    store.commit_batch(value)  # sink: param flows in, taint decided at caller


def launder_and_persist(store, campaign):
    write_through(store, campaign.uses_ppi)  # TAINT003 via helper


def persist_clean(store, campaign):
    store.append_outcome(campaign.first_seen)  # untainted — no finding
