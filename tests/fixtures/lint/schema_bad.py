"""SCHEMA positive fixture: record shapes drifting across boundaries."""

from dataclasses import dataclass


@dataclass
class FlowRecord:
    src: str
    dst: str


def make_flow(src, dst):
    return {
        "src": src,
        "dst": dst,
        "legacy": 1,  # SCHEMA001 no caller ever reads this key
    }


def consume_flow(record):
    return record["src"] + record["dst"] + record["proto"]  # SCHEMA002


def handoff():
    return consume_flow(make_flow("a", "b"))


def drop_rate():
    stats = {"seen": 10, "dropped": 1, "skipped": 0}  # SCHEMA001 'skipped'
    return stats["dropped"] / stats["seen"]


def rebuild(src, dst):
    return FlowRecord(src=src, dst=dst, proto="tcp")  # SCHEMA003 kwarg


def thaw():
    data = {"src": "a", "dst": "b", "ttl": 9}
    return FlowRecord(**data)  # SCHEMA003 'ttl' is not a field


def describe(flow: FlowRecord):
    return flow.src + flow.protocol  # SCHEMA003 attr drift
