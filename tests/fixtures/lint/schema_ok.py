"""SCHEMA negative fixture: the same shapes, kept in sync — plus the
escape hatches that must silence the checks rather than guess.

* every produced key is read (or soft-probed) by some resolved caller
* consumers only require keys every producer writes
* dataclass construction and reads stay inside the declared fields
* a record that escapes through an unresolved callee is opaque: no
  SCHEMA001, even though no *resolved* consumer reads "extra"
"""

import json
from dataclasses import dataclass


@dataclass
class FlowRecord:
    src: str
    dst: str


def make_flow(src, dst):
    return {"src": src, "dst": dst, "proto": "tcp"}


def consume_flow(record):
    if record.get("proto") == "udp":  # soft probe, not a requirement
        return record["dst"]
    return record["src"]


def handoff():
    return consume_flow(make_flow("a", "b"))


def snapshot():
    payload = {"src": "a", "dst": "b", "extra": 1}
    return json.dumps(payload)  # opaque escape: silences SCHEMA001


def rebuild(src, dst):
    return FlowRecord(src=src, dst=dst)


def describe(flow: FlowRecord):
    return flow.src + flow.dst
