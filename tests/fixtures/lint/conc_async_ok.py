"""ASYNC negative fixture: hops, scheduling and loop-affinity done right."""

import asyncio
import time


def _slow_probe(host):
    time.sleep(0.5)  # only ever runs in an executor thread
    return host


async def probe(loop, host):
    return await loop.run_in_executor(None, _slow_probe, host)


async def _tick(state):
    state["beat"] = state.get("beat", 0) + 1


def schedule_tick(state):
    return asyncio.run(_tick(state))  # scheduled, not dropped


async def gather_ticks(state):
    pending = _tick(state)  # bound for the await below
    await asyncio.gather(pending)


class HotCache:
    async def get(self, key):
        return self._live[key]

    def swap(self, snapshot):
        self._live = snapshot

    def adopt(self, snapshot):
        self.swap(snapshot)  # the class manages its own affinity


async def adopt_on_loop(snapshot):
    cache = HotCache()
    cache.swap(snapshot)  # async caller: already on the loop
    return cache


def marshal_swap(loop, snapshot):
    cache = HotCache()
    loop.call_soon_threadsafe(cache.swap, snapshot)  # marshalled flip
    return cache
