"""Deep-taint positive fixture: a grouping module pulls enrichment
data through a three-hop helper chain that crosses a pool boundary.
No line here reads an enrichment attribute directly — only the
interprocedural pass can see the laundering."""

from taintdeep.helpers import relay_via_pool


def build_campaign(component, pool):
    edges = []
    for node in component:
        flags = relay_via_pool(pool, node)  # TAINT002 laundered taint
        if flags:
            edges.append((node, flags))
    return edges
