"""Deep-taint fixture helpers: a laundering chain, three calls deep.

No finding fires *here* — none of these functions group campaigns.
The chain only becomes a violation when a grouping module consumes
its return value (see ``grouping.py``).
"""


def read_flags(campaign):
    return campaign.stock_tools  # the enrichment source (hop 3)


def relay(campaign):
    return read_flags(campaign)  # hop 2


def relay_via_pool(pool, campaign):
    handle = pool.submit(relay, campaign)  # hop 1, across the pool
    return handle


def sample_count(campaign):
    return len(campaign.identifiers)  # clean helper
