"""Deep-taint negative fixture: the same grouping shape, but the
helper it calls returns a sanitized count — importing a module that
*contains* tainted helpers is fine; calling the clean one is too."""

from taintdeep.helpers import sample_count


def build_campaign(component, pool):
    edges = []
    for node in component:
        edges.append((node, sample_count(node)))
    return edges
