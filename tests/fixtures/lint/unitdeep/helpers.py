"""Shared helper for the interprocedural UNIT fixtures: the result
keeps its coin unit through ``max`` and the subtraction."""


def uncovered_remainder(record, covered):
    return max(0.0, record.total_paid - covered)
