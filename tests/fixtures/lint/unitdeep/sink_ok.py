"""The same two-hop flow with a conversion witness: silent."""

from unitdeep.helpers import uncovered_remainder


def summarize(record, row, rates):
    row["usd"] = rates.to_usd(uncovered_remainder(record, 1.0), None)
