"""Two-hop laundering: an unconverted coin remainder crosses a helper
call before landing in a USD slot — only the fixpoint sees it."""

from unitdeep.helpers import uncovered_remainder


def summarize(record, row):
    row["usd"] = uncovered_remainder(record, 1.0)  # UNIT002
