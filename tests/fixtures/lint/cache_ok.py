"""CKEY negative fixture: complete keys, including derived ones."""

from repro.perf.cache import LruCache

_CACHE = LruCache("fixture-ok", maxsize=16)


def cached_render(data, width):
    key = (bytes(data), width)
    return _CACHE.get_or_compute(key, lambda: data.render(width))


def cached_digest(raw):
    key = bytes(raw)  # derived key still covers 'raw'
    return _CACHE.get_or_compute(key, lambda: hash(key))
