"""Stale-pragma fixture: suppressions that no longer match findings."""


def tidy(records):
    out = sorted(records)  # reprolint: disable=DET001,DET002 PRAGMA001
    return out


def read_first(path):
    try:
        return open(path).read()
    except:  # reprolint: disable=EXC001 — live: suppresses a finding
        return None
