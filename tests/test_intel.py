"""Unit tests for the VT / HA threat-intelligence substrates."""

import datetime

import pytest

from repro.intel.ha import HaService
from repro.intel.vt import AV_VENDORS, AvReport, VtService
from repro.sandbox.emulator import SandboxReport
from repro.netsim.flows import FlowRecord

D = datetime.date


def report(sha="s1", n_detections=12, label="Trojan.CoinMiner.xx",
           detected_on=D(2018, 1, 1), **kwargs):
    detections = {
        vendor: (label, detected_on)
        for vendor in AV_VENDORS[:n_detections]
    }
    return AvReport(sha256=sha, detections=detections, **kwargs)


class TestAvReport:
    def test_positives(self):
        assert report(n_detections=15).positives() == 15

    def test_positives_grow_over_time(self):
        detections = {
            AV_VENDORS[0]: ("Miner.x", D(2018, 1, 1)),
            AV_VENDORS[1]: ("Miner.y", D(2018, 6, 1)),
        }
        r = AvReport(sha256="s", detections=detections)
        assert r.positives(D(2018, 3, 1)) == 1
        assert r.positives(D(2018, 12, 1)) == 2
        assert r.positives() == 2

    def test_miner_label_count(self):
        assert report(n_detections=11).miner_label_count() == 11
        generic = report(label="Trojan.Generic.abc")
        assert generic.miner_label_count() == 0

    def test_miner_label_variants(self):
        for label in ["Win32.BitcoinMiner.x", "Riskware.CoinMine",
                      "Trojan.Cryptonight"]:
            assert report(label=label).miner_label_count() > 0


class TestVtService:
    def test_store_and_get(self):
        vt = VtService()
        vt.add_report(report())
        assert vt.get_report("s1").sha256 == "s1"
        assert vt.get_report("missing") is None
        assert len(vt) == 1

    def test_rate_limit(self):
        """The paper's '~19?' artifact: queries fail past the limit."""
        vt = VtService(rate_limit=2)
        vt.add_report(report())
        assert vt.get_report("s1") is not None
        assert vt.get_report("s1") is not None
        assert vt.get_report("s1") is None

    def test_search_by_contacted_domain(self):
        vt = VtService()
        vt.add_report(report("s1", contacted_domains=["pool.minexmr.com"]))
        vt.add_report(report("s2", contacted_domains=["other.example"]))
        hits = vt.search_by_contacted_domain("minexmr.com")
        assert [r.sha256 for r in hits] == ["s1"]

    def test_search_miner_labeled(self):
        vt = VtService()
        vt.add_report(report("s1", n_detections=15))
        vt.add_report(report("s2", n_detections=5))
        hits = vt.search_miner_labeled(min_vendors=10)
        assert [r.sha256 for r in hits] == ["s1"]

    def test_search_min_positives(self):
        vt = VtService()
        vt.add_report(report("s1", n_detections=15))
        vt.add_report(report("s2", n_detections=5))
        assert len(vt.search_min_positives(10)) == 1

    def test_children_of(self):
        vt = VtService()
        vt.add_report(report("parent"))
        vt.add_report(report("child", parents=["parent"]))
        assert vt.children_of("parent") == ["child"]
        assert vt.children_of("child") == []


class TestHaService:
    def _report(self, sha="h1", host="pool.minexmr.com"):
        r = SandboxReport(sample_sha256=sha)
        r.flows.record(FlowRecord(host, "10.0.0.1", 4444, "stratum",
                                  login="W"))
        return r

    def test_publish_and_get(self):
        ha = HaService()
        ha.publish(self._report())
        assert ha.get_report("h1") is not None
        assert "h1" in ha
        assert len(ha) == 1

    def test_search_stratum_hosts(self):
        ha = HaService()
        ha.publish(self._report("h1", "pool.minexmr.com"))
        ha.publish(self._report("h2", "other.pool"))
        assert ha.search_stratum_hosts("pool.minexmr.com") == ["h1"]
