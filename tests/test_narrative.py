"""The paper's headline findings, asserted in one place.

Each test corresponds to one of the numbered findings in §I and the
take-aways in §IV-F, checked against the shared measured world.  This
is the "story" regression suite: if a refactor breaks the ecosystem's
shape, it fails here with the finding's name attached.
"""

import datetime

import pytest

from repro.analysis import (
    fig1_forum_trends,
    headline_monero_fraction,
    table4_currencies,
    table7_pool_popularity,
    table8_top_campaigns,
    table11_infrastructure,
    table15_email_pools,
)
from repro.analysis.exhibits import fork_dieoff, multi_pool_share

D = datetime.date


class TestFinding1MoneroDominance:
    """'Monero (XMR) is by far the most popular crypto-currency among
    cyber-criminals' (§I finding 1)."""

    def test_forum_discussion(self, small_world):
        shares = fig1_forum_trends(small_world.forum_corpus)
        assert max(shares[2018], key=shares[2018].get) == "Monero"

    def test_campaign_counts(self, pipeline_result):
        per_currency = table4_currencies(
            pipeline_result)["campaigns_per_currency"]
        assert per_currency["XMR"] == max(per_currency.values())

    def test_supply_fraction_positive(self, pipeline_result):
        headline = headline_monero_fraction(pipeline_result)
        assert headline["fraction"] > 0
        assert headline["total_usd"] > 1e6


class TestFinding2SkewAndNovelCampaigns:
    """'A small number of actors monopolize the ecosystem'; Freebuf and
    USA-138 are previously unreported (§I finding 2, §IV-F take-away 1)."""

    def test_top1_dominates(self, pipeline_result):
        data = table8_top_campaigns(pipeline_result)
        assert data["top1_share"] > 0.15  # paper: ~22%

    def test_top10_outearn_rest(self, pipeline_result):
        data = table8_top_campaigns(pipeline_result)
        top10 = sum(r["xmr"] for r in data["rows"])
        assert top10 > data["total_xmr"] - top10

    def test_case_studies_not_linked_to_known_operations(
            self, small_world, pipeline_result):
        for label in ("Freebuf", "USA-138"):
            truth = next(c for c in small_world.ground_truth
                         if c.label == label)
            campaign = pipeline_result.campaign_for_wallet(
                truth.identifiers[0])
            assert campaign.operations == [], label


class TestFinding3SimpleEvasions:
    """'Campaigns use simple mechanisms to evade detection, like
    domain aliases ... or idle mining' (§I finding 3)."""

    def test_cname_aliases_present_and_concentrated(self,
                                                    pipeline_result):
        columns = table11_infrastructure(pipeline_result)
        assert columns["ALL"]["cnames"] > 0
        assert columns[">=10k"]["cnames"] >= columns["<100"]["cnames"]

    def test_aliases_resolve_to_known_pools(self, small_world,
                                            pipeline_result):
        aliased = [c for c in pipeline_result.campaigns
                   if c.cname_aliases]
        assert aliased
        for campaign in aliased[:5]:
            for alias in campaign.cname_aliases:
                targets = small_world.passive_dns.ever_cname_targets(
                    alias)
                assert targets, alias


class TestFinding4InfrastructureChoices:
    """Stock tools + public hosting on one end, PPI botnets on the
    other (§I finding 4, §IV-F take-away 2)."""

    def test_stock_tools_in_use(self, pipeline_result):
        assert any(c.stock_tools for c in pipeline_result.campaigns)

    def test_big_three_pools(self, pipeline_result):
        pools = [r["pool"] for r in
                 table7_pool_popularity(pipeline_result)[:5]]
        assert set(pools) & {"crypto-pool", "dwarfpool", "minexmr"}

    def test_minergate_opaque_but_popular_with_emails(self,
                                                      pipeline_result):
        emails = table15_email_pools(pipeline_result)
        assert max(emails, key=emails.get) == "minergate"


class TestTakeAwayForks:
    """'Most of the campaigns stopped due to PoW updates' (§IV-F /
    §VI)."""

    def test_dieoff_increases_across_forks(self, pipeline_result):
        dieoff = fork_dieoff(pipeline_result)
        assert dieoff == sorted(dieoff)
        assert dieoff[-1] > 0.7

    def test_rich_campaigns_use_multiple_pools(self, pipeline_result):
        assert multi_pool_share(pipeline_result, 1000.0) > 0.5
