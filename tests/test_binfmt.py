"""Unit tests for the synthetic executable format, packers and entropy."""

import pytest

from repro.binfmt.codegen import pseudo_code
from repro.binfmt.entropy import (
    OBFUSCATION_THRESHOLD,
    looks_obfuscated,
    shannon_entropy,
)
from repro.binfmt.format import (
    ExecutableKind,
    build_binary,
    magic_kind,
    parse_binary,
)
from repro.binfmt.packers import (
    CUSTOM_CRYPTER,
    PACKERS,
    identify_packer,
    is_packed,
    pack,
    pack_chain,
    unpack,
)
from repro.binfmt.strings import extract_strings
from repro.common.errors import BinaryFormatError
from repro.common.rng import DeterministicRNG


@pytest.fixture
def sample_binary():
    rng = DeterministicRNG(11)
    return build_binary(
        ExecutableKind.PE,
        code=pseudo_code(rng, 2000),
        strings=["stratum+tcp://pool.example.com:4444", "-u WALLET"],
        config={"url": "stratum+tcp://pool.example.com:4444", "user": "W"},
        resources=b"RSRC" * 10,
    )


class TestFormat:
    def test_roundtrip(self, sample_binary):
        parsed = parse_binary(sample_binary)
        assert parsed.kind is ExecutableKind.PE
        assert parsed.config["user"] == "W"
        assert "stratum+tcp://pool.example.com:4444" in parsed.data_strings

    def test_magic_kinds(self):
        assert magic_kind(b"MZ....") is ExecutableKind.PE
        assert magic_kind(b"\x7fELF....") is ExecutableKind.ELF
        assert magic_kind(b"PK\x03\x04..") is ExecutableKind.JAR
        assert magic_kind(b"#!/bin/sh") is ExecutableKind.SCRIPT
        assert magic_kind(b"<script>") is ExecutableKind.SCRIPT
        assert magic_kind(b"\x00\x01\x02") is ExecutableKind.DATA

    def test_elf_and_jar_build(self):
        for kind in (ExecutableKind.ELF, ExecutableKind.JAR):
            raw = build_binary(kind, code=b"\x90" * 10)
            assert parse_binary(raw).kind is kind

    def test_parse_rejects_non_executable(self):
        with pytest.raises(BinaryFormatError):
            parse_binary(b"#!/bin/sh\necho hi")

    def test_parse_rejects_truncation(self, sample_binary):
        with pytest.raises(BinaryFormatError):
            parse_binary(sample_binary[:20])

    def test_missing_sections(self):
        raw = build_binary(ExecutableKind.PE)
        parsed = parse_binary(raw)
        assert parsed.data_strings == []
        assert parsed.config is None
        assert parsed.section(".text") is None


class TestEntropy:
    def test_empty(self):
        assert shannon_entropy(b"") == 0.0

    def test_uniform_zero(self):
        assert shannon_entropy(b"\x00" * 100) == 0.0

    def test_random_near_eight(self):
        rng = DeterministicRNG(2)
        assert shannon_entropy(rng.randbytes(8192)) > 7.9

    def test_bounds(self):
        rng = DeterministicRNG(2)
        for size in (1, 10, 100):
            e = shannon_entropy(rng.randbytes(size))
            assert 0.0 <= e <= 8.0

    def test_pseudo_code_below_threshold(self):
        rng = DeterministicRNG(3)
        code = pseudo_code(rng, 4000)
        assert shannon_entropy(code) < OBFUSCATION_THRESHOLD

    def test_looks_obfuscated(self):
        rng = DeterministicRNG(4)
        assert looks_obfuscated(rng.randbytes(4096))
        assert not looks_obfuscated(b"A" * 4096)


class TestPackers:
    def test_pack_preserves_magic(self, sample_binary):
        packed = pack(sample_binary, PACKERS["UPX"])
        assert packed[:2] == b"MZ"

    def test_identify_each_signature_family(self, sample_binary):
        for name, packer in PACKERS.items():
            if not packer.signature:
                continue
            packed = pack(sample_binary, packer)
            found = identify_packer(packed)
            assert found is not None and found.name == name

    def test_unpack_roundtrip(self, sample_binary):
        packed = pack(sample_binary, PACKERS["UPX"])
        assert unpack(packed) == sample_binary

    def test_crypter_has_no_signature(self, sample_binary):
        packed = pack(sample_binary, CUSTOM_CRYPTER)
        assert identify_packer(packed) is None

    def test_crypter_high_entropy(self, sample_binary):
        packed = pack(sample_binary, CUSTOM_CRYPTER)
        assert shannon_entropy(packed) > OBFUSCATION_THRESHOLD

    def test_packed_binary_unparseable(self, sample_binary):
        packed = pack(sample_binary, PACKERS["UPX"])
        with pytest.raises(BinaryFormatError):
            parse_binary(packed)

    def test_unpack_without_packer_raises(self, sample_binary):
        with pytest.raises(BinaryFormatError):
            unpack(sample_binary)

    def test_unpack_crypter_raises(self, sample_binary):
        packed = pack(sample_binary, PACKERS["Enigma"])
        # Enigma has no signature so it cannot even be identified
        with pytest.raises(BinaryFormatError):
            unpack(packed)

    def test_pack_non_executable_raises(self):
        with pytest.raises(BinaryFormatError):
            pack(b"#!/bin/sh", PACKERS["UPX"])

    def test_is_packed(self, sample_binary):
        assert not is_packed(sample_binary)
        assert is_packed(pack(sample_binary, PACKERS["NSIS"]))

    def test_pack_chain(self, sample_binary):
        layered = pack_chain(sample_binary,
                             (PACKERS["UPX"], PACKERS["NSIS"]))
        outer = identify_packer(layered)
        assert outer is not None and outer.name == "NSIS"
        inner = unpack(layered)
        assert identify_packer(inner).name == "UPX"
        assert unpack(inner) == sample_binary


class TestStrings:
    def test_extracts_embedded(self, sample_binary):
        strings = extract_strings(sample_binary)
        assert any("stratum+tcp://" in s for s in strings)

    def test_min_length_filter(self):
        data = b"ab\x00abcdef\x00"
        assert extract_strings(data, min_length=6) == ["abcdef"]

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            extract_strings(b"abc", min_length=0)

    def test_binary_noise_filtered(self):
        rng = DeterministicRNG(5)
        noise = bytes(b for b in rng.randbytes(500) if b < 0x20)
        assert extract_strings(noise) == []


class TestCodegen:
    def test_size_exact(self):
        rng = DeterministicRNG(6)
        assert len(pseudo_code(rng, 1234)) == 1234

    def test_zero_size(self):
        rng = DeterministicRNG(6)
        assert pseudo_code(rng, 0) == b""

    def test_deterministic(self):
        assert pseudo_code(DeterministicRNG(7), 500) == \
            pseudo_code(DeterministicRNG(7), 500)

    def test_different_seeds_differ(self):
        assert pseudo_code(DeterministicRNG(7), 500) != \
            pseudo_code(DeterministicRNG(8), 500)
