"""Property-based tests on aggregation invariants.

Connected-component clustering must be order-insensitive, idempotent in
its outputs, and monotone in its feature set: adding grouping features
can only merge components, never split them.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import CampaignAggregator, GroupingPolicy
from repro.core.records import MinerRecord
from repro.osint.feeds import OsintFeeds

# -- strategies -------------------------------------------------------------

_wallets = st.sampled_from([f"W{i}" for i in range(8)])
_urls = st.sampled_from([f"http://h{i}.ru/a.exe" for i in range(4)])


@st.composite
def miner_records(draw, max_records=12):
    n = draw(st.integers(min_value=1, max_value=max_records))
    records = []
    for i in range(n):
        record = MinerRecord(sha256=f"s{i:04d}")
        wallets = draw(st.lists(_wallets, max_size=2, unique=True))
        record.identifiers = wallets
        record.identifier_coins = ["XMR"] * len(wallets)
        if draw(st.booleans()):
            record.itw_urls = [draw(_urls)]
        if draw(st.booleans()) and i > 0:
            record.parents = [f"s{draw(st.integers(0, i - 1)):04d}"]
        record.type = "Miner" if wallets else "Ancillary"
        records.append(record)
    return records


def _clusterings(campaigns):
    """frozenset-of-frozensets view for comparing clusterings."""
    return frozenset(frozenset(c.sample_hashes) for c in campaigns)


def _aggregate(records, policy=None):
    return CampaignAggregator(OsintFeeds(),
                              policy or GroupingPolicy.full()
                              ).aggregate(records)


class TestAggregationProperties:
    @given(miner_records())
    @settings(max_examples=50, deadline=None)
    def test_order_insensitive(self, records):
        forward = _aggregate(records)
        backward = _aggregate(list(reversed(records)))
        assert _clusterings(forward) == _clusterings(backward)

    @given(miner_records())
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, records):
        assert _clusterings(_aggregate(records)) == \
            _clusterings(_aggregate(records))

    @given(miner_records())
    @settings(max_examples=50, deadline=None)
    def test_partition(self, records):
        """Campaigns partition the kept miner samples: no sample in two
        campaigns, every miner sample in exactly one."""
        campaigns = _aggregate(records)
        seen = []
        for campaign in campaigns:
            seen.extend(campaign.sample_hashes)
        assert len(seen) == len(set(seen))
        miner_hashes = {r.sha256 for r in records if r.is_miner}
        covered = set(seen)
        assert miner_hashes <= covered

    @given(miner_records())
    @settings(max_examples=50, deadline=None)
    def test_feature_monotonicity(self, records):
        """The wallet-only clustering refines the full clustering:
        every baseline cluster sits inside one full cluster."""
        full = _aggregate(records)
        baseline = _aggregate(records, GroupingPolicy.wallet_only())
        full_of = {}
        for campaign in full:
            for sha in campaign.sample_hashes:
                full_of[sha] = campaign.campaign_id
        for campaign in baseline:
            owners = {full_of.get(sha) for sha in campaign.sample_hashes
                      if sha in full_of}
            assert len(owners) <= 1

    @given(miner_records())
    @settings(max_examples=50, deadline=None)
    def test_wallet_soundness(self, records):
        """Two records sharing a wallet always land together."""
        campaigns = _aggregate(records)
        campaign_of = {}
        for campaign in campaigns:
            for sha in campaign.sample_hashes:
                campaign_of[sha] = campaign.campaign_id
        by_wallet = {}
        for record in records:
            for wallet in record.identifiers:
                by_wallet.setdefault(wallet, set()).add(record.sha256)
        for wallet, hashes in by_wallet.items():
            owners = {campaign_of[sha] for sha in hashes
                      if sha in campaign_of}
            assert len(owners) <= 1, wallet
