"""Streaming corpus: chunked generation reproduces the batch world.

``SandboxReport`` equality falls back to object identity on its
``flows`` field (``FlowLog`` defines no ``__eq__``), so sandbox reports
from two independent generator runs are compared field-wise here, with
flows compared as ``FlowRecord`` lists.
"""

import dataclasses
import threading
import time

import pytest

from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.scale.stream import (
    ChunkPrefetcher,
    StreamingCorpus,
    materialize_stream,
)

_CONFIG = ScenarioConfig(seed=1, scale=0.01)


def _ha_reports_equal(a, b):
    if a is None or b is None:
        return a is b
    for f in dataclasses.fields(a):
        if f.name == "flows":
            if list(a.flows) != list(b.flows):
                return False
        elif getattr(a, f.name) != getattr(b, f.name):
            return False
    return True


@pytest.fixture(scope="module")
def streamed_world():
    return materialize_stream(_CONFIG, chunk_samples=512)


class TestMaterializeStream:
    def test_same_samples(self, small_world, streamed_world):
        batch = {s.sha256: s for s in small_world.samples}
        stream = {s.sha256: s for s in streamed_world.samples}
        assert stream == batch

    def test_same_vt_reports(self, small_world, streamed_world):
        batch = {r.sha256: r for r in small_world.vt.reports()}
        stream = {r.sha256: r for r in streamed_world.vt.reports()}
        assert stream == batch

    def test_same_ha_reports(self, small_world, streamed_world):
        shas = {s.sha256 for s in small_world.samples}
        batch = {sha: small_world.ha.get_report(sha) for sha in shas
                 if sha in small_world.ha}
        stream = {sha: streamed_world.ha.get_report(sha) for sha in shas
                  if sha in streamed_world.ha}
        assert set(stream) == set(batch)
        for sha, report in batch.items():
            assert _ha_reports_equal(stream[sha], report), sha

    def test_same_ground_truth(self, small_world, streamed_world):
        assert streamed_world.ground_truth == small_world.ground_truth

    def test_same_infrastructure_surface(self, small_world,
                                         streamed_world):
        assert (sorted(streamed_world.pool_directory.names())
                == sorted(small_world.pool_directory.names()))
        assert (streamed_world.stock_catalog.whitelist_hashes()
                == small_world.stock_catalog.whitelist_hashes())


class TestStreamingCorpus:
    def test_chunks_bounded_disjoint_complete(self, small_world):
        corpus = StreamingCorpus(_CONFIG, chunk_samples=256)
        seen = []
        for chunk in corpus.chunks():
            assert 0 < len(chunk) <= 256
            seen.extend(s.sha256 for s in chunk.samples)
        assert len(seen) == len(set(seen))
        assert set(seen) == {s.sha256 for s in small_world.samples}

    def test_chunks_carry_their_own_intel(self):
        corpus = StreamingCorpus(_CONFIG, chunk_samples=256)
        for chunk in corpus.chunks():
            shas = {s.sha256 for s in chunk.samples}
            # every sample arrives with its VT report, in-chunk
            assert set(chunk.reports) == shas
            # HA reports (sparse) only ever describe in-chunk samples
            assert set(chunk.ha_reports) <= shas

    def test_deterministic_across_instances(self):
        a = [[s.sha256 for s in chunk.samples]
             for chunk in StreamingCorpus(_CONFIG, 512).chunks()]
        b = [[s.sha256 for s in chunk.samples]
             for chunk in StreamingCorpus(_CONFIG, 512).chunks()]
        assert a == b

    def test_chunk_size_does_not_change_the_stream(self):
        coarse = [s.sha256
                  for chunk in StreamingCorpus(_CONFIG, 1024).chunks()
                  for s in chunk.samples]
        fine = [s.sha256
                for chunk in StreamingCorpus(_CONFIG, 128).chunks()
                for s in chunk.samples]
        assert coarse == fine

    def test_generator_never_accumulates_samples(self):
        corpus = StreamingCorpus(_CONFIG, chunk_samples=256)
        for _ in corpus.chunks():
            # the generator's in-memory world stays empty while streaming
            assert corpus._generator.samples == []

    def test_keep_sample_hashes_false_drops_ground_truth_lists(self):
        corpus = StreamingCorpus(_CONFIG, chunk_samples=512,
                                 keep_sample_hashes=False)
        for _ in corpus.chunks():
            pass
        tracked = [c for c in corpus.ground_truth
                   if c.sample_hashes and c.fixed_sample_count is None]
        # non-fixture campaigns shed their per-sample hash lists
        assert len(tracked) < len(corpus.ground_truth) / 2


class TestChunkPrefetcher:
    def test_preserves_order_and_content(self):
        items = list(range(100))
        assert list(ChunkPrefetcher(iter(items), depth=2)) == items

    def test_prefetched_chunks_equal_eager_chunks(self):
        eager = [[s.sha256 for s in chunk.samples]
                 for chunk in StreamingCorpus(_CONFIG, 256).chunks()]
        fetched = [[s.sha256 for s in chunk.samples]
                   for chunk in ChunkPrefetcher(
                       StreamingCorpus(_CONFIG, 256).chunks(), depth=2)]
        assert fetched == eager

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            ChunkPrefetcher(iter([]), depth=0)

    def test_producer_exception_relayed_in_position(self):
        def faulty():
            yield 1
            yield 2
            raise RuntimeError("generator died")

        prefetcher = ChunkPrefetcher(faulty(), depth=2)
        assert next(prefetcher) == 1
        assert next(prefetcher) == 2
        with pytest.raises(RuntimeError, match="generator died"):
            next(prefetcher)
        # a failed stream is terminated, not resumable
        with pytest.raises(StopIteration):
            next(prefetcher)

    def test_close_releases_blocked_producer(self):
        produced = []

        def endless():
            i = 0
            while True:
                produced.append(i)
                yield i
                i += 1

        prefetcher = ChunkPrefetcher(endless(), depth=2)
        assert next(prefetcher) == 0
        prefetcher.close()
        assert not prefetcher._thread.is_alive()
        # producer stopped near the depth bound, not at the consumer's pace
        assert len(produced) <= 8

    def test_quiesced_parks_the_producer(self):
        prefetcher = ChunkPrefetcher(iter(range(50)), depth=2)
        assert next(prefetcher) == 0
        with prefetcher.quiesced():
            assert prefetcher._parked.is_set()
            # drain one slot: the parked producer must not refill it
            assert next(prefetcher) == 1
            time.sleep(0.05)
            assert prefetcher._parked.is_set()
        # resumed: the rest of the stream arrives intact and in order
        assert list(prefetcher) == list(range(2, 50))

    def test_quiesced_after_exhaustion_is_a_noop(self):
        prefetcher = ChunkPrefetcher(iter([1]), depth=2)
        assert list(prefetcher) == [1]
        with prefetcher.quiesced():
            pass  # dead producer: nothing to park, nothing to wake

    def test_context_manager_closes(self):
        with ChunkPrefetcher(iter(range(1000)), depth=2) as prefetcher:
            assert next(prefetcher) == 0
        assert not prefetcher._thread.is_alive()
        assert threading.active_count() >= 1  # no lingering producer

    def test_bounded_readahead(self):
        """The producer never runs more than depth+1 items ahead."""
        pulled = []

        def tracking():
            for i in range(50):
                pulled.append(i)
                yield i

        prefetcher = ChunkPrefetcher(tracking(), depth=2)
        time.sleep(0.2)  # give the producer every chance to overrun
        assert len(pulled) <= 3  # queue depth 2 + one in-hand item
        assert list(prefetcher) == list(range(50))
