"""Unit tests for the blockchain substrate (emission, PoW, BTC ledger)."""

import datetime

import pytest

from repro.chain.btc_ledger import BtcLedger, OpaqueLedger, Transaction
from repro.chain.emission import (
    EmissionSchedule,
    MONERO_EMISSION,
    network_hashrate_hs,
)
from repro.chain.pow import ALGO_BY_ERA, algo_at, max_era_for_software
from repro.common.errors import ReproError

D = datetime.date


class TestEmission:
    def test_zero_before_genesis(self):
        assert MONERO_EMISSION.circulating_supply(D(2013, 1, 1)) == 0.0

    def test_supply_monotone(self):
        dates = [D(2015, 1, 1), D(2016, 1, 1), D(2017, 1, 1),
                 D(2018, 1, 1), D(2019, 1, 1)]
        supplies = [MONERO_EMISSION.circulating_supply(d) for d in dates]
        assert supplies == sorted(supplies)
        assert supplies[0] > 0

    def test_supply_matches_real_monero_apr_2019(self):
        """~16.9M XMR circulating when the paper's polling ended."""
        supply = MONERO_EMISSION.circulating_supply(D(2019, 4, 30))
        assert 16.0e6 < supply < 17.5e6

    def test_paper_headline_fraction(self):
        """741K XMR must be ~4.4% of supply (paper: 4.37%)."""
        fraction = MONERO_EMISSION.fraction_of_supply(741_000,
                                                      D(2019, 4, 30))
        assert 0.040 < fraction < 0.047

    def test_block_reward_decreasing(self):
        r2015 = MONERO_EMISSION.block_reward(D(2015, 1, 1))
        r2018 = MONERO_EMISSION.block_reward(D(2018, 1, 1))
        assert r2015 > r2018 > 0.6

    def test_daily_emission_consistency(self):
        day = D(2018, 6, 1)
        assert MONERO_EMISSION.daily_emission(day) == pytest.approx(
            MONERO_EMISSION.block_reward(day) * 720)

    def test_fraction_of_zero_supply(self):
        schedule = EmissionSchedule()
        assert schedule.fraction_of_supply(10, D(2010, 1, 1)) == 0.0


class TestHashrate:
    def test_positive_everywhere(self):
        for year in range(2014, 2020):
            assert network_hashrate_hs(D(year, 6, 1)) > 0

    def test_fork_drop_april_2018(self):
        """ASIC expulsion: hashrate halves across the April 2018 fork."""
        before = network_hashrate_hs(D(2018, 4, 4))
        after = network_hashrate_hs(D(2018, 4, 8))
        assert after < before * 0.6

    def test_growth_2016_to_2018(self):
        assert network_hashrate_hs(D(2018, 1, 1)) > \
            10 * network_hashrate_hs(D(2016, 1, 1))

    def test_clamps_outside_range(self):
        assert network_hashrate_hs(D(2010, 1, 1)) == \
            network_hashrate_hs(D(2014, 1, 1))


class TestPow:
    def test_four_eras(self):
        assert [a.name for a in ALGO_BY_ERA] == \
            ["cn/0", "cn/1", "cn/2", "cn/r"]

    def test_algo_at_fork_dates(self):
        assert algo_at(D(2018, 4, 5)).name == "cn/0"
        assert algo_at(D(2018, 4, 6)).name == "cn/1"
        assert algo_at(D(2018, 10, 18)).name == "cn/2"
        assert algo_at(D(2019, 3, 9)).name == "cn/r"

    def test_software_era(self):
        assert max_era_for_software(D(2017, 6, 1)) == 0
        assert max_era_for_software(D(2018, 6, 1)) == 1
        assert max_era_for_software(D(2019, 4, 1)) == 3


class TestBtcLedger:
    def test_balance_received(self):
        ledger = BtcLedger()
        ledger.payout("t1", D(2014, 1, 1), "pool:50btc", "w1", 1.5)
        ledger.payout("t2", D(2014, 2, 1), "pool:50btc", "w1", 0.5)
        assert ledger.balance_received("w1") == pytest.approx(2.0)
        assert ledger.balance_received("unknown") == 0.0

    def test_transactions_of_dedup(self):
        ledger = BtcLedger()
        tx = Transaction("t1", D(2014, 1, 1), ("w1",), (("w1", 1.0),))
        ledger.append(tx)
        assert len(ledger.transactions_of("w1")) == 1

    def test_cospend_clustering(self):
        """Huang et al.'s common-input heuristic."""
        ledger = BtcLedger()
        ledger.append(Transaction("t1", D(2014, 1, 1), ("a", "b"),
                                  (("x", 1.0),)))
        ledger.append(Transaction("t2", D(2014, 1, 2), ("b", "c"),
                                  (("y", 1.0),)))
        ledger.append(Transaction("t3", D(2014, 1, 3), ("d",),
                                  (("z", 1.0),)))
        clusters = {frozenset(c) for c in ledger.cluster_by_cospend()}
        assert frozenset({"a", "b", "c"}) in clusters
        assert frozenset({"d"}) in clusters

    def test_pool_inputs_not_clustered(self):
        ledger = BtcLedger()
        # two wallets paid by the same pool must NOT merge
        ledger.payout("t1", D(2014, 1, 1), "pool:x", "w1", 1.0)
        ledger.payout("t2", D(2014, 1, 1), "pool:x", "w2", 1.0)
        clusters = {frozenset(c) for c in ledger.cluster_by_cospend()}
        assert frozenset({"w1", "w2"}) not in clusters


class TestOpaqueLedger:
    """Monero-style opacity: the Huang methodology must fail (§VII)."""

    def test_all_queries_raise(self):
        ledger = OpaqueLedger()
        with pytest.raises(ReproError):
            ledger.balance_received("w")
        with pytest.raises(ReproError):
            ledger.transactions_of("w")
        with pytest.raises(ReproError):
            ledger.cluster_by_cospend()
