"""Tests for the botnet-population and economics substrate."""

import datetime

import pytest

from repro.botnet.economics import MarketRates, campaign_roi
from repro.botnet.population import (
    HASHRATE_PER_BOT,
    BotnetConfig,
    BotnetSimulator,
)
from repro.common.rng import DeterministicRNG

D = datetime.date


def simulate(config=None, start=D(2017, 6, 1), end=D(2018, 6, 1),
             seed=9):
    sim = BotnetSimulator(config or BotnetConfig(),
                          DeterministicRNG(seed))
    return sim, sim.run(start, end)


class TestPopulation:
    def test_trace_covers_window(self):
        _, trace = simulate()
        assert len(trace) == 365
        assert trace[0].day == D(2017, 6, 1)

    def test_deterministic(self):
        _, t1 = simulate(seed=4)
        _, t2 = simulate(seed=4)
        assert [d.bots for d in t1] == [d.bots for d in t2]

    def test_attrition_decays_without_resupply(self):
        config = BotnetConfig(initial_installs=1000,
                              max_resupplies=0, target_cap=None)
        _, trace = simulate(config)
        assert trace[-1].bots < trace[0].bots * 0.2

    def test_resupply_sustains_population(self):
        config = BotnetConfig(initial_installs=1000, resupply_batch=600,
                              max_resupplies=20, target_cap=None)
        _, trace = simulate(config)
        assert trace[-1].bots > 300
        assert sum(d.installs_bought for d in trace) > 0

    def test_target_cap_respected(self):
        """The '<2K bots' stealth advice from the forums (§II)."""
        config = BotnetConfig(initial_installs=5000, target_cap=2000)
        _, trace = simulate(config)
        assert max(d.bots for d in trace) <= 2000

    def test_idle_mining_duty_cycle(self):
        idle_cfg = BotnetConfig(idle_mining=True)
        greedy_cfg = BotnetConfig(idle_mining=False)
        _, idle = simulate(idle_cfg)
        _, greedy = simulate(greedy_cfg)
        assert idle[0].effective_bots < greedy[0].effective_bots
        assert idle[0].bots == greedy[0].bots

    def test_hashrate_proportional_to_bots(self):
        _, trace = simulate()
        for day in trace[:20]:
            assert day.hashrate_hs == pytest.approx(
                day.effective_bots * HASHRATE_PER_BOT)

    def test_distinct_ips_grow_with_resupply(self):
        sim, trace = simulate(BotnetConfig(
            initial_installs=1000, resupply_batch=800,
            max_resupplies=10, target_cap=None))
        ips = sim.distinct_ips(trace)
        assert ips > trace[0].bots  # cumulative > instantaneous

    def test_mined_xmr_positive(self):
        sim, trace = simulate()
        assert sim.mined_xmr(trace) > 0


class TestEconomics:
    def test_roi_high_for_typical_operation(self):
        """§VIII: 'relatively low cost and high return of investment'."""
        sim, trace = simulate(BotnetConfig(initial_installs=2000,
                                           target_cap=None,
                                           max_resupplies=5))
        economics = campaign_roi(sim, trace)
        assert economics.revenue_usd > economics.total_cost
        assert economics.roi > 3.0

    def test_cost_components(self):
        sim, trace = simulate()
        economics = campaign_roi(sim, trace, uses_proxy=True,
                                 uses_private_pool=True)
        assert economics.install_cost > 0
        assert economics.tooling_cost >= MarketRates().encrypted_miner
        assert economics.infra_cost > 0
        assert economics.total_cost == pytest.approx(
            economics.install_cost + economics.tooling_cost
            + economics.infra_cost)

    def test_proxy_adds_cost(self):
        sim, trace = simulate()
        plain = campaign_roi(sim, trace, uses_proxy=False)
        proxied = campaign_roi(sim, trace, uses_proxy=True)
        assert proxied.total_cost > plain.total_cost
        assert proxied.revenue_usd == pytest.approx(plain.revenue_usd)

    def test_revenue_uses_dated_prices(self):
        """Mining across the Jan-2018 peak is worth far more per XMR
        than the 54-USD flat average."""
        sim, trace = simulate(start=D(2017, 12, 1), end=D(2018, 2, 1))
        economics = campaign_roi(sim, trace)
        assert economics.revenue_usd > economics.mined_xmr * 54 * 3

    def test_profit_definition(self):
        sim, trace = simulate()
        economics = campaign_roi(sim, trace)
        assert economics.profit_usd == pytest.approx(
            economics.revenue_usd - economics.total_cost)

    def test_zero_cost_roi_infinite(self):
        from repro.botnet.economics import CampaignEconomics
        economics = CampaignEconomics(
            installs=0, install_cost=0.0, tooling_cost=0.0,
            infra_cost=0.0, mined_xmr=1.0, revenue_usd=54.0)
        assert economics.roi == float("inf")
