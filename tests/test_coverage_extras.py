"""Focused tests for less-travelled code paths across modules."""

import datetime

import pytest

from repro.core.aggregation import GroupingPolicy
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig

D = datetime.date


class TestScenarioKnobs:
    def test_samples_cap_enforced(self):
        world = generate_world(ScenarioConfig(
            seed=13, scale=0.004, samples_cap=5,
            include_junk=False, include_case_studies=False))
        from collections import Counter
        per_campaign = Counter(
            s.true_campaign_id for s in world.samples
            if s.kind == "miner" and s.true_campaign_id is not None)
        assert max(per_campaign.values()) <= 5

    def test_stride_affects_payment_granularity(self):
        fine = generate_world(ScenarioConfig(
            seed=14, scale=0.002, mining_stride_days=3,
            include_junk=False, include_case_studies=False))
        coarse = generate_world(ScenarioConfig(
            seed=14, scale=0.002, mining_stride_days=21,
            include_junk=False, include_case_studies=False))

        def payment_count(world):
            return sum(
                len(pool._account(w).payments)
                for pool in world.pool_directory.pools()
                for w in pool.known_wallets())

        assert payment_count(fine) > payment_count(coarse)

    def test_stride_preserves_totals(self):
        """Earnings targets hold regardless of simulation stride."""
        def total(stride):
            world = generate_world(ScenarioConfig(
                seed=15, scale=0.002, mining_stride_days=stride,
                include_junk=False, include_case_studies=False))
            return sum(c.actual_xmr for c in world.ground_truth
                       if c.coin == "XMR")

        assert total(3) == pytest.approx(total(14), rel=0.05)


class TestPolicyVariants:
    @pytest.fixture(scope="class")
    def world(self):
        return generate_world(ScenarioConfig(seed=16, scale=0.004,
                                             include_junk=False))

    def test_no_cname_policy_splits_freebuf(self, world):
        full = MeasurementPipeline(world).run()
        no_cname = MeasurementPipeline(
            world, policy=GroupingPolicy(cname_aliases=False)).run()
        truth = next(c for c in world.ground_truth
                     if c.label == "Freebuf")
        full_campaign = full.campaign_for_wallet(truth.identifiers[0])
        partial = no_cname.campaign_for_wallet(truth.identifiers[0])
        # without CNAME links the component can only shrink or stay
        assert partial.num_samples <= full_campaign.num_samples

    def test_no_hosting_policy_runs(self, world):
        result = MeasurementPipeline(
            world, policy=GroupingPolicy(hosting=False)).run()
        assert result.campaigns


class TestEnrichmentBothFlag:
    def test_both_row_computable(self, pipeline_result):
        """Table XI's 'Both' row: PPI and stock tooling together."""
        from repro.analysis import table11_infrastructure
        columns = table11_infrastructure(pipeline_result)
        for band in columns.values():
            assert band["both"] <= min(band["ppi"] + 1e-9,
                                       band["stock_tool"] + 1e-9)


class TestRecentWindowDefaults:
    def test_query_date_defaults_to_last_share(self):
        from repro.pools.pool import MiningPool, PoolConfig, Transparency
        pool = MiningPool(PoolConfig(
            "p", transparency=Transparency.RECENT_WINDOW,
            payout_threshold=0.05, recent_window_days=15))
        for i in range(40):
            pool.credit_mining_day(
                "W", D(2018, 6, 1) + datetime.timedelta(days=i), 2e6)
        stats = pool.api_wallet_stats("W")  # no query date passed
        assert stats.payments is not None
        cutoff = stats.last_share - datetime.timedelta(days=15)
        assert all(d >= cutoff for d, _ in stats.payments)


class TestAliasCache:
    def test_dealias_cache_consistency(self, small_world):
        """Repeated extraction of alias-using samples hits the cache
        and returns identical pool attributions."""
        from repro.core.dynamic_analysis import DynamicAnalyzer
        from repro.core.extraction import ExtractionEngine
        from repro.core.static_analysis import StaticAnalyzer
        from repro.sandbox.emulator import Sandbox

        engine = ExtractionEngine(
            StaticAnalyzer(),
            DynamicAnalyzer(Sandbox(small_world.resolver)),
            small_world.vt, small_world.pool_directory,
            small_world.resolver, small_world.passive_dns)
        freebuf = next(c for c in small_world.ground_truth
                       if c.label == "Freebuf")
        samples = [small_world.sample_by_hash(sha)
                   for sha in freebuf.sample_hashes
                   if small_world.sample_by_hash(sha).kind == "miner"][:6]
        pools_first = [engine.extract(s).pool for s in samples if s]
        pools_second = [engine.extract(s).pool for s in samples if s]
        assert pools_first == pools_second
        assert "minexmr" in pools_first or "crypto-pool" in pools_first


class TestResultHelpers:
    def test_campaign_for_unknown_wallet(self, pipeline_result):
        assert pipeline_result.campaign_for_wallet("GHOST") is None

    def test_campaigns_with_payments_subset(self, pipeline_result):
        paying = pipeline_result.campaigns_with_payments()
        assert set(c.campaign_id for c in paying) <= \
            set(c.campaign_id for c in pipeline_result.campaigns)
        assert all(c.total_xmr > 0 for c in paying)

    def test_xmr_campaigns_have_xmr_coins(self, pipeline_result):
        for campaign in pipeline_result.xmr_campaigns():
            assert "XMR" in campaign.coins
