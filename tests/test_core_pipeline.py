"""Integration tests: the full measurement pipeline on the shared world."""

import datetime

import pytest

from repro.analysis.validation import aggregation_quality
from repro.core.aggregation import GroupingPolicy
from repro.core.pipeline import MeasurementPipeline

D = datetime.date


class TestSanityFunnel:
    def test_junk_filtered(self, small_world, pipeline_result):
        kept = {r.sha256 for r in pipeline_result.records}
        junk = {s.sha256 for s in small_world.samples if s.kind == "junk"}
        # no more than a sliver of junk can leak through (AV-labelled
        # generic malware without mining IoCs is rejected)
        assert len(kept & junk) / max(1, len(junk)) < 0.01

    def test_miners_recovered(self, small_world, pipeline_result):
        true_miners = {s.sha256 for s in small_world.samples
                       if s.kind == "miner"}
        kept_miners = {r.sha256 for r in pipeline_result.miner_records()}
        recall = len(true_miners & kept_miners) / len(true_miners)
        assert recall > 0.9

    def test_stats_accounting(self, pipeline_result):
        stats = pipeline_result.stats
        assert stats.collected > stats.executables > stats.miners > 0
        assert stats.miners + stats.ancillaries == len(
            pipeline_result.records)

    def test_source_breakdown(self, pipeline_result):
        """VT and Palo Alto dominate, like Table III."""
        by_source = pipeline_result.stats.by_source
        assert by_source.get("Virus Total", 0) > \
            by_source.get("Hybrid Analysis", 0)

    def test_wallet_exception_used(self, pipeline_result):
        """Some crypter-packed low-positive samples enter through the
        illicit-wallet exception."""
        assert pipeline_result.stats.wallet_exception_hits >= 0
        exception_verdicts = [
            v for v in pipeline_result.verdicts.values()
            if v.used_wallet_exception
        ]
        assert len(exception_verdicts) == \
            pipeline_result.stats.wallet_exception_hits


class TestCampaignRecovery:
    def test_aggregation_quality(self, small_world, pipeline_result):
        scores = aggregation_quality(small_world, pipeline_result)
        assert scores.precision > 0.95
        assert scores.recall > 0.80

    def test_case_studies_recovered(self, small_world, pipeline_result):
        for label, expected_xmr in [("Freebuf", 163_756),
                                    ("USA-138", 7_242)]:
            truth = [c for c in small_world.ground_truth
                     if c.label == label][0]
            campaign = pipeline_result.campaign_for_wallet(
                truth.identifiers[0])
            assert campaign is not None, label
            assert campaign.total_xmr == pytest.approx(
                truth.actual_xmr, rel=0.05)

    def test_freebuf_structure(self, small_world, pipeline_result):
        truth = [c for c in small_world.ground_truth
                 if c.label == "Freebuf"][0]
        campaign = pipeline_result.campaign_for_wallet(
            truth.identifiers[0])
        assert campaign.num_wallets == 7
        assert set(campaign.cname_aliases) >= {
            "xt.freebuf.info", "x.alibuf.com", "xmr.honker.info"}

    def test_usa138_dual_coin(self, small_world, pipeline_result):
        truth = [c for c in small_world.ground_truth
                 if c.label == "USA-138"][0]
        campaign = pipeline_result.campaign_for_wallet(
            truth.identifiers[0])
        assert campaign.coins == {"XMR", "ETN"}

    def test_profiles_cover_paying_wallets(self, small_world,
                                           pipeline_result):
        for campaign in small_world.ground_truth:
            if (campaign.coin == "XMR" and campaign.target_xmr > 100
                    and not campaign.custom_driven):
                hits = [i for i in campaign.identifiers
                        if i in pipeline_result.profiles]
                assert hits, campaign.campaign_id

    def test_total_earnings_match_ground_truth(self, small_world,
                                               pipeline_result):
        truth_total = sum(c.actual_xmr for c in small_world.ground_truth
                          if c.coin == "XMR")
        measured = sum(c.total_xmr for c in pipeline_result.campaigns)
        assert measured == pytest.approx(truth_total, rel=0.05)


class TestPolicyAblations:
    def test_wallet_only_recovers_fewer_links(self, small_world,
                                              pipeline_result):
        baseline = MeasurementPipeline(
            small_world, policy=GroupingPolicy.wallet_only()).run()
        full_scores = aggregation_quality(small_world, pipeline_result)
        base_scores = aggregation_quality(small_world, baseline)
        assert base_scores.recall <= full_scores.recall
        assert len(baseline.campaigns) >= len(pipeline_result.campaigns)

    def test_lower_av_threshold_keeps_more(self, small_world,
                                           pipeline_result):
        greedy = MeasurementPipeline(small_world,
                                     positives_threshold=5).run()
        assert greedy.stats.miners >= pipeline_result.stats.miners
