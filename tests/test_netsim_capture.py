"""Tests for the JSONL flow-capture interchange."""

import pytest

from repro.netsim.capture import (
    dump_flows,
    flow_from_dict,
    flow_to_dict,
    load_flows,
    merge_captures,
)
from repro.netsim.flows import FlowLog, FlowRecord


def sample_log():
    log = FlowLog()
    log.record(FlowRecord("pool.minexmr.com", "10.1.1.1", 4444,
                          "stratum", login="W1", password="x",
                          agent="xmrig/2.8.1",
                          payload_excerpt='{"method":"login"}'))
    log.record(FlowRecord("", "198.51.100.9", 80, "http"))
    return log


class TestRoundtrip:
    def test_dict_roundtrip(self):
        flow = sample_log().stratum_flows()[0]
        assert flow_from_dict(flow_to_dict(flow)) == flow

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        original = sample_log()
        written = dump_flows(original, path)
        assert written == 2
        loaded = load_flows(path)
        assert len(loaded) == 2
        assert list(loaded) == list(original)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        dump_flows(sample_log(), path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_flows(path)) == 2

    def test_stratum_fields_survive(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        dump_flows(sample_log(), path)
        loaded = load_flows(path)
        stratum = loaded.stratum_flows()[0]
        assert stratum.login == "W1"
        assert stratum.agent == "xmrig/2.8.1"


class TestMerge:
    def test_merge(self):
        merged = merge_captures([sample_log(), sample_log()])
        assert len(merged) == 4

    def test_merge_empty(self):
        assert len(merge_captures([])) == 0


class TestSandboxIntegration:
    def test_sandbox_capture_exports(self, small_world, tmp_path):
        from repro.sandbox.emulator import Sandbox
        miner = next(s for s in small_world.samples if s.kind == "miner")
        report = Sandbox(small_world.resolver).run(miner.sha256,
                                                   miner.behavior)
        path = tmp_path / "run.jsonl"
        written = dump_flows(report.flows, path)
        assert written == len(report.flows)
        if written:
            reloaded = load_flows(path)
            assert reloaded.contacted_hosts() == \
                report.flows.contacted_hosts()
