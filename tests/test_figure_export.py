"""Tests for the figure-series CSV exporters."""

import csv

import pytest

from repro.reporting.figure_export import (
    export_all_figures,
    export_fig1_series,
    export_fig4_series,
    export_fig5_series,
    export_monthly_series,
)


def read_csv(path):
    with path.open() as handle:
        return list(csv.DictReader(handle))


class TestFig1Export:
    def test_rows_and_schema(self, small_world, tmp_path):
        path = tmp_path / "fig1.csv"
        rows = export_fig1_series(small_world.forum_corpus, path)
        data = read_csv(path)
        assert len(data) == rows
        assert set(data[0]) == {"year", "coin", "share"}

    def test_shares_sum_to_one_per_year(self, small_world, tmp_path):
        path = tmp_path / "fig1.csv"
        export_fig1_series(small_world.forum_corpus, path)
        totals = {}
        for row in read_csv(path):
            totals[row["year"]] = totals.get(row["year"], 0.0) \
                + float(row["share"])
        for year, total in totals.items():
            assert total == pytest.approx(1.0, abs=0.02), year


class TestFig4Export:
    def test_cdf_monotone(self, pipeline_result, tmp_path):
        path = tmp_path / "fig4.csv"
        export_fig4_series(pipeline_result, path)
        by_series = {}
        for row in read_csv(path):
            by_series.setdefault(row["series"], []).append(
                (float(row["value"]), float(row["cdf"])))
        for series, points in by_series.items():
            values = [v for v, _ in points]
            cdfs = [c for _, c in points]
            assert values == sorted(values), series
            assert cdfs == sorted(cdfs), series
            assert cdfs[-1] == pytest.approx(1.0)


class TestFig5Export:
    def test_counts_match_exhibit(self, pipeline_result, tmp_path):
        from repro.analysis import fig5_pools_per_campaign
        path = tmp_path / "fig5.csv"
        export_fig5_series(pipeline_result, path)
        total_csv = sum(int(row["campaigns"]) for row in read_csv(path))
        histograms = fig5_pools_per_campaign(pipeline_result)
        total_exhibit = sum(sum(h.values()) for h in histograms.values())
        assert total_csv == total_exhibit


class TestMonthlyExport:
    def test_months_sorted(self, pipeline_result, tmp_path):
        path = tmp_path / "monthly.csv"
        count = export_monthly_series(pipeline_result, path)
        data = read_csv(path)
        assert len(data) == count
        months = [row["month"] for row in data]
        assert months == sorted(months)


class TestBundle:
    def test_export_all(self, small_world, pipeline_result, tmp_path):
        counts = export_all_figures(pipeline_result,
                                    small_world.forum_corpus,
                                    tmp_path / "figs")
        assert set(counts) == {"fig1", "fig4", "fig5", "monthly"}
        for name in ("fig1_forums.csv", "fig4_cdf.csv",
                     "fig5_pools.csv", "monthly_series.csv"):
            assert (tmp_path / "figs" / name).exists()
