"""Serial vs parallel pipeline equivalence.

The contract of the parallel execution layer: a pooled run must be
bit-identical to the serial one — same records in the same order, same
verdicts, same funnel stats, same campaign partition.  Anything less
would make worker count a hidden measurement parameter.
"""

import pytest

from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.perf.cache import clear_caches


@pytest.fixture(scope="module")
def eq_world():
    return generate_world(ScenarioConfig(seed=77, scale=0.004,
                                         include_junk=False))


@pytest.fixture(scope="module")
def serial_result(eq_world):
    clear_caches()
    return MeasurementPipeline(eq_world).run()


@pytest.fixture(scope="module")
def parallel_result(eq_world):
    clear_caches()
    return MeasurementPipeline(eq_world, workers=4).run()


def test_records_identical(serial_result, parallel_result):
    assert [r.sha256 for r in serial_result.records] == \
        [r.sha256 for r in parallel_result.records]
    for a, b in zip(serial_result.records, parallel_result.records):
        assert a == b


def test_verdicts_identical(serial_result, parallel_result):
    assert set(serial_result.verdicts) == set(parallel_result.verdicts)
    for sha, verdict in serial_result.verdicts.items():
        assert verdict == parallel_result.verdicts[sha], sha


def test_stats_identical(serial_result, parallel_result):
    assert serial_result.stats == parallel_result.stats


def test_campaign_partition_identical(serial_result, parallel_result):
    def partition(result):
        return sorted(
            tuple(sorted(c.identifiers)) for c in result.campaigns)

    assert partition(serial_result) == partition(parallel_result)


def test_profiles_and_proxies_identical(serial_result, parallel_result):
    assert set(serial_result.profiles) == set(parallel_result.profiles)
    assert serial_result.proxy_ips == parallel_result.proxy_ips


def test_fork_barrier_brackets_pool_creation(eq_world):
    """A supplied fork_barrier is held across every worker fork, once.

    Owners of live threads (the chunk prefetcher) pass their
    ``quiesced`` hook here; the engine must enter it exactly once —
    around lazy pool creation plus the prestart that forks the full
    worker complement — and never again for later map calls.
    """
    from contextlib import contextmanager

    from repro.perf.parallel import ParallelExtractionEngine

    spec = MeasurementPipeline(eq_world)._spec
    events = []

    @contextmanager
    def barrier():
        events.append("enter")
        yield
        events.append("exit")

    clear_caches()
    with ParallelExtractionEngine(eq_world, spec, workers=2,
                                  fork_barrier=barrier) as pooled:
        first = pooled.map_stage1(range(4))
        assert events == ["enter", "exit"]  # one window, already closed
        again = pooled.map_stage1(range(4, 6))
        assert events == ["enter", "exit"]  # pool reused, no re-fork

    clear_caches()
    with ParallelExtractionEngine(eq_world, spec, workers=1) as serial:
        assert first + again == serial.map_stage1(range(6))


def test_workers_validated(eq_world):
    with pytest.raises(ValueError):
        MeasurementPipeline(eq_world, workers=0)


def test_chunking_does_not_change_results(eq_world):
    clear_caches()
    small_chunks = MeasurementPipeline(eq_world, workers=2,
                                       chunk_size=3).run()
    clear_caches()
    serial = MeasurementPipeline(eq_world).run()
    assert [r.sha256 for r in small_chunks.records] == \
        [r.sha256 for r in serial.records]
    assert small_chunks.stats == serial.stats
