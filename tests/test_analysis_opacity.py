"""Tests for the opaque-pool gap estimator."""

import pytest

from repro.analysis.opacity import (
    estimate_opacity_gap,
    opaque_identifiers,
)


class TestOpaqueIdentifiers:
    def test_minergate_emails_counted(self, pipeline_result):
        hidden = opaque_identifiers(pipeline_result)
        emails = [i for i in hidden if "@" in i]
        assert emails  # the minergate e-mail population is invisible

    def test_profiled_wallets_excluded(self, pipeline_result):
        hidden = set(opaque_identifiers(pipeline_result))
        assert not hidden & set(pipeline_result.profiles)


class TestGapEstimate:
    def test_shape(self, pipeline_result):
        gap = estimate_opacity_gap(pipeline_result)
        assert gap.measured_identifiers > 0
        assert gap.measured_xmr > 0
        assert gap.opaque_identifiers > 0
        assert gap.estimated_hidden_xmr_median >= 0

    def test_median_bound_conservative(self, pipeline_result):
        """Skew makes the mean bound >= the median bound."""
        gap = estimate_opacity_gap(pipeline_result)
        assert gap.estimated_hidden_xmr_mean >= \
            gap.estimated_hidden_xmr_median

    def test_undercount_fraction_bounded(self, pipeline_result):
        gap = estimate_opacity_gap(pipeline_result)
        assert 0.0 <= gap.undercount_fraction_median < 1.0

    def test_consistency(self, pipeline_result):
        gap = estimate_opacity_gap(pipeline_result)
        assert gap.estimated_hidden_xmr_median == pytest.approx(
            gap.median_xmr_per_identifier * gap.opaque_identifiers)
