"""The BENCH_history trend report: loading, rendering, CLI."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                       / "benchmarks"))

from trend_report import (  # noqa: E402
    load_history,
    main,
    render_csv,
    render_markdown,
)


def _entry(seq, mps, calibration=None, suite="lint"):
    payload = {"bench": suite,
               "points": [{"mode": "cold", "workers": 1,
                           "modules_per_s": mps}]}
    if calibration is not None:
        payload["calibration"] = calibration
    return f"{suite}-{seq:04d}.json", payload


def _write_history(tmp_path, entries):
    history = tmp_path / "BENCH_history"
    history.mkdir()
    for name, payload in entries:
        (history / name).write_text(json.dumps(payload))
    return history


class TestLoadHistory:
    def test_rows_sorted_and_keyed_like_the_gate(self, tmp_path):
        history = _write_history(tmp_path, [
            _entry(2, 60.0, 1000.0), _entry(1, 80.0, 1000.0)])
        rows = load_history(history)
        assert [r["seq"] for r in rows] == [1, 2]
        assert rows[0]["label"] == "mode=cold, workers=1"
        assert rows[0]["normalised"] == 80.0 / 1000.0

    def test_unstamped_entry_has_no_normalised_value(self, tmp_path):
        history = _write_history(tmp_path, [_entry(1, 80.0)])
        (row,) = load_history(history)
        assert row["normalised"] is None

    def test_corrupt_and_unknown_entries_skipped(self, tmp_path):
        history = _write_history(tmp_path, [_entry(1, 80.0)])
        (history / "lint-0002.json").write_text("{not json")
        (history / "mystery-0001.json").write_text(
            json.dumps({"bench": "mystery", "points": []}))
        assert len(load_history(history)) == 1

    def test_suite_filter(self, tmp_path):
        history = _write_history(tmp_path, [_entry(1, 80.0)])
        assert load_history(history, ["scale"]) == []
        assert len(load_history(history, ["lint"])) == 1


class TestRendering:
    def test_markdown_delta_uses_normalised_values(self, tmp_path):
        # same code speed on a machine twice as fast: delta must be 0%
        history = _write_history(tmp_path, [
            _entry(1, 80.0, 1000.0), _entry(2, 160.0, 2000.0)])
        markdown = render_markdown(load_history(history))
        assert "+0.0%" in markdown
        assert "## lint (modules_per_s)" in markdown

    def test_markdown_raw_delta_without_stamps(self, tmp_path):
        history = _write_history(tmp_path, [
            _entry(1, 80.0), _entry(2, 40.0)])
        assert "-50.0%" in render_markdown(load_history(history))

    def test_empty_history_renders_placeholder(self):
        assert "No history entries" in render_markdown([])

    def test_csv_round_trips_every_observation(self, tmp_path):
        history = _write_history(tmp_path, [
            _entry(1, 80.0, 1000.0), _entry(2, 60.0, 1000.0)])
        rows = load_history(history)
        text = render_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0].startswith("suite,seq,label,metric")
        assert len(lines) == 1 + len(rows)


class TestCli:
    def test_writes_both_artifacts(self, tmp_path):
        history = _write_history(tmp_path, [_entry(1, 80.0, 1000.0)])
        md = tmp_path / "trends.md"
        out_csv = tmp_path / "trends.csv"
        assert main(["--history-dir", str(history),
                     "--out-md", str(md),
                     "--out-csv", str(out_csv)]) == 0
        assert "## lint" in md.read_text()
        assert out_csv.read_text().count("\n") == 2

    def test_missing_history_dir_fails_cleanly(self, tmp_path):
        assert main(["--history-dir",
                     str(tmp_path / "nope")]) == 2
