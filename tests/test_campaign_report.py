"""Tests for the campaign-dossier renderer."""

import pytest

from repro.reporting.campaign_report import (
    render_campaign_report,
    render_top_campaign_reports,
)


@pytest.fixture(scope="module")
def freebuf(small_world, pipeline_result):
    truth = next(c for c in small_world.ground_truth
                 if c.label == "Freebuf")
    return pipeline_result.campaign_for_wallet(truth.identifiers[0])


class TestCampaignReport:
    def test_sections_present(self, pipeline_result, freebuf):
        report = render_campaign_report(pipeline_result, freebuf,
                                        title="Freebuf")
        for heading in ("# Freebuf", "## Identity", "## Infrastructure",
                        "## Attribution", "## Payment timeline",
                        "## Grouping evidence"):
            assert heading in report

    def test_identity_details(self, pipeline_result, freebuf):
        report = render_campaign_report(pipeline_result, freebuf)
        assert "identifiers: 7" in report
        assert "XMR" in report

    def test_aliases_listed(self, pipeline_result, freebuf):
        report = render_campaign_report(pipeline_result, freebuf)
        assert "xt.freebuf.info" in report
        assert "x.alibuf.com" in report

    def test_fork_annotations(self, pipeline_result, freebuf):
        report = render_campaign_report(pipeline_result, freebuf)
        assert "PoW fork 2018-04-06" in report or \
            "PoW fork 2018-10-18" in report

    def test_novel_campaign_marked(self, pipeline_result, freebuf):
        report = render_campaign_report(pipeline_result, freebuf)
        assert "none (novel)" in report  # §V: previously unreported

    def test_wallet_truncation(self, pipeline_result, freebuf):
        """Full wallets never leak into reports, only prefixes."""
        report = render_campaign_report(pipeline_result, freebuf)
        for identifier in freebuf.identifiers:
            assert identifier not in report
            assert identifier[:16] in report

    def test_top_reports_concatenated(self, pipeline_result):
        bundle = render_top_campaign_reports(pipeline_result, top=2)
        assert bundle.count("# Campaign C#") == 2
        assert "---" in bundle

    def test_campaign_without_payments(self, pipeline_result):
        silent = next((c for c in pipeline_result.campaigns
                       if c.total_xmr == 0), None)
        if silent is None:
            pytest.skip("no zero-earning campaign at this seed")
        report = render_campaign_report(pipeline_result, silent)
        assert "## Payment timeline" not in report
        assert "## Identity" in report
