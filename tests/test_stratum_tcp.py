"""Integration tests: Stratum over real TCP sockets (asyncio)."""

import asyncio

import pytest

from repro.pools.pool import BanPolicy, MiningPool, PoolConfig
from repro.stratum.server import ShareSink
from repro.stratum.tcp import StratumTcpClient, StratumTcpServer


class RecordingSink(ShareSink):
    def __init__(self, banned=()):
        self.logins = []
        self.shares = []
        self.banned = set(banned)

    def on_login(self, login, agent, src_ip):
        self.logins.append((login, agent, src_ip))
        return "Banned" if login in self.banned else None

    def on_share(self, login, valid, src_ip, difficulty=1):
        self.shares.append((login, valid, src_ip))


def run(coro):
    return asyncio.run(coro)


async def _with_server(sink, body, algo="cn/0"):
    server = StratumTcpServer(sink, current_algo=algo)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


class TestTcpStratum:
    def test_login_over_socket(self):
        sink = RecordingSink()

        async def body(server):
            client = StratumTcpClient("127.0.0.1", server.port, "WALLET")
            ok = await client.connect()
            await client.close()
            return ok

        assert run(_with_server(sink, body))
        assert sink.logins[0][0] == "WALLET"
        assert sink.logins[0][2] == "127.0.0.1"

    def test_mining_accounting(self):
        sink = RecordingSink()

        async def body(server):
            client = StratumTcpClient("127.0.0.1", server.port, "WALLET")
            await client.connect()
            accepted = await client.mine(8)
            await client.close()
            return accepted

        assert run(_with_server(sink, body)) == 8
        assert len(sink.shares) == 8
        assert all(valid for _, valid, _ in sink.shares)

    def test_banned_login_rejected(self):
        sink = RecordingSink(banned={"EVIL"})

        async def body(server):
            client = StratumTcpClient("127.0.0.1", server.port, "EVIL")
            ok = await client.connect()
            await client.close()
            return ok, client.last_error

        ok, error = run(_with_server(sink, body))
        assert not ok
        assert error is not None and "Banned" in error.message

    def test_algo_mismatch_rejected(self):
        sink = RecordingSink()

        async def body(server):
            client = StratumTcpClient("127.0.0.1", server.port, "W",
                                      supported_algo="cn/0")
            await client.connect()
            accepted = await client.mine(4)
            await client.close()
            return accepted

        accepted = run(_with_server(sink, body, algo="cn/1"))
        assert accepted == 0
        assert all(not valid for _, valid, _ in sink.shares)

    def test_multiple_concurrent_clients(self):
        sink = RecordingSink()

        async def body(server):
            async def one(i):
                client = StratumTcpClient("127.0.0.1", server.port,
                                          f"W{i}")
                await client.connect()
                accepted = await client.mine(3)
                await client.close()
                return accepted

            results = await asyncio.gather(*(one(i) for i in range(5)))
            return results

        results = run(_with_server(sink, body))
        assert results == [3] * 5
        assert {login for login, _, _ in sink.logins} == \
            {f"W{i}" for i in range(5)}

    def test_pool_simulator_as_sink(self):
        """The full pool simulator terminates real TCP miners."""
        pool = MiningPool(PoolConfig(
            "tcp-pool", ban_policy=BanPolicy(min_connections_to_ban=2)))

        async def body(server):
            client = StratumTcpClient("127.0.0.1", server.port, "WALLET")
            await client.connect()
            await client.mine(5)
            await client.close()

        run(_with_server(pool, body))
        assert pool.distinct_connections("WALLET") == 1
