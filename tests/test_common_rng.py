"""Unit tests for the deterministic RNG substrate."""

import math

import pytest

from repro.common.rng import DeterministicRNG, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_range(self):
        assert 0 <= derive_seed(7, "x") < 2 ** 64


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(5)
        b = DeterministicRNG(5)
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_substreams_independent(self):
        root = DeterministicRNG(5)
        s1 = root.substream("one")
        s2 = root.substream("two")
        assert [s1.random() for _ in range(5)] != \
            [s2.random() for _ in range(5)]

    def test_substream_stable_across_consumption(self):
        # Consuming draws from the parent must not perturb children.
        a = DeterministicRNG(5)
        _ = [a.random() for _ in range(100)]
        child_after = a.substream("x").random()
        b = DeterministicRNG(5)
        child_before = b.substream("x").random()
        assert child_after == child_before


class TestDistributions:
    def test_bernoulli_bounds(self):
        rng = DeterministicRNG(1)
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)
        with pytest.raises(ValueError):
            rng.bernoulli(-0.1)

    def test_bernoulli_extremes(self):
        rng = DeterministicRNG(1)
        assert all(not rng.bernoulli(0.0) for _ in range(20))
        assert all(rng.bernoulli(1.0) for _ in range(20))

    def test_bernoulli_rate(self):
        rng = DeterministicRNG(1)
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_pareto_min(self):
        rng = DeterministicRNG(2)
        values = [rng.pareto(1.2, xmin=3.0) for _ in range(1000)]
        assert min(values) >= 3.0

    def test_pareto_heavy_tail(self):
        rng = DeterministicRNG(2)
        values = sorted(rng.pareto(1.1) for _ in range(5000))
        # the top 1% should hold a disproportionate share of the mass
        top_share = sum(values[-50:]) / sum(values)
        assert top_share > 0.15

    def test_lognormal_median(self):
        rng = DeterministicRNG(3)
        values = sorted(rng.lognormal_median(100.0, 0.5)
                        for _ in range(4001))
        median = values[len(values) // 2]
        assert 80 < median < 125

    def test_poisson_zero_rate(self):
        rng = DeterministicRNG(4)
        assert rng.poisson(0) == 0
        assert rng.poisson(-1) == 0

    def test_poisson_mean(self):
        rng = DeterministicRNG(4)
        draws = [rng.poisson(5.0) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 4.5 < mean < 5.5

    def test_poisson_large_rate_uses_normal_branch(self):
        rng = DeterministicRNG(4)
        draws = [rng.poisson(800.0) for _ in range(200)]
        mean = sum(draws) / len(draws)
        assert 750 < mean < 850
        assert all(d >= 0 for d in draws)

    def test_zipf_rank_bounds(self):
        rng = DeterministicRNG(5)
        ranks = [rng.zipf_rank(10) for _ in range(500)]
        assert min(ranks) >= 1 and max(ranks) <= 10

    def test_zipf_rank_skew(self):
        rng = DeterministicRNG(5)
        ranks = [rng.zipf_rank(10) for _ in range(3000)]
        assert ranks.count(1) > ranks.count(10)

    def test_zipf_rank_invalid(self):
        rng = DeterministicRNG(5)
        with pytest.raises(ValueError):
            rng.zipf_rank(0)

    def test_hexbytes_format(self):
        rng = DeterministicRNG(6)
        value = rng.hexbytes(8)
        assert len(value) == 16
        int(value, 16)  # must parse

    def test_randbytes_length(self):
        rng = DeterministicRNG(6)
        assert len(rng.randbytes(33)) == 33
