"""Tier-1 gate: ``pytest`` itself fails on new reprolint violations.

This keeps the invariant checks active even where CI is unavailable —
a change that breaks a correctness contract fails the ordinary test
run, with the same findings ``repro lint`` would print.
"""

from pathlib import Path

from repro.lint import default_source_root, lint_source_tree
from repro.lint.baseline import BASELINE_NAME, find_baseline


def _repo_baseline():
    return find_baseline(default_source_root())


class TestLintGate:
    def test_source_tree_has_no_unbaselined_findings(self):
        run = lint_source_tree()
        assert run.report.parse_errors == []
        assert run.report.modules_scanned > 100  # the real tree, not a stub
        rendered = [f.render() for f in run.regressions]
        assert rendered == [], (
            "reprolint regressions (fix them, pragma-annotate with a "
            "justification, or — for accepted legacy findings only — "
            f"add them to {BASELINE_NAME}):\n" + "\n".join(rendered))

    def test_baseline_carries_no_stale_grants(self):
        # strict-mode invariant: the committed baseline only lists
        # findings the code still has, so it shrinks monotonically.
        run = lint_source_tree()
        assert run.expired == [], (
            "stale baseline grants — regenerate with "
            "`repro lint --update-baseline`")

    def test_committed_baseline_is_discoverable(self):
        path = _repo_baseline()
        assert path is not None and path.name == BASELINE_NAME
        assert path.parent / "pyproject.toml" in path.parent.iterdir()

    def test_strict_gate_verdict(self):
        assert lint_source_tree().ok(strict=True)
