"""Unit tests for the CTPH fuzzy-hash implementation."""

import pytest

from repro.binfmt.codegen import pseudo_code
from repro.common.rng import DeterministicRNG
from repro.fuzzyhash.ctph import (
    FuzzyHash,
    compare,
    compute,
    distance,
    edit_distance,
    signature_grams,
)


@pytest.fixture
def base_data():
    return pseudo_code(DeterministicRNG(21), 4096)


class TestCompute:
    def test_deterministic(self, base_data):
        assert str(compute(base_data)) == str(compute(base_data))

    def test_format(self, base_data):
        fh = compute(base_data)
        text = str(fh)
        parts = text.split(":")
        assert len(parts) == 3
        assert int(parts[0]) >= 3

    def test_parse_roundtrip(self, base_data):
        fh = compute(base_data)
        parsed = FuzzyHash.parse(str(fh))
        assert parsed == fh

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            FuzzyHash.parse("justonefield")

    def test_signature_budget(self, base_data):
        fh = compute(base_data)
        assert len(fh.signature) <= 64
        assert len(fh.double_signature) <= 64

    def test_small_input(self):
        fh = compute(b"abc")
        assert fh.blocksize == 3

    def test_empty_input(self):
        fh = compute(b"")
        assert fh.signature  # degenerate single-char signature


class TestCompare:
    def test_identical_is_100(self, base_data):
        fh = compute(base_data)
        assert compare(fh, fh) == 100

    def test_small_mutation_high_score(self, base_data):
        mutated = bytearray(base_data)
        mutated[100:108] = b"XXXXXXXX"
        score = compare(compute(base_data), compute(bytes(mutated)))
        assert score >= 85

    def test_unrelated_is_zero(self, base_data):
        rng = DeterministicRNG(22)
        other = rng.randbytes(len(base_data))
        assert compare(compute(base_data), compute(other)) == 0

    def test_incompatible_blocksizes(self, base_data):
        small = compute(b"tiny input here")
        large = compute(base_data)
        if large.blocksize > small.blocksize * 2:
            assert compare(small, large) == 0

    def test_symmetry(self, base_data):
        mutated = bytearray(base_data)
        mutated[50:54] = b"ZZZZ"
        h1, h2 = compute(base_data), compute(bytes(mutated))
        assert compare(h1, h2) == compare(h2, h1)

    def test_distance_complements_score(self, base_data):
        fh = compute(base_data)
        assert distance(fh, fh) == 0.0
        rng = DeterministicRNG(23)
        other = compute(rng.randbytes(4096))
        assert distance(fh, other) == 1.0


class TestEditDistance:
    def test_identity(self):
        assert edit_distance("abc", "abc") == 0

    def test_insertion_deletion(self):
        assert edit_distance("abc", "abxc") == 1
        assert edit_distance("abxc", "abc") == 1

    def test_substitution(self):
        assert edit_distance("abc", "axc") == 1

    def test_empty(self):
        assert edit_distance("", "abc") == 3

    def test_triangle_inequality(self):
        a, b, c = "kitten", "sitting", "mitten"
        assert edit_distance(a, c) <= \
            edit_distance(a, b) + edit_distance(b, c)


class TestGrams:
    def test_short_signature_empty(self):
        assert signature_grams("abc") == frozenset()

    def test_gram_count(self):
        grams = signature_grams("abcdefghij")
        assert len(grams) == 4  # 10 - 7 + 1

    def test_shared_gram_required_for_score(self):
        # two signatures with no common 7-gram must score 0
        h1 = compute(b"a" * 500)
        h2 = compute(b"b" * 500)
        assert compare(h1, h2) == 0
