"""Unit tests for the profit analysis stage (§III-D)."""

import datetime

import pytest

from repro.core.profit import ProfitAnalyzer, WalletProfile
from repro.market.rates import AVERAGE_XMR_USD
from repro.pools.directory import PoolDirectory
from repro.pools.pool import MiningPool, PoolConfig, Transparency

D = datetime.date


@pytest.fixture
def directory():
    return PoolDirectory([
        PoolConfig("full", transparency=Transparency.FULL_HISTORY,
                   payout_threshold=0.1),
        PoolConfig("totals", transparency=Transparency.TOTALS_ONLY,
                   payout_threshold=0.1),
        PoolConfig("opaque", transparency=Transparency.OPAQUE),
    ])


def mine(pool: MiningPool, wallet: str, days: int = 40,
         start: D = D(2018, 6, 1), hashrate: float = 2e6) -> float:
    total = 0.0
    for i in range(days):
        total += pool.credit_mining_day(
            wallet, start + datetime.timedelta(days=i), hashrate)
    return total


class TestProfiling:
    def test_wallet_found_in_one_pool(self, directory):
        mine(directory.get("full"), "W1")
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        assert profile.pools == ["full"]
        assert profile.total_paid > 0

    def test_wallet_across_multiple_pools(self, directory):
        """'We queried all the wallets against all the pools.'"""
        mine(directory.get("full"), "W1")
        mine(directory.get("totals"), "W1")
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        assert set(profile.pools) == {"full", "totals"}

    def test_opaque_pool_invisible(self, directory):
        account = directory.get("opaque")._account("W2")
        account.total_paid = 100.0
        profile = ProfitAnalyzer(directory).profile_wallet("W2")
        assert profile.records == []

    def test_unknown_wallet_empty(self, directory):
        profile = ProfitAnalyzer(directory).profile_wallet("GHOST")
        assert profile.total_paid == 0
        assert profile.last_share is None

    def test_profile_many_filters_misses(self, directory):
        mine(directory.get("full"), "W1")
        profiles = ProfitAnalyzer(directory).profile_many(
            ["W1", "GHOST"])
        assert set(profiles) == {"W1"}

    def test_payments_ordered(self, directory):
        mine(directory.get("full"), "W1")
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        dates = [d for d, _, _ in profile.payments()]
        assert dates == sorted(dates)

    def test_active_flag(self, directory):
        mine(directory.get("full"), "W1", start=D(2019, 4, 2), days=5)
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        assert profile.active
        mine(directory.get("full"), "W2", start=D(2018, 1, 1), days=5)
        assert not ProfitAnalyzer(directory).profile_wallet("W2").active


class TestUsdConversion:
    def test_dated_payments_use_daily_rate(self, directory):
        mined = mine(directory.get("full"), "W1", days=10,
                     start=D(2018, 1, 5))  # near the price peak
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        paid = profile.total_paid
        # near the peak the rate is ~8x the 54-USD fallback
        assert profile.total_usd > paid * AVERAGE_XMR_USD * 3

    def test_totals_only_uses_fallback(self, directory):
        mine(directory.get("totals"), "W1", days=10, start=D(2018, 1, 5))
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        record = profile.records[0]
        assert record.payments == []
        assert record.usd == pytest.approx(
            record.total_paid * AVERAGE_XMR_USD)

    def test_xmr_total_excludes_other_coins(self):
        directory = PoolDirectory([
            PoolConfig("xmrpool1", coin="XMR", payout_threshold=0.01),
            PoolConfig("etnpool1", coin="ETN", payout_threshold=0.01),
        ])
        account = directory.get("etnpool1")._account("W1")
        account.total_paid = 500.0
        account.payments.append((D(2018, 6, 1), 500.0))
        account.last_share = D(2018, 6, 1)
        mine(directory.get("xmrpool1"), "W1", days=10)
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        assert profile.total_paid_in("ETN") == pytest.approx(500.0)
        assert profile.total_paid < 500.0  # XMR only


class TestWalletProfileAggregates:
    def test_num_payments(self, directory):
        mine(directory.get("full"), "W1")
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        assert profile.num_payments == len(profile.payments())

    def test_last_share_max_across_pools(self, directory):
        mine(directory.get("full"), "W1", start=D(2018, 1, 1), days=5)
        mine(directory.get("totals"), "W1", start=D(2018, 8, 1), days=5)
        profile = ProfitAnalyzer(directory).profile_wallet("W1")
        assert profile.last_share == D(2018, 8, 5)
