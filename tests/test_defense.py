"""Tests for the countermeasures substrate (§VI made executable)."""

import datetime

import pytest

from repro.defense.blacklist import BlacklistDefense
from repro.defense.fork_policy import (
    compare_cadences,
    historical_forks,
    quarterly_forks,
    simulate_fork_cadence,
)
from repro.defense.host_monitor import (
    CpuAnomalyMonitor,
    HostState,
    MinerTrick,
    PowerMeterMonitor,
    typical_day_trace,
)
from repro.defense.intervention import WalletReportingCampaign
from repro.core.records import MinerRecord
from repro.pools.directory import default_directory

D = datetime.date


def miner_record(sha, host, port=4444, cnames=(), dst_ip=None):
    record = MinerRecord(sha256=sha)
    record.identifiers = ["W" + sha]
    record.identifier_coins = ["XMR"]
    record.url_pool = f"stratum+tcp://{host}:{port}"
    record.cname_aliases = list(cnames)
    record.dst_ip = dst_ip
    record.type = "Miner"
    return record


class TestBlacklist:
    def test_known_pool_blocked(self):
        defense = BlacklistDefense(default_directory())
        report = defense.evaluate([
            miner_record("s1", "pool.minexmr.com")])
        assert report.blocked == 1
        assert report.block_rate == 1.0

    def test_cname_alias_evades(self):
        """The paper's core point: aliases defeat domain blacklists."""
        defense = BlacklistDefense(default_directory())
        report = defense.evaluate([
            miner_record("s1", "xt.freebuf.info",
                         cnames=["xt.freebuf.info"])])
        assert report.blocked == 0
        assert report.evaded_by_cname == 1

    def test_proxy_evades(self):
        defense = BlacklistDefense(default_directory())
        report = defense.evaluate(
            [miner_record("s1", "10.9.9.9", dst_ip="10.9.9.9")],
            proxy_ips={"10.9.9.9"})
        assert report.evaded_by_proxy == 1

    def test_raw_ip_evades(self):
        defense = BlacklistDefense(default_directory())
        report = defense.evaluate(
            [miner_record("s1", "198.51.100.7", dst_ip="198.51.100.7")])
        assert report.evaded_by_raw_ip == 1

    def test_alias_learning_closes_gap(self):
        """Feeding the pipeline's de-aliased CNAMEs back into the
        blacklist blocks the previously evading samples."""
        records = [miner_record("s1", "xt.freebuf.info",
                                cnames=["xt.freebuf.info"])]
        naive = BlacklistDefense(default_directory()).evaluate(records)
        learned = BlacklistDefense(
            default_directory()).evaluate_with_alias_learning(records)
        assert naive.blocked == 0
        assert learned.blocked == 1

    def test_extra_domains(self):
        defense = BlacklistDefense(default_directory(),
                                   extra_domains=["bad.example"])
        assert defense.is_blocked_domain("BAD.EXAMPLE")

    def test_block_rate_on_world(self, small_world, pipeline_result):
        defense = BlacklistDefense(small_world.pool_directory)
        report = defense.evaluate(pipeline_result.miner_records(),
                                  pipeline_result.proxy_ips)
        assert report.total_miners > 0
        # blocking catches a substantial share but is far from complete
        assert 0.1 < report.block_rate < 0.95
        # the paper's evasions are all present in the ecosystem
        assert report.evaded_by_cname > 0
        assert report.evaded > 0


class TestIntervention:
    def test_bans_freebuf_wallets(self, small_world, pipeline_result):
        report = WalletReportingCampaign(
            small_world.pool_directory).run(pipeline_result)
        assert report.wallets_reported > 0
        # cooperative pools act on at least some botnet-scale wallets
        assert report.wallets_banned >= 1
        assert report.ban_rate <= 1.0

    def test_noncooperative_pools_refuse(self, small_world,
                                         pipeline_result):
        report = WalletReportingCampaign(
            small_world.pool_directory).run(pipeline_result)
        # dwarfpool is non-cooperative by config: never in the ban list
        assert "dwarfpool" not in report.bans_by_pool

    def test_disrupted_run_rate_nonnegative(self, small_world,
                                            pipeline_result):
        report = WalletReportingCampaign(
            small_world.pool_directory).run(pipeline_result)
        assert report.disrupted_run_rate >= 0.0


class TestForkPolicy:
    def test_no_forks_retains_everything(self, small_world):
        outcome = simulate_fork_cadence(small_world.ground_truth, [])
        assert outcome.retained_fraction == 1.0
        assert outcome.surviving_campaigns == outcome.campaigns

    def test_more_forks_more_disruption(self, small_world):
        none, historical, quarterly = compare_cadences(
            small_world.ground_truth)
        assert none.retained_fraction == 1.0
        assert historical.retained_fraction <= none.retained_fraction
        assert quarterly.retained_fraction <= historical.retained_fraction
        assert quarterly.disruption > 0.2

    def test_quarterly_calendar_density(self):
        forks = quarterly_forks(D(2016, 1, 1), D(2019, 4, 30))
        assert len(forks) > 3 * len(historical_forks())

    def test_deterministic(self, small_world):
        a = simulate_fork_cadence(small_world.ground_truth,
                                  historical_forks(), seed=3)
        b = simulate_fork_cadence(small_world.ground_truth,
                                  historical_forks(), seed=3)
        assert a == b


class TestHostMonitor:
    def test_naive_miner_caught_by_cpu_monitor(self):
        trace = typical_day_trace()
        outcome = CpuAnomalyMonitor().evaluate(trace, MinerTrick.NONE)
        assert outcome.detected

    def test_idle_mining_weakens_cpu_monitor(self):
        trace = typical_day_trace()
        naive = CpuAnomalyMonitor().evaluate(trace, MinerTrick.NONE)
        idle = CpuAnomalyMonitor().evaluate(trace, MinerTrick.IDLE_MINING)
        assert idle.alerts < naive.alerts

    def test_rootkit_defeats_cpu_monitor(self):
        """Malware controls the host: readings can be falsified (§VI)."""
        trace = typical_day_trace()
        outcome = CpuAnomalyMonitor().evaluate(trace, MinerTrick.ROOTKIT)
        assert not outcome.detected
        assert outcome.alerts == 0

    def test_power_meter_defeats_rootkit(self):
        """The externalised detector the paper proposes: physics wins."""
        trace = typical_day_trace()
        outcome = PowerMeterMonitor().evaluate(trace, MinerTrick.ROOTKIT)
        assert outcome.detected

    def test_power_meter_quiet_on_clean_host(self):
        trace = [HostState(user_active=True, task_manager_open=False,
                           mining_load=0.0) for _ in range(24)]
        outcome = PowerMeterMonitor().evaluate(trace, MinerTrick.NONE)
        assert not outcome.detected

    def test_monitor_aware_throttles_during_taskmgr(self):
        state = HostState(user_active=True, task_manager_open=True,
                          mining_load=0.9)
        assert state.actual_cpu(MinerTrick.MONITOR_AWARE) == \
            pytest.approx(state.baseline_load)
        assert state.actual_cpu(MinerTrick.NONE) > 0.9
