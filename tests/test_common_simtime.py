"""Unit tests for the simulation time model."""

import datetime

import pytest

from repro.common import simtime


class TestParseDate:
    def test_string(self):
        assert simtime.parse_date("2018-04-06") == datetime.date(2018, 4, 6)

    def test_passthrough(self):
        d = datetime.date(2017, 1, 1)
        assert simtime.parse_date(d) is d

    def test_bad_string(self):
        with pytest.raises(ValueError):
            simtime.parse_date("April 6th 2018")


class TestDateRange:
    def test_exclusive_end(self):
        days = list(simtime.date_range(datetime.date(2018, 1, 1),
                                       datetime.date(2018, 1, 4)))
        assert len(days) == 3
        assert days[-1] == datetime.date(2018, 1, 3)

    def test_stride(self):
        days = list(simtime.date_range(datetime.date(2018, 1, 1),
                                       datetime.date(2018, 1, 10), 3))
        assert days == [datetime.date(2018, 1, 1),
                        datetime.date(2018, 1, 4),
                        datetime.date(2018, 1, 7)]

    def test_empty(self):
        assert list(simtime.date_range(datetime.date(2018, 1, 5),
                                       datetime.date(2018, 1, 5))) == []

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            list(simtime.date_range(datetime.date(2018, 1, 1),
                                    datetime.date(2018, 1, 2), 0))


class TestUnixConversion:
    def test_roundtrip(self):
        day = datetime.date(2018, 10, 18)
        assert simtime.from_unix(simtime.to_unix(day)) == day

    def test_intraday_offset(self):
        day = datetime.date(2018, 10, 18)
        ts = simtime.to_unix(day, 3600)
        assert simtime.from_unix(ts) == day

    def test_offset_bounds(self):
        with pytest.raises(ValueError):
            simtime.to_unix(datetime.date(2018, 1, 1), 86400)


class TestPowEra:
    def test_before_all_forks(self):
        assert simtime.pow_era(datetime.date(2017, 12, 31)) == 0

    def test_fork_boundaries(self):
        assert simtime.pow_era(datetime.date(2018, 4, 5)) == 0
        assert simtime.pow_era(datetime.date(2018, 4, 6)) == 1
        assert simtime.pow_era(datetime.date(2018, 10, 18)) == 2
        assert simtime.pow_era(datetime.date(2019, 3, 9)) == 3

    def test_monotone(self):
        eras = [simtime.pow_era(d) for d in simtime.date_range(
            datetime.date(2018, 1, 1), datetime.date(2019, 4, 1), 10)]
        assert eras == sorted(eras)


class TestClampAndHelpers:
    def test_clamp_inside(self):
        d = datetime.date(2015, 6, 1)
        assert simtime.clamp(d) == d

    def test_clamp_low(self):
        assert simtime.clamp(datetime.date(2000, 1, 1)) == simtime.SIM_START

    def test_clamp_high(self):
        assert simtime.clamp(datetime.date(2030, 1, 1)) == simtime.SIM_END

    def test_month_floor(self):
        assert simtime.month_floor(datetime.date(2018, 7, 23)) == \
            datetime.date(2018, 7, 1)

    def test_days_between_negative(self):
        assert simtime.days_between(datetime.date(2018, 1, 2),
                                    datetime.date(2018, 1, 1)) == -1

    def test_add_days(self):
        assert simtime.add_days(datetime.date(2018, 12, 31), 1) == \
            datetime.date(2019, 1, 1)
