"""Tests for the exhibit generators against the shared world.

These assert the *shapes* the paper reports: who wins, skew, band
structure — not absolute values (the corpus is scaled down ~100x).
"""

import datetime

import pytest

from repro.analysis import (
    fig1_forum_trends,
    fig4_cdf,
    fig5_pools_per_campaign,
    fig6_campaign_structure,
    fig7_payment_timeline,
    headline_monero_fraction,
    table3_dataset,
    table4_currencies,
    table5_pre2014_reuse,
    table6_hosting_domains,
    table7_pool_popularity,
    table8_top_campaigns,
    table9_stock_tools,
    table10_packers,
    table11_infrastructure,
    table12_related_work,
    table14_top_wallets,
    table15_email_pools,
)
from repro.analysis.exhibits import (
    cdf_quantile,
    fork_dieoff,
    monthly_payment_series,
    multi_pool_share,
    stock_tool_campaign_share,
)

D = datetime.date


class TestFig1:
    def test_monero_wins_2018(self, small_world):
        shares = fig1_forum_trends(small_world.forum_corpus)
        assert max(shares[2018], key=shares[2018].get) == "Monero"

    def test_bitcoin_wins_2012(self, small_world):
        shares = fig1_forum_trends(small_world.forum_corpus)
        assert max(shares[2012], key=shares[2012].get) == "Bitcoin"


class TestTable3:
    def test_structure(self, pipeline_result):
        rows = table3_dataset(pipeline_result)
        assert rows["ALL EXECUTABLES"] == (rows["Miner Binaries"]
                                           + rows["Ancillary Binaries"])
        assert rows["Miner Binaries"] > rows["Ancillary Binaries"]
        assert rows["Sandbox Analysis"] > 0


class TestTable4:
    def test_monero_most_common(self, pipeline_result):
        data = table4_currencies(pipeline_result)
        per_currency = data["campaigns_per_currency"]
        assert max(per_currency, key=per_currency.get) == "XMR"
        assert per_currency["XMR"] > per_currency.get("BTC", 0)

    def test_email_campaigns_counted(self, pipeline_result):
        data = table4_currencies(pipeline_result)
        assert data["email_campaigns"] > 0

    def test_xmr_samples_peak_2017(self, pipeline_result):
        data = table4_currencies(pipeline_result)
        xmr_years = data["samples_per_year"]["XMR"]
        if "2017" in xmr_years:
            assert xmr_years["2017"] >= xmr_years.get("2014", 0)


class TestFig4:
    def test_skew(self, pipeline_result):
        """99% of campaigns earn <100 XMR (paper, Fig. 4 narrative)."""
        cdf = fig4_cdf(pipeline_result)
        share_small = cdf_quantile(cdf["earnings_xmr"], 100.0)
        assert share_small >= 0.7
        assert cdf["samples"][0] >= 1

    def test_sorted(self, pipeline_result):
        cdf = fig4_cdf(pipeline_result)
        for series in cdf.values():
            assert series == sorted(series)


class TestTable5:
    def test_four_pre2014_droppers(self, pipeline_result):
        rows = table5_pre2014_reuse(pipeline_result)
        assert len(rows) == 4
        assert sorted(r["year"] for r in rows) == \
            ["2012", "2013", "2013", "2013"]

    def test_shared_wallet_pair(self, pipeline_result):
        """Two of the four link to the same XMR wallet (Table V)."""
        rows = table5_pre2014_reuse(pipeline_result)
        wallets = [r["xmr_wallet"] for r in rows]
        assert len(set(wallets)) < len(wallets)


class TestTable6:
    def test_rows_sorted_by_samples(self, pipeline_result):
        rows = table6_hosting_domains(pipeline_result)
        counts = [r[1] for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_public_repos_present(self, pipeline_result):
        domains = {r[0] for r in table6_hosting_domains(pipeline_result,
                                                        top=100)}
        assert any("github" in d or "amazonaws" in d or "weebly" in d
                   for d in domains)


class TestFig5:
    def test_rich_campaigns_use_more_pools(self, pipeline_result):
        share = multi_pool_share(pipeline_result, min_xmr=1000.0)
        assert share > 0.5  # paper: 97%

    def test_histograms_cover_campaigns(self, pipeline_result):
        histograms = fig5_pools_per_campaign(pipeline_result)
        total = sum(sum(h.values()) for h in histograms.values())
        xmr_paying = [c for c in pipeline_result.campaigns
                      if "XMR" in c.coins and c.total_xmr > 0]
        assert total == len(xmr_paying)


class TestTable7:
    def test_sorted_by_volume(self, pipeline_result):
        rows = table7_pool_popularity(pipeline_result)
        volumes = [r["xmr_mined"] for r in rows]
        assert volumes == sorted(volumes, reverse=True)

    def test_big_three_present(self, pipeline_result):
        pools = {r["pool"] for r in table7_pool_popularity(pipeline_result)}
        assert {"crypto-pool", "dwarfpool", "minexmr"} <= pools

    def test_minergate_absent(self, pipeline_result):
        """Opaque pools cannot appear in payment-derived stats."""
        pools = {r["pool"] for r in table7_pool_popularity(pipeline_result)}
        assert "minergate" not in pools


class TestTable8:
    def test_top1_dominates(self, pipeline_result):
        data = table8_top_campaigns(pipeline_result)
        assert data["top1_share"] > 0.15  # paper: ~22%

    def test_rows_sorted(self, pipeline_result):
        data = table8_top_campaigns(pipeline_result)
        xmr = [r["xmr"] for r in data["rows"]]
        assert xmr == sorted(xmr, reverse=True)

    def test_freebuf_is_top(self, small_world, pipeline_result):
        data = table8_top_campaigns(pipeline_result)
        assert data["rows"][0]["xmr"] == pytest.approx(163_756, rel=0.05)
        assert data["rows"][0]["end"] == "active*"


class TestTable9:
    def test_attributions_exist(self, pipeline_result):
        rows = table9_stock_tools(pipeline_result)
        assert rows
        names = {r["tool"] for r in rows}
        assert names <= {"xmrig", "claymore", "niceHash", "learnMiner",
                         "ccminer"}

    def test_share_of_campaigns(self, pipeline_result):
        share = stock_tool_campaign_share(pipeline_result)
        assert 0.0 < share < 0.5  # paper: ~18%


class TestTable10:
    def test_upx_dominant(self, pipeline_result):
        rows = table10_packers(pipeline_result)
        packed = {k: v for k, v in rows.items() if k != "Not packed"}
        assert max(packed, key=packed.get) == "UPX"

    def test_majority_unpacked(self, pipeline_result):
        rows = table10_packers(pipeline_result)
        packed_total = sum(v for k, v in rows.items()
                           if k != "Not packed")
        assert rows["Not packed"] > packed_total


class TestTable11:
    def test_cnames_concentrate_at_top(self, pipeline_result):
        columns = table11_infrastructure(pipeline_result)
        assert columns[">=10k"]["cnames"] >= columns["<100"]["cnames"]

    def test_fork_dieoff_shape(self, pipeline_result):
        dieoff = fork_dieoff(pipeline_result)
        assert len(dieoff) == 3
        assert dieoff[0] > 0.5            # most campaigns die at fork 1
        assert dieoff == sorted(dieoff)   # cumulative attrition

    def test_all_column_counts(self, pipeline_result):
        columns = table11_infrastructure(pipeline_result)
        band_total = sum(int(columns[b]["#campaigns"])
                         for b in ["<100", "[100-1k)", "[1k-10k)", ">=10k"])
        assert band_total == int(columns["ALL"]["#campaigns"])


class TestTable12:
    def test_static_rows(self):
        rows = table12_related_work()
        assert len(rows) == 6

    def test_with_result_appends_ours(self, pipeline_result):
        rows = table12_related_work(pipeline_result)
        assert rows[-1]["work"] == "This reproduction"
        assert "XMR" in rows[-1]["profits"]


class TestFig6and7:
    def _freebuf(self, small_world, pipeline_result):
        truth = [c for c in small_world.ground_truth
                 if c.label == "Freebuf"][0]
        return pipeline_result.campaign_for_wallet(truth.identifiers[0])

    def test_structure_summary(self, small_world, pipeline_result):
        campaign = self._freebuf(small_world, pipeline_result)
        structure = fig6_campaign_structure(pipeline_result, campaign)
        assert structure["wallets"] == 7
        assert "xt.freebuf.info" in structure["cname_aliases"]

    def test_payment_timeline(self, small_world, pipeline_result):
        campaign = self._freebuf(small_world, pipeline_result)
        timeline = fig7_payment_timeline(pipeline_result, campaign)
        assert timeline
        monthly = monthly_payment_series(timeline)
        months = sorted({m for series in monthly.values()
                         for m in series})
        assert months[0] < "2017"
        assert months[-1] >= "2018-10"

    def test_intervention_reduces_payments(self, small_world,
                                           pipeline_result):
        """After the Oct-2018 bans + fork, Freebuf's payments collapse
        (Fig. 8: 'nearly turning it off')."""
        campaign = self._freebuf(small_world, pipeline_result)
        monthly = monthly_payment_series(
            fig7_payment_timeline(pipeline_result, campaign))
        total_by_month = {}
        for series in monthly.values():
            for month, amount in series.items():
                total_by_month[month] = total_by_month.get(month, 0) + amount
        before = [v for m, v in total_by_month.items()
                  if "2018-04" <= m < "2018-10"]
        after = [v for m, v in total_by_month.items() if m >= "2018-11"]
        assert before and after
        assert max(after) < max(before) * 0.5


class TestTables14and15:
    def test_top_wallets_sorted(self, pipeline_result):
        rows = table14_top_wallets(pipeline_result)
        values = [r["xmr"] for r in rows]
        assert values == sorted(values, reverse=True)

    def test_emails_concentrate_at_minergate(self, pipeline_result):
        rows = table15_email_pools(pipeline_result)
        assert rows
        assert max(rows, key=rows.get) == "minergate"


class TestHeadline:
    def test_fraction_positive(self, pipeline_result):
        headline = headline_monero_fraction(pipeline_result)
        assert headline["total_xmr"] > 0
        assert 0 < headline["fraction"] < 0.05
        assert headline["circulating_supply"] > 16e6
