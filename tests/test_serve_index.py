"""Serving index ≡ direct pipeline queries.

The acceptance property for ``repro.serve``: every answer the index
gives (hash, wallet, campaign, domain, bulk scan) must equal what a
direct query against the measurement result would say.
"""

import pytest

from repro.reporting.dataset_export import campaign_summary
from repro.scale.columnar import RecordStore
from repro.serve.index import build_index
from repro.serve.snapshot import (
    derive_result_from_records,
    result_from_store,
)


@pytest.fixture(scope="module")
def index(pipeline_result):
    return build_index(pipeline_result, generation=1, source="test")


class TestHashTable:
    def test_every_sample_indexed(self, index, pipeline_result):
        assert index.counts()["hashes"] == len(pipeline_result.records)

    def test_hash_intel_matches_record(self, index, pipeline_result):
        for record in pipeline_result.records[:50]:
            intel = index.hash_intel(record.sha256)
            assert intel is not None
            assert intel["is_miner"] == record.is_miner
            assert intel["pool"] == record.pool
            assert intel["wallets"] == sorted(record.identifiers)
            assert intel["packer"] == record.packer
            verdict = pipeline_result.verdicts[record.sha256]
            assert intel["malware"] == verdict.is_malware

    def test_hash_lookup_is_case_insensitive(self, index,
                                             pipeline_result):
        sha = pipeline_result.records[0].sha256
        assert index.hash_intel(sha.upper()) == index.hash_intel(sha)

    def test_campaign_attribution_matches_aggregation(
            self, index, pipeline_result):
        member_of = {}
        for campaign in pipeline_result.campaigns:
            for sha in campaign.sample_hashes:
                member_of[sha] = campaign.campaign_id
        for record in pipeline_result.records[:200]:
            intel = index.hash_intel(record.sha256)
            assert intel["campaign_id"] == member_of.get(record.sha256)

    def test_unknown_hash_is_none(self, index):
        assert index.hash_intel("f" * 64) is None


class TestWalletTable:
    def test_profiled_wallet_matches_profile(self, index,
                                             pipeline_result):
        checked = 0
        for identifier, profile in pipeline_result.profiles.items():
            intel = index.wallet_intel(identifier)
            if intel is None:
                continue  # profile exists but no sample embeds it
            assert intel["profiled"] is True
            assert intel["total_xmr"] == round(profile.total_paid, 6)
            assert intel["total_usd"] == round(profile.total_usd, 2)
            assert intel["num_payments"] == profile.num_payments
            assert intel["pools"] == sorted(set(profile.pools))
            assert intel["active"] == profile.active
            checked += 1
        assert checked > 0

    def test_sample_count_matches_records(self, index, pipeline_result):
        wallet = next(i for r in pipeline_result.records
                      for i in r.identifiers)
        expected = sum(1 for r in pipeline_result.records
                       if wallet in r.identifiers)
        assert index.wallet_intel(wallet)["samples"] == expected


class TestCampaignTable:
    def test_summary_equals_release_index(self, index, pipeline_result):
        for campaign in pipeline_result.campaigns:
            assert (index.campaign_intel(campaign.campaign_id)
                    == campaign_summary(campaign))

    def test_ids_start_at_one(self, index, pipeline_result):
        assert index.campaign_intel(0) is None
        assert index.campaign_intel(1) is not None
        assert (index.counts()["campaigns"]
                == len(pipeline_result.campaigns))


class TestLookupAndScan:
    def test_lookup_dispatches_by_kind(self, index, pipeline_result):
        sha = pipeline_result.records[0].sha256
        assert index.lookup(sha)["kind"] == "hash"
        wallet = next(i for r in pipeline_result.records
                      for i in r.identifiers)
        assert index.lookup(wallet)["kind"] == "wallet"
        assert index.lookup("no-such-indicator-anywhere") is None

    def test_scan_finds_every_submitted_known_ioc(self, index):
        examples = index.examples(limit=6)
        known = (examples["hashes"] + examples["wallets"]
                 + examples["domains"])
        blob = "\n".join(known + ["junk-ioc-1", "also.not.known"])
        hits = {h["indicator"] for h in index.scan_text(blob)}
        assert set(known) <= hits

    def test_scan_hits_resolve_to_point_lookups(self, index):
        examples = index.examples(limit=4)
        blob = "\n".join(examples["hashes"] + examples["domains"])
        for hit in index.scan_text(blob):
            match = index.lookup(hit["indicator"])
            assert match is not None
            assert match["kind"] == hit["kind"]

    def test_scan_of_garbage_is_empty(self, index):
        assert index.scan_text("nothing known in here at all") == []


class TestDerivedResultEquivalence:
    """Index built from a bare record stream (the --store path)."""

    def test_matches_batch_index_tables(self, index, small_world,
                                        pipeline_result):
        derived = derive_result_from_records(small_world,
                                             pipeline_result.records)
        other = build_index(derived, generation=1, source="derived")
        assert other.counts() == index.counts()
        assert other._campaigns == index._campaigns
        assert other._wallets == index._wallets
        assert other._domains == index._domains
        # hash payloads agree except the verdict-backed field, which a
        # bare record stream cannot reconstruct.
        for sha, intel in index._hashes.items():
            expected = dict(intel, malware=None)
            assert other._hashes[sha] == expected


class TestStoreResultEquivalence:
    """Index built streaming from a columnar store, never holding the
    record list — the multi-process-serve / million-sample path."""

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory, pipeline_result):
        store = RecordStore(tmp_path_factory.mktemp("segments"))
        records = pipeline_result.records
        half = len(records) // 2
        store.append_segment(records[:half], "seg-0000")
        store.append_segment(records[half:], "seg-0001")
        return store

    @pytest.mark.parametrize("workers", [1, 2])
    def test_matches_derived_index_tables(self, index, small_world,
                                          pipeline_result, store,
                                          workers):
        result = result_from_store(small_world, store, workers=workers)
        other = build_index(result, generation=1, source="store")
        assert other.counts() == index.counts()
        assert other._campaigns == index._campaigns
        assert other._wallets == index._wallets
        assert other._domains == index._domains
        for sha, intel in index._hashes.items():
            assert other._hashes[sha] == dict(intel, malware=None)

    def test_campaigns_carry_no_records(self, small_world, store):
        result = result_from_store(small_world, store)
        assert result.campaigns
        assert all(c.records == [] for c in result.campaigns)
        # ...yet enrichment ran (it needs records while they exist)
        assert any(c.first_seen is not None for c in result.campaigns)
        assert any(c.packers for c in result.campaigns)
