"""Tests for the Huang et al. 2014 baseline (§VII comparison)."""

import pytest

from repro.baselines.huang2014 import (
    attempt_on_monero,
    build_btc_ledger_from_world,
    run_huang2014_baseline,
)


def btc_wallets(world):
    return [
        wallet
        for campaign in world.ground_truth
        if campaign.coin == "BTC"
        for wallet in campaign.identifiers
    ]


class TestLedgerConstruction:
    def test_payouts_materialised(self, small_world):
        ledger = build_btc_ledger_from_world(small_world)
        funded = [w for w in btc_wallets(small_world)
                  if ledger.balance_received(w) > 0]
        assert funded

    def test_deterministic(self, small_world):
        l1 = build_btc_ledger_from_world(small_world, seed=11)
        l2 = build_btc_ledger_from_world(small_world, seed=11)
        wallets = btc_wallets(small_world)
        assert [l1.balance_received(w) for w in wallets] == \
            [l2.balance_received(w) for w in wallets]


class TestBaselineOnBtc:
    def test_recovers_wallet_income(self, small_world):
        result = run_huang2014_baseline(small_world,
                                        btc_wallets(small_world))
        assert result.wallets_analyzed > 0
        assert result.total_btc > 0

    def test_btc_earnings_negligible_in_usd(self, small_world):
        """§IV-B: BTC wallets in the dataset earned < 5K USD total."""
        result = run_huang2014_baseline(small_world,
                                        btc_wallets(small_world))
        assert result.total_usd < 5000

    def test_cospend_clusters_multiwallet_campaigns(self, small_world):
        result = run_huang2014_baseline(small_world,
                                        btc_wallets(small_world))
        assert result.operations >= 1
        # every cluster is within one ground-truth campaign (no merges)
        wallet_owner = {
            wallet: campaign.campaign_id
            for campaign in small_world.ground_truth
            for wallet in campaign.identifiers
        }
        for cluster in result.clusters:
            owners = {wallet_owner[w] for w in cluster
                      if w in wallet_owner}
            assert len(owners) == 1

    def test_unknown_wallets_skipped(self, small_world):
        result = run_huang2014_baseline(small_world, ["1NotARealWallet"])
        assert result.wallets_analyzed == 0


class TestBaselineOnMonero:
    def test_fails_on_opaque_ledger(self, small_world):
        """The methodology pivot: chain analysis is impossible on
        CryptoNote coins, so the paper queries pools instead."""
        xmr_wallets = [
            w for c in small_world.ground_truth if c.coin == "XMR"
            for w in c.identifiers
        ]
        message = attempt_on_monero(xmr_wallets)
        assert "opaque" in message
        assert "pool" in message
