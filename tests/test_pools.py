"""Unit tests for the mining-pool simulator and directory."""

import datetime

import pytest

from repro.common.errors import PoolError
from repro.pools.directory import KNOWN_POOLS, PoolDirectory, default_directory
from repro.pools.pool import (
    BanPolicy,
    MiningPool,
    PoolConfig,
    Transparency,
)

D = datetime.date


@pytest.fixture
def pool():
    return MiningPool(PoolConfig("testpool", fee=0.01,
                                 payout_threshold=0.3,
                                 exposes_hashrate_history=True))


class TestAccrual:
    def test_credit_proportional_to_hashrate(self, pool):
        day = D(2018, 6, 1)
        small = pool.credit_mining_day("W1", day, 1e5)
        large = pool.credit_mining_day("W2", day, 1e6)
        assert large == pytest.approx(small * 10, rel=1e-6)

    def test_fee_applied(self):
        day = D(2018, 6, 1)
        free = MiningPool(PoolConfig("free", fee=0.0))
        paid = MiningPool(PoolConfig("paid", fee=0.10))
        r_free = free.credit_mining_day("W", day, 1e6)
        r_paid = paid.credit_mining_day("W", day, 1e6)
        assert r_paid == pytest.approx(r_free * 0.9, rel=1e-6)

    def test_negative_hashrate_rejected(self, pool):
        with pytest.raises(PoolError):
            pool.credit_mining_day("W", D(2018, 6, 1), -1.0)

    def test_payout_threshold(self, pool):
        day = D(2018, 6, 1)
        # tiny hashrate: balance stays below the threshold, no payment
        pool.credit_mining_day("W1", day, 1.0)
        stats = pool.api_wallet_stats("W1")
        assert stats.num_payments == 0
        assert stats.balance > 0

    def test_payments_accumulate(self, pool):
        total = 0.0
        for i in range(30):
            total += pool.credit_mining_day(
                "W1", D(2018, 6, 1) + datetime.timedelta(days=i), 2e6)
        stats = pool.api_wallet_stats("W1")
        assert stats.total_paid + stats.balance == pytest.approx(total)
        assert stats.num_payments > 0

    def test_last_share_tracked(self, pool):
        pool.credit_mining_day("W1", D(2018, 6, 3), 1e6)
        assert pool.api_wallet_stats("W1").last_share == D(2018, 6, 3)

    def test_hashrate_history_exposed(self, pool):
        pool.credit_mining_day("W1", D(2018, 6, 1), 1e6)
        stats = pool.api_wallet_stats("W1")
        assert stats.hashrate_history == [(D(2018, 6, 1), 1e6)]


class TestTransparency:
    def _mined_pool(self, transparency, **kwargs):
        pool = MiningPool(PoolConfig("p", transparency=transparency,
                                     payout_threshold=0.1, **kwargs))
        for i in range(60):
            pool.credit_mining_day(
                "W", D(2018, 6, 1) + datetime.timedelta(days=i), 2e6)
        return pool

    def test_full_history(self):
        pool = self._mined_pool(Transparency.FULL_HISTORY)
        stats = pool.api_wallet_stats("W")
        assert stats.payments is not None
        assert len(stats.payments) == stats.num_payments

    def test_recent_window(self):
        pool = self._mined_pool(Transparency.RECENT_WINDOW,
                                recent_window_days=10)
        stats = pool.api_wallet_stats("W", query_date=D(2018, 7, 30))
        assert stats.payments is not None
        assert all(D(2018, 7, 20) <= d for d, _ in stats.payments)
        assert stats.total_paid > sum(a for _, a in stats.payments)

    def test_totals_only(self):
        pool = self._mined_pool(Transparency.TOTALS_ONLY)
        stats = pool.api_wallet_stats("W")
        assert stats.payments is None
        assert stats.total_paid > 0

    def test_opaque_raises(self):
        pool = MiningPool(PoolConfig("minergate-like",
                                     transparency=Transparency.OPAQUE))
        with pytest.raises(PoolError):
            pool.api_wallet_stats("W")

    def test_unknown_wallet_none(self, pool):
        assert pool.api_wallet_stats("NEVER-SEEN") is None


class TestBanning:
    def _botnet_pool(self, cooperative=True, threshold=100):
        pool = MiningPool(PoolConfig(
            "p", ban_policy=BanPolicy(cooperative=cooperative,
                                      min_connections_to_ban=threshold)))
        pool.credit_mining_day("W", D(2018, 6, 1), 1e6, src_ips=150)
        return pool

    def test_cooperative_ban_on_report(self):
        pool = self._botnet_pool()
        assert pool.report_wallet("W", D(2018, 9, 27))
        assert pool.is_banned("W")

    def test_banned_wallet_earns_nothing(self):
        pool = self._botnet_pool()
        pool.report_wallet("W", D(2018, 9, 27))
        assert pool.credit_mining_day("W", D(2018, 10, 1), 1e6) == 0.0

    def test_noncooperative_ignores_report(self):
        pool = self._botnet_pool(cooperative=False)
        assert not pool.report_wallet("W", D(2018, 9, 27))
        assert not pool.is_banned("W")

    def test_few_connections_not_banned(self):
        """Pools err on the safe side: small miners are spared (§VI)."""
        pool = MiningPool(PoolConfig("p"))
        pool.credit_mining_day("W", D(2018, 6, 1), 1e4, src_ips=5)
        assert not pool.report_wallet("W", D(2018, 9, 27))

    def test_proxy_hides_botnet(self):
        """A proxy reduces visible IPs below the ban threshold."""
        pool = MiningPool(PoolConfig("p"))
        pool.credit_mining_day("W", D(2018, 6, 1), 1e6, src_ips=1)
        assert not pool.report_wallet("W", D(2018, 9, 27))

    def test_proactive_ban(self):
        pool = MiningPool(PoolConfig(
            "p", ban_policy=BanPolicy(proactive=True,
                                      min_connections_to_ban=50)))
        pool.credit_mining_day("W", D(2018, 6, 1), 1e6, src_ips=100)
        assert pool.is_banned("W")

    def test_report_unknown_wallet(self):
        pool = MiningPool(PoolConfig("p"))
        assert not pool.report_wallet("GHOST", D(2018, 9, 27))

    def test_banned_login_rejected_on_wire(self):
        pool = self._botnet_pool()
        pool.report_wallet("W", D(2018, 9, 27))
        assert pool.on_login("W", "xmrig", "1.2.3.4") is not None


class TestDirectory:
    def test_known_pools_present(self):
        directory = default_directory()
        for name in ["crypto-pool", "dwarfpool", "minexmr", "minergate",
                     "nanopool", "supportxmr"]:
            assert name in directory

    def test_domain_resolution(self):
        directory = default_directory()
        assert directory.pool_for_domain("dwarfpool.com").config.name == \
            "dwarfpool"
        assert directory.pool_for_domain("xmr-eu.dwarfpool.com")\
            .config.name == "dwarfpool"
        assert directory.pool_for_domain("unknown.example") is None

    def test_subdomain_of_registered(self):
        directory = default_directory()
        assert directory.pool_for_domain("deep.sub.minexmr.com")\
            .config.name == "minexmr"

    def test_minexmr_history_flag(self):
        directory = default_directory()
        assert directory.get("minexmr").config.exposes_hashrate_history

    def test_minergate_opaque(self):
        directory = default_directory()
        assert directory.get("minergate").config.transparency is \
            Transparency.OPAQUE

    def test_transparent_pools_excludes_opaque(self):
        directory = default_directory()
        names = {p.config.name for p in directory.transparent_pools()}
        assert "minergate" not in names
        assert "minexmr" in names

    def test_duplicate_registration_rejected(self):
        directory = default_directory()
        with pytest.raises(ValueError):
            directory.register(MiningPool(PoolConfig("minexmr")))

    def test_isolation_between_instances(self):
        d1 = default_directory()
        d2 = default_directory()
        d1.get("minexmr").credit_mining_day("W", D(2018, 6, 1), 1e6)
        assert d2.get("minexmr").api_wallet_stats("W") is None

    def test_btc_pools_carry_coin(self):
        directory = default_directory()
        assert directory.get("50btc").config.coin == "BTC"
