"""Tests for the released-dataset export and the CLI."""

import csv
import json

import pytest

from repro.cli import main as cli_main
from repro.reporting.dataset_export import (
    export_all,
    export_campaigns_json,
    export_samples_csv,
    export_wallets_csv,
)


class TestSamplesCsv:
    def test_row_count_matches_records(self, pipeline_result, tmp_path):
        path = tmp_path / "samples.csv"
        rows = export_samples_csv(pipeline_result, path)
        assert rows == len(pipeline_result.records)

    def test_table1_schema(self, pipeline_result, tmp_path):
        path = tmp_path / "samples.csv"
        export_samples_csv(pipeline_result, path)
        with path.open() as handle:
            reader = csv.DictReader(handle)
            assert reader.fieldnames == [
                "SHA256", "POOL", "URLPOOL", "USER", "PASS", "NTHREADS",
                "AGENT", "DSTIP", "DSTPORT", "DNSRR", "SOURCE", "FS",
                "ITW_URL", "PACKER", "POSITIVES", "TYPE"]
            first = next(reader)
            assert len(first["SHA256"]) == 64
            assert first["TYPE"] in ("Miner", "Ancillary")

    def test_types_partition(self, pipeline_result, tmp_path):
        path = tmp_path / "samples.csv"
        export_samples_csv(pipeline_result, path)
        with path.open() as handle:
            types = {row["TYPE"] for row in csv.DictReader(handle)}
        assert types == {"Miner", "Ancillary"}


class TestWalletsCsv:
    def test_rows_match_profiles(self, pipeline_result, tmp_path):
        path = tmp_path / "wallets.csv"
        rows = export_wallets_csv(pipeline_result, path)
        expected = sum(len(p.records)
                       for p in pipeline_result.profiles.values())
        assert rows == expected

    def test_total_paid_parsable(self, pipeline_result, tmp_path):
        path = tmp_path / "wallets.csv"
        export_wallets_csv(pipeline_result, path)
        with path.open() as handle:
            total = sum(float(row["TOTAL_PAID"])
                        for row in csv.DictReader(handle)
                        if row["POOL"] != "etn-pool"
                        and not row["POOL"].startswith(("50btc", "slush",
                                                        "btcdig", "f2",
                                                        "supr")))
        measured = sum(p.total_paid
                       for p in pipeline_result.profiles.values())
        assert total == pytest.approx(measured, rel=1e-3)


class TestCampaignsJson:
    def test_count(self, pipeline_result, tmp_path):
        path = tmp_path / "campaigns.json"
        count = export_campaigns_json(pipeline_result, path)
        assert count == len(pipeline_result.campaigns)

    def test_fields(self, pipeline_result, tmp_path):
        path = tmp_path / "campaigns.json"
        export_campaigns_json(pipeline_result, path)
        data = json.loads(path.read_text())
        first = data["campaigns"][0]
        for field in ("campaign_id", "num_samples", "num_wallets",
                      "coins", "total_xmr", "pools", "stock_tools"):
            assert field in first

    def test_export_all_bundle(self, pipeline_result, tmp_path):
        counts = export_all(pipeline_result, tmp_path / "bundle")
        assert set(counts) == {"samples", "wallets", "campaigns"}
        assert (tmp_path / "bundle" / "samples.csv").exists()
        assert (tmp_path / "bundle" / "wallets.csv").exists()
        assert (tmp_path / "bundle" / "campaigns.json").exists()


class TestCli:
    def test_measure(self, capsys, tmp_path):
        code = cli_main(["measure", "--scale", "0.002", "--seed", "5",
                         "--export", str(tmp_path / "out")])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaigns:" in out
        assert (tmp_path / "out" / "samples.csv").exists()

    def test_casestudy_freebuf(self, capsys):
        code = cli_main(["casestudy", "--scale", "0.002", "--seed", "5",
                         "--name", "Freebuf"])
        assert code == 0
        out = capsys.readouterr().out
        assert "xt.freebuf.info" in out

    def test_casestudy_unknown_name(self, capsys):
        code = cli_main(["casestudy", "--scale", "0.002", "--seed", "5",
                         "--name", "Nonexistent"])
        assert code == 1

    def test_defense(self, capsys):
        code = cli_main(["defense", "--scale", "0.002", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "blacklist:" in out
        assert "fork policy:" in out

    def test_report_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "dossiers.md"
        code = cli_main(["report", "--scale", "0.002", "--seed", "5",
                         "--top", "2", "--output", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert text.count("# Campaign C#") == 2

    def test_report_to_stdout(self, capsys):
        code = cli_main(["report", "--scale", "0.002", "--seed", "5",
                         "--top", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "## Identity" in out

    def test_exhibits(self, capsys):
        code = cli_main(["exhibits", "--scale", "0.002", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "Table XI" in out
