"""Smoke tests for the runnable examples.

Fast examples run end-to-end in a subprocess; the slower, fixed-scale
ones get a compile/import check so a broken import can never ship.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestCompile:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_compiles(self, name):
        py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)


class TestRun:
    def _run(self, name, *args, timeout=240):
        return subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name), *args],
            capture_output=True, text=True, timeout=timeout, check=False)

    def test_quickstart_small_scale(self):
        proc = self._run("quickstart.py", "0.002")
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "headline" in proc.stdout
        assert "aggregation quality" in proc.stdout

    def test_botnet_protocol_example(self):
        proc = self._run("botnet_mining_protocol.py")
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "pool sees 1 distinct IP(s)" in proc.stdout
        assert "after the operator updates the bot: 5/5" in proc.stdout

    def test_underground_economy_example(self):
        proc = self._run("underground_economy.py")
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "most-discussed coin in 2018: Monero" in proc.stdout

    def test_operator_economics_example(self):
        proc = self._run("operator_economics.py")
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "ROI" in proc.stdout


class TestExampleCoverage:
    def test_at_least_seven_examples(self):
        assert len(ALL_EXAMPLES) >= 7

    def test_quickstart_present(self):
        assert "quickstart.py" in ALL_EXAMPLES

    def test_all_examples_have_docstrings(self):
        for name in ALL_EXAMPLES:
            source = (EXAMPLES_DIR / name).read_text()
            assert '"""' in source.split("\n", 3)[1] + \
                source.split("\n", 3)[2], name
