"""Tests for the Fig. 6 campaign-graph exports."""

import networkx as nx
import pytest

from repro.analysis.graphs import (
    NODE_COLORS,
    campaign_graph,
    structure_metrics,
    to_dot,
    to_edge_list,
)


@pytest.fixture(scope="module")
def freebuf_campaign(small_world, pipeline_result):
    truth = next(c for c in small_world.ground_truth
                 if c.label == "Freebuf")
    return pipeline_result.campaign_for_wallet(truth.identifiers[0])


@pytest.fixture(scope="module")
def freebuf_graph(freebuf_campaign):
    return campaign_graph(freebuf_campaign)


class TestCampaignGraph:
    def test_node_types_present(self, freebuf_graph):
        types = {attrs["node_type"]
                 for _, attrs in freebuf_graph.nodes(data=True)}
        assert {"miner", "wallet", "domain"} <= types

    def test_wallet_count_matches(self, freebuf_campaign, freebuf_graph):
        wallets = [n for n, a in freebuf_graph.nodes(data=True)
                   if a["node_type"] == "wallet"]
        assert len(wallets) == freebuf_campaign.num_wallets

    def test_aliases_as_domain_nodes(self, freebuf_graph):
        domains = {n for n, a in freebuf_graph.nodes(data=True)
                   if a["node_type"] == "domain"}
        assert "d:xt.freebuf.info" in domains

    def test_graph_connected_through_features(self, freebuf_graph):
        """The Fig. 6a observation: the campaign holds together through
        identifier + ancestor + CNAME paths."""
        # isolated operation marker nodes aside, the core is connected
        core = freebuf_graph.subgraph([
            n for n, a in freebuf_graph.nodes(data=True)
            if a["node_type"] != "operation"
        ])
        giant = max(nx.connected_components(core), key=len)
        assert len(giant) / core.number_of_nodes() > 0.9

    def test_edge_features_labelled(self, freebuf_graph):
        features = {attrs["feature"]
                    for _, _, attrs in freebuf_graph.edges(data=True)}
        assert "same_identifier" in features
        assert "cname" in features


class TestSerialisation:
    def test_dot_output(self, freebuf_graph):
        dot = to_dot(freebuf_graph, title="freebuf")
        assert dot.startswith('graph "freebuf"')
        assert dot.rstrip().endswith("}")
        assert NODE_COLORS["wallet"] in dot
        assert '"d:xt.freebuf.info"' in dot

    def test_edge_list_sorted_and_stable(self, freebuf_graph):
        edges = to_edge_list(freebuf_graph)
        assert edges == sorted(edges)
        assert to_edge_list(freebuf_graph) == edges

    def test_metrics(self, freebuf_graph):
        metrics = structure_metrics(freebuf_graph)
        assert metrics["nodes"] > 0
        assert metrics["n_wallet"] == 7
        assert metrics["edges"] >= metrics["nodes"] - metrics["components"]

    def test_empty_graph_metrics(self):
        metrics = structure_metrics(nx.Graph())
        assert metrics["nodes"] == 0
        assert metrics["components"] == 0
