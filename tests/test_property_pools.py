"""Property-based tests on pool-accounting invariants."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pools.pool import MiningPool, PoolConfig, Transparency

D = datetime.date
_DAY0 = D(2018, 1, 1)

hashrates = st.lists(
    st.floats(min_value=0.0, max_value=5e7, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=40)


class TestConservation:
    @given(hashrates)
    @settings(max_examples=40, deadline=None)
    def test_credits_equal_paid_plus_balance(self, rates):
        """Every credited atom is either paid out or still in balance."""
        pool = MiningPool(PoolConfig("p", payout_threshold=0.2))
        credited = 0.0
        for i, rate in enumerate(rates):
            credited += pool.credit_mining_day(
                "W", _DAY0 + datetime.timedelta(days=i), rate)
        stats = pool.api_wallet_stats("W")
        if stats is None:
            assert credited == 0.0
        else:
            assert abs((stats.total_paid + stats.balance) - credited) < 1e-9

    @given(hashrates)
    @settings(max_examples=40, deadline=None)
    def test_payment_sum_equals_total_paid(self, rates):
        pool = MiningPool(PoolConfig("p", payout_threshold=0.2))
        for i, rate in enumerate(rates):
            pool.credit_mining_day("W", _DAY0 + datetime.timedelta(days=i),
                                   rate)
        stats = pool.api_wallet_stats("W")
        if stats is not None and stats.payments is not None:
            assert abs(sum(a for _, a in stats.payments)
                       - stats.total_paid) < 1e-9

    @given(hashrates)
    @settings(max_examples=40, deadline=None)
    def test_balance_below_threshold(self, rates):
        """After settlement the residual balance is under the payout
        threshold (unless nothing was ever paid)."""
        threshold = 0.2
        pool = MiningPool(PoolConfig("p", payout_threshold=threshold))
        for i, rate in enumerate(rates):
            pool.credit_mining_day("W", _DAY0 + datetime.timedelta(days=i),
                                   rate)
        stats = pool.api_wallet_stats("W")
        if stats is not None:
            assert stats.balance < threshold

    @given(hashrates, st.floats(min_value=0.0, max_value=0.1))
    @settings(max_examples=30, deadline=None)
    def test_fee_monotone(self, rates, fee):
        """A pool with a fee never pays more than a fee-less one."""
        free = MiningPool(PoolConfig("free", fee=0.0))
        paid = MiningPool(PoolConfig("paid", fee=fee))
        total_free = total_paid = 0.0
        for i, rate in enumerate(rates):
            day = _DAY0 + datetime.timedelta(days=i)
            total_free += free.credit_mining_day("W", day, rate)
            total_paid += paid.credit_mining_day("W", day, rate)
        assert total_paid <= total_free + 1e-12

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_ban_stops_accrual_permanently(self, n_ips):
        pool = MiningPool(PoolConfig("p"))
        pool.credit_mining_day("W", _DAY0, 1e6, src_ips=n_ips)
        banned = pool.report_wallet("W", _DAY0)
        expected = n_ips > pool.config.ban_policy.min_connections_to_ban
        assert banned == expected
        after = pool.credit_mining_day(
            "W", _DAY0 + datetime.timedelta(days=1), 1e6)
        if banned:
            assert after == 0.0
        else:
            assert after > 0.0

    @given(hashrates)
    @settings(max_examples=25, deadline=None)
    def test_payments_chronological(self, rates):
        pool = MiningPool(PoolConfig("p", payout_threshold=0.05))
        for i, rate in enumerate(rates):
            pool.credit_mining_day("W", _DAY0 + datetime.timedelta(days=i),
                                   rate)
        stats = pool.api_wallet_stats("W")
        if stats is not None and stats.payments:
            dates = [d for d, _ in stats.payments]
            assert dates == sorted(dates)


class TestTransparencyInvariants:
    @given(hashrates)
    @settings(max_examples=25, deadline=None)
    def test_recent_window_is_subset_of_full(self, rates):
        full = MiningPool(PoolConfig(
            "f", transparency=Transparency.FULL_HISTORY,
            payout_threshold=0.05))
        windowed = MiningPool(PoolConfig(
            "w", transparency=Transparency.RECENT_WINDOW,
            payout_threshold=0.05, recent_window_days=10))
        for i, rate in enumerate(rates):
            day = _DAY0 + datetime.timedelta(days=i)
            full.credit_mining_day("W", day, rate)
            windowed.credit_mining_day("W", day, rate)
        query = _DAY0 + datetime.timedelta(days=len(rates))
        full_stats = full.api_wallet_stats("W", query)
        win_stats = windowed.api_wallet_stats("W", query)
        if full_stats is None:
            assert win_stats is None
            return
        assert set(win_stats.payments) <= set(full_stats.payments)
        assert win_stats.total_paid == full_stats.total_paid
