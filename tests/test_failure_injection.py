"""Failure-injection tests: the pipeline under degraded conditions.

The paper documents several degradations it had to tolerate — VT rate
limits (missing first-seen), sandbox-evading samples, opaque pools,
packed binaries that resist static analysis.  These tests inject each
failure and assert the pipeline degrades the way the paper describes
instead of breaking.
"""

import datetime

import pytest

from repro.binfmt.packers import CUSTOM_CRYPTER, pack
from repro.core.dynamic_analysis import DynamicAnalyzer
from repro.core.extraction import ExtractionEngine
from repro.core.pipeline import MeasurementPipeline
from repro.core.static_analysis import StaticAnalyzer
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.intel.vt import VtService
from repro.netsim.dns import DnsZone, PassiveDns, Resolver
from repro.pools.directory import PoolDirectory, default_directory
from repro.sandbox.behavior import (
    BehaviorScript,
    CheckSandbox,
    Stall,
    StratumSession,
)
from repro.sandbox.emulator import Sandbox, SandboxEnvironment

D = datetime.date


class TestVtRateLimit:
    def test_missing_first_seen_degrades_gracefully(self, small_world):
        """After the rate limit, metadata queries return None; records
        lose first-seen but extraction continues (the '~19?' rows)."""
        limited = VtService(rate_limit=50)
        for report in small_world.vt.reports():
            limited.add_report(report)
        zone = small_world.dns_zone
        engine = ExtractionEngine(
            StaticAnalyzer(), DynamicAnalyzer(Sandbox(small_world.resolver)),
            limited, small_world.pool_directory,
            small_world.resolver, small_world.passive_dns)
        miners = [s for s in small_world.samples if s.kind == "miner"][:80]
        records = [engine.extract(s) for s in miners]
        with_fs = sum(1 for r in records if r.first_seen is not None)
        without_fs = sum(1 for r in records if r.first_seen is None)
        assert without_fs > 0          # the limit bit
        # identifiers still extracted from binaries/behaviour
        assert sum(1 for r in records if r.identifiers) > len(miners) // 2


class TestEvasiveSamples:
    def _engine(self, hardened=False):
        zone = DnsZone()
        env = SandboxEnvironment(hardened=hardened,
                                 analysis_date=D(2018, 9, 1))
        return ExtractionEngine(
            StaticAnalyzer(), DynamicAnalyzer(Sandbox(Resolver(zone),
                                                      env)),
            VtService(), default_directory(), Resolver(zone),
            PassiveDns(zone))

    def _evasive_sample(self, wallet="4AAAA"):
        from repro.corpus.model import SampleRecord
        behavior = BehaviorScript([
            CheckSandbox(detectability=1.0),
            StratumSession(host="pool.minexmr.com", port=4444,
                           login=wallet),
        ])
        raw = pack(
            __import__("repro.binfmt.format", fromlist=["build_binary"])
            .build_binary(
                __import__("repro.binfmt.format",
                           fromlist=["ExecutableKind"]).ExecutableKind.PE,
                code=b"\x90" * 600),
            CUSTOM_CRYPTER)
        return SampleRecord(sha256="evasive1", md5="", raw=raw,
                            behavior=behavior, first_seen=None,
                            source="test", kind="miner")

    def test_evasion_plus_crypter_blinds_both_analyses(self):
        """Crypter blocks statics AND sandbox detection kills dynamics:
        the sample yields nothing (an acknowledged FN, §VI)."""
        engine = self._engine()
        record = engine.extract(self._evasive_sample())
        assert record.identifiers == []
        assert record.type == "Ancillary"

    def test_hardened_sandbox_recovers_the_sample(self):
        """Bare-metal analysis (the paper's proposed fix) sees the
        mining session despite the fingerprinting check."""
        engine = self._engine(hardened=True)
        record = engine.extract(self._evasive_sample())
        assert record.user is not None
        assert record.pool == "minexmr"

    def test_stalling_sample_times_out_quietly(self):
        from repro.corpus.model import SampleRecord
        from repro.binfmt.format import ExecutableKind, build_binary
        behavior = BehaviorScript([
            Stall(seconds=10_000),
            StratumSession(host="pool.minexmr.com", port=4444,
                           login="4BBBB"),
        ])
        sample = SampleRecord(
            sha256="staller", md5="",
            raw=build_binary(ExecutableKind.PE, code=b"\x90" * 100),
            behavior=behavior, first_seen=None, source="test",
            kind="miner")
        record = self._engine().extract(sample)
        assert record.identifiers == []


class TestDegradedWorlds:
    def test_pipeline_without_ha(self, small_world):
        """HA going dark only removes a convenience source."""
        result = MeasurementPipeline(small_world,
                                     use_ha_reports=False).run()
        assert result.stats.miners > 0

    def test_world_without_junk_or_case_studies(self):
        world = generate_world(ScenarioConfig(
            seed=77, scale=0.004, include_junk=False,
            include_case_studies=False))
        result = MeasurementPipeline(world).run()
        assert result.stats.collected == len(world.samples)
        assert result.stats.miners > 0
        labels = {c.label for c in world.ground_truth}
        assert labels == {None}

    def test_empty_feed(self):
        world = generate_world(ScenarioConfig(
            seed=78, scale=0.0005, include_junk=False,
            include_case_studies=False))
        # even a near-empty feed must produce a consistent result
        result = MeasurementPipeline(world).run()
        assert result.stats.miners + result.stats.ancillaries == \
            len(result.records)

    def test_corrupt_binaries_rejected_not_crashing(self, small_world):
        """Truncated/garbage bytes in the feed are filtered by the
        executable check, never raised out of the pipeline."""
        from repro.corpus.model import SampleRecord
        corrupt = SampleRecord(
            sha256="corrupt1", md5="", raw=b"MZ\x00\x01trunc",
            behavior=BehaviorScript(), first_seen=None,
            source="test", kind="junk")
        analyzer = StaticAnalyzer()
        findings = analyzer.analyze(corrupt.raw)  # must not raise
        assert findings.identifiers == []
