"""Sharded campaign aggregation is bit-identical to the batch graph.

The property extends the repo's batch ≡ incremental equivalence to
batch ≡ sharded: for any record set and any shard count, the sharded
aggregator's finalized campaigns equal the batch aggregator's, record
for record — including components whose identifiers span every shard.
"""

from zlib import crc32

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import CampaignAggregator, GroupingPolicy
from repro.core.records import MinerRecord
from repro.osint.feeds import OsintFeeds
from repro.scale.shards import ShardedCampaignAggregator, shard_of

# -- strategies (mirrors tests/test_property_aggregation.py) ---------------

_wallets = st.sampled_from([f"W{i}" for i in range(8)])
_urls = st.sampled_from([f"http://h{i}.ru/a.exe" for i in range(4)])


@st.composite
def miner_records(draw, max_records=12):
    n = draw(st.integers(min_value=1, max_value=max_records))
    records = []
    for i in range(n):
        record = MinerRecord(sha256=f"s{i:04d}")
        wallets = draw(st.lists(_wallets, max_size=2, unique=True))
        record.identifiers = wallets
        record.identifier_coins = ["XMR"] * len(wallets)
        if draw(st.booleans()):
            record.itw_urls = [draw(_urls)]
        if draw(st.booleans()) and i > 0:
            record.parents = [f"s{draw(st.integers(0, i - 1)):04d}"]
        record.type = "Miner" if wallets else "Ancillary"
        records.append(record)
    return records


def _batch(records, proxy_ips=None):
    return CampaignAggregator(OsintFeeds(), GroupingPolicy.full(),
                              proxy_ips=proxy_ips).aggregate(records)


def _sharded(records, k, proxy_ips=None, workers=1):
    return ShardedCampaignAggregator(OsintFeeds(),
                                     GroupingPolicy.full(),
                                     proxy_ips=proxy_ips,
                                     num_shards=k,
                                     workers=workers).aggregate(records)


class TestShardOf:
    def test_deterministic_and_in_range(self):
        record = MinerRecord(sha256="ab" * 32, identifiers=["Wz", "Wa"])
        for k in (1, 2, 8, 16):
            assert 0 <= shard_of(record, k) < k
            assert shard_of(record, k) == shard_of(record, k)

    def test_keyed_on_min_identifier(self):
        a = MinerRecord(sha256="00" * 32, identifiers=["Wa", "Wz"])
        b = MinerRecord(sha256="ff" * 32, identifiers=["Wa"])
        assert shard_of(a, 16) == shard_of(b, 16)
        assert shard_of(a, 16) == crc32(b"Wa") % 16

    def test_identifier_less_uses_sha(self):
        record = MinerRecord(sha256="ab" * 32)
        assert shard_of(record, 16) == crc32(("ab" * 32).encode()) % 16

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedCampaignAggregator(OsintFeeds(), num_shards=0)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardedCampaignAggregator(OsintFeeds(), workers=0)


class TestShardedEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 8, 16])
    def test_identifiers_spanning_all_shards(self, k):
        """A chain that provably crosses every shard still comes out as
        one campaign, identical to the batch result."""
        # one wallet per shard bucket: find, for each target shard, a
        # wallet whose crc32 lands there
        wallets = {}
        i = 0
        while len(wallets) < k:
            wallet = f"SPAN{i}"
            wallets.setdefault(crc32(wallet.encode()) % k, wallet)
            i += 1
        spanning = sorted(wallets.values())
        records = [MinerRecord(sha256=f"{j:064x}", identifiers=[w],
                               identifier_coins=["XMR"])
                   for j, w in enumerate(spanning)]
        # the bridge shares every wallet, fusing all k shards
        records.append(MinerRecord(sha256=f"{99:064x}",
                                   identifiers=spanning,
                                   identifier_coins=["XMR"] * len(spanning)))
        # sanity: the singles really do live on k distinct shards
        assert {shard_of(r, k) for r in records[:-1]} == set(range(k)) \
            or k == 1
        batch = _batch(records)
        sharded = _sharded(records, k)
        assert len(batch) == 1
        assert sharded == batch

    @pytest.mark.parametrize("k", [1, 2, 8, 16])
    def test_tier1_world_records(self, k, small_world, pipeline_result):
        """On the real extracted record set the sharded output is
        bit-identical (same order, ids, records, everything)."""
        batch = CampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips
        ).aggregate(pipeline_result.records)
        agg = ShardedCampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips,
            num_shards=k)
        assert agg.aggregate(pipeline_result.records) == batch
        if k > 1:
            # the shard high-water mark must actually be a partition,
            # not one shard holding everything
            assert agg.max_shard_records < len(pipeline_result.records)

    def test_keep_records_false_strips_records(self, small_world,
                                               pipeline_result):
        lean = ShardedCampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips,
            num_shards=8, keep_records=False
        ).aggregate(pipeline_result.records)
        full = ShardedCampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips,
            num_shards=8).aggregate(pipeline_result.records)
        assert [c.records for c in lean] == [[] for _ in lean]
        assert [c.sample_hashes for c in lean] == \
            [c.sample_hashes for c in full]
        assert [c.campaign_id for c in lean] == \
            [c.campaign_id for c in full]

    def test_source_reiterated_not_cached(self, small_world,
                                          pipeline_result):
        """aggregate_source() pulls a fresh iterator per pass — the
        contract a disk-backed record store relies on."""
        calls = []

        def source():
            calls.append(1)
            return iter(pipeline_result.records)

        agg = ShardedCampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips,
            num_shards=4)
        campaigns = agg.aggregate_source(source)
        assert len(calls) == 1 + 4  # boundary scan + one per shard
        assert campaigns == CampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips
        ).aggregate(pipeline_result.records)


class TestParallelShardedEquivalence:
    """``workers > 1`` fans per-shard builds over a fork pool; the
    output must stay bit-identical to both serial and batch for any
    worker count — including components that span every shard."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_identifiers_spanning_all_shards(self, workers):
        k = 8
        wallets = {}
        i = 0
        while len(wallets) < k:
            wallet = f"SPAN{i}"
            wallets.setdefault(crc32(wallet.encode()) % k, wallet)
            i += 1
        spanning = sorted(wallets.values())
        records = [MinerRecord(sha256=f"{j:064x}", identifiers=[w],
                               identifier_coins=["XMR"])
                   for j, w in enumerate(spanning)]
        records.append(MinerRecord(sha256=f"{99:064x}",
                                   identifiers=spanning,
                                   identifier_coins=["XMR"] * len(spanning)))
        batch = _batch(records)
        assert len(batch) == 1
        assert _sharded(records, k, workers=workers) == batch

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_tier1_world_records(self, workers, small_world,
                                 pipeline_result):
        batch = CampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips
        ).aggregate(pipeline_result.records)
        agg = ShardedCampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips,
            num_shards=8, workers=workers)
        assert agg.aggregate(pipeline_result.records) == batch
        # high-water telemetry must survive the pool round-trip
        assert agg.max_shard_records > 0

    @given(miner_records(), st.sampled_from([1, 2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_any_records_any_workers(self, records, workers):
        # max_examples stays low: every parallel example forks a pool
        assert _sharded(records, 8, workers=workers) == _batch(records)


class TestShardedProperties:
    @given(miner_records(), st.sampled_from([1, 2, 8, 16]))
    @settings(max_examples=60, deadline=None)
    def test_equivalence_any_records_any_k(self, records, k):
        assert _sharded(records, k) == _batch(records)

    @given(miner_records())
    @settings(max_examples=30, deadline=None)
    def test_shard_count_invariance(self, records):
        baseline = _sharded(records, 1)
        for k in (2, 8, 16):
            assert _sharded(records, k) == baseline
