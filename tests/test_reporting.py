"""Tests for the text-table renderers and validation scoring."""

import pytest

from repro.analysis import (
    fig1_forum_trends,
    pairwise_clustering_scores,
    table4_currencies,
    table7_pool_popularity,
    table8_top_campaigns,
    table11_infrastructure,
)
from repro.reporting.render import (
    format_table,
    render_fig1,
    render_table4,
    render_table7,
    render_table8,
    render_table11,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert len(set(len(l) for l in lines[2:])) <= 2

    def test_title(self):
        text = format_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestRenderers:
    def test_fig1(self, small_world):
        text = render_fig1(fig1_forum_trends(small_world.forum_corpus))
        assert "Monero" in text and "2018" in text

    def test_table4(self, pipeline_result):
        text = render_table4(table4_currencies(pipeline_result))
        assert "XMR" in text and "Email" in text

    def test_table7(self, pipeline_result):
        text = render_table7(table7_pool_popularity(pipeline_result))
        assert "crypto-pool" in text

    def test_table8(self, pipeline_result):
        text = render_table8(table8_top_campaigns(pipeline_result))
        assert "C#" in text and "top-10 share" in text

    def test_table11(self, pipeline_result):
        text = render_table11(table11_infrastructure(pipeline_result))
        assert "cnames" in text and ">=10k" in text


class TestClusteringScores:
    def test_perfect(self):
        truth = {"a": 1, "b": 1, "c": 2}
        scores = pairwise_clustering_scores(truth, truth)
        assert scores.precision == scores.recall == scores.f1 == 1.0

    def test_overmerge_hurts_precision(self):
        truth = {"a": 1, "b": 1, "c": 2, "d": 2}
        merged = {"a": 9, "b": 9, "c": 9, "d": 9}
        scores = pairwise_clustering_scores(truth, merged)
        assert scores.precision < 1.0
        assert scores.recall == 1.0

    def test_split_hurts_recall(self):
        truth = {"a": 1, "b": 1, "c": 1}
        split = {"a": 1, "b": 1, "c": 2}
        scores = pairwise_clustering_scores(truth, split)
        assert scores.recall < 1.0
        assert scores.precision == 1.0

    def test_disjoint_keys_ignored(self):
        truth = {"a": 1, "b": 1}
        predicted = {"a": 1, "b": 1, "zz": 5}
        scores = pairwise_clustering_scores(truth, predicted)
        assert scores.n_samples == 2
        assert scores.f1 == 1.0

    def test_empty(self):
        scores = pairwise_clustering_scores({}, {})
        assert scores.precision == 1.0
        assert scores.recall == 1.0
