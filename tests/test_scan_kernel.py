"""Equivalence suite: the one-pass scan kernel vs the legacy oracles.

The kernel (`repro.perf.scan`) must fire exactly the same rules,
identifiers and IoCs as the per-pattern evaluators it replaced
(`RuleSet.scan_legacy`, `classify_identifier_legacy`,
`extract_identifiers_legacy`), on random blobs, generated-world
samples, and the overlapping-needle / nocase / hex edge cases.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binfmt.format import ExecutableKind, build_binary
from repro.binfmt.packers import PACKERS, pack
from repro.binfmt.strings import extract_strings
from repro.common.errors import RuleSyntaxError
from repro.common.rng import DeterministicRNG
from repro.core.static_analysis import StaticAnalyzer
from repro.perf.cache import UNPACK_CACHE, cached_unpack, clear_caches
from repro.perf.scan import (
    BLOB_MIN_RUN,
    AhoCorasick,
    ScanContext,
    build_blob,
    printable_min_len,
    scan_context,
)
from repro.wallets.addresses import COINS, WalletFactory
from repro.wallets.detect import (
    classify_identifier,
    classify_identifier_legacy,
    extract_identifiers,
    extract_identifiers_legacy,
)
from repro.yarm.builtin import builtin_miner_rules
from repro.yarm.engine import compile_rules

# --------------------------------------------------------------------------
# Edge-case rule set: overlapping needles, nocase text, hex (plain and
# nocase — the legacy evaluator ignores nocase for hex), short and
# non-printable needles, blob-safe and raw-only regexes, negated and
# counted conditions, duplicate identifiers sharing one automaton slot.
# --------------------------------------------------------------------------

EDGE_RULES_SOURCE = '''
rule Overlap {
    strings:
        $a = "abcdef"
        $b = "abcdefg"
        $c = "bcdefg"
    condition:
        2 of them
}
rule NocaseShort {
    strings:
        $a = "NoCasePool" nocase
        $b = "-u 4"
    condition:
        any of them
}
rule HexBytes {
    strings:
        $h = { DE AD BE EF }
        $i = { 1F 8B 08 } nocase
    condition:
        all of them
}
rule Regexes {
    strings:
        $safe = /xmrig[0-9]{2}/
        $raw = /port=\\d+/
    condition:
        any of them
}
rule Negated {
    strings:
        $mark = "minermark"
        $clean = "cleanmark"
    condition:
        $mark and not $clean
}
rule SharedSlot {
    strings:
        $x = "sharedneedle"
        $y = "sharedneedle"
        $z = "othermark"
    condition:
        2 of them
}
'''

#: fragments chosen to tickle every rule above, plus builtin triggers.
FRAGMENTS = [
    b"abcdef", b"abcdefg", b"bcdefg", b"nocasepool", b"NOCASEPOOL",
    b"-u 4", b"\xde\xad\xbe\xef", b"\x1f\x8b\x08", b"xmrig42",
    b"port=8080", b"minermark", b"cleanmark", b"sharedneedle",
    b"othermark", b"stratum+tcp://pool.example.com:3333",
    b"donate.v2.xmrig.com", b"cryptonight",
]


@pytest.fixture(scope="module")
def edge_rules():
    return compile_rules(EDGE_RULES_SOURCE)


@pytest.fixture(scope="module")
def builtin_rules():
    return builtin_miner_rules()


def _inject(noise: bytes, fragments, offset: int) -> bytes:
    data = bytearray(noise)
    for index, fragment in enumerate(fragments):
        position = (offset * (index + 1)) % (len(data) + 1)
        data[position:position] = fragment
    return bytes(data)


class TestKernelEqualsLegacy:
    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=300),
           st.lists(st.sampled_from(FRAGMENTS), max_size=6),
           st.integers(min_value=0, max_value=997))
    def test_edge_rules_random_blobs(self, edge_rules, noise, frags, off):
        data = _inject(noise, frags, off)
        assert edge_rules.scan(data) == edge_rules.scan_legacy(data)

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=300),
           st.lists(st.sampled_from(FRAGMENTS), max_size=6),
           st.integers(min_value=0, max_value=997))
    def test_builtin_rules_random_blobs(self, builtin_rules, noise,
                                        frags, off):
        data = _inject(noise, frags, off)
        assert builtin_rules.scan(data) == builtin_rules.scan_legacy(data)

    def test_every_fragment_alone(self, edge_rules, builtin_rules):
        for fragment in FRAGMENTS:
            for rules in (edge_rules, builtin_rules):
                assert rules.scan(fragment) == rules.scan_legacy(fragment)

    def test_world_samples(self, small_world, builtin_rules):
        for sample in small_world.samples:
            ctx = scan_context(sample.raw)
            assert (builtin_rules.scan(ctx)
                    == builtin_rules.scan_legacy(ctx.data))

    def test_unknown_identifier_still_raises(self):
        rules = compile_rules('''
        rule Bad {
            strings:
                $a = "abcdef"
            condition:
                $a or $missing
        }
        ''')
        with pytest.raises(RuleSyntaxError):
            rules.scan(b"whatever")

    def test_accepts_bytes_and_context(self, builtin_rules):
        data = b"config stratum+tcp://pool.example.com:3333 xx"
        assert (builtin_rules.scan(data)
                == builtin_rules.scan(ScanContext(data)))


class TestAhoCorasick:
    needles = st.lists(st.binary(max_size=5), max_size=12)

    @settings(max_examples=150, deadline=None)
    @given(needles, st.binary(max_size=120))
    def test_walk_equals_find(self, needles, data):
        automaton = AhoCorasick(needles)
        assert automaton.walk(data) == automaton.find(data)

    def test_overlapping_needles_all_fire(self):
        automaton = AhoCorasick([b"abc", b"abcd", b"bcd", b"abc"])
        assert automaton.walk(b"xxabcdxx") == frozenset({0, 1, 2, 3})

    def test_empty_needle_always_fires(self):
        automaton = AhoCorasick([b"", b"zz"])
        assert automaton.find(b"anything") == frozenset({0})
        assert automaton.walk(b"zz") == frozenset({0, 1})


class TestIdentifierEquivalence:
    @pytest.fixture(scope="class")
    def identifiers(self):
        factory = WalletFactory(DeterministicRNG(7))
        made = [factory.new_address(t) for t in COINS for _ in range(3)]
        made += [factory.new_email() for _ in range(5)]
        made += ["worker_ab12cd34", "not-an-identifier", "4short"]
        # mutations: truncations, corrupted checksums, flipped case
        mutated = [m[:-1] for m in made] + [m + "x" for m in made]
        mutated += [m[0] + "0" + m[2:] for m in made if len(m) > 2]
        mutated += [m.swapcase() for m in made]
        return made + mutated

    def test_classify_matches_legacy(self, identifiers):
        for value in identifiers:
            assert (classify_identifier(value)
                    == classify_identifier_legacy(value))

    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=40))
    def test_classify_random_text(self, value):
        assert classify_identifier(value) == classify_identifier_legacy(value)

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_extract_matches_legacy(self, identifiers, data):
        tokens = data.draw(st.lists(
            st.sampled_from(identifiers)
            | st.text(alphabet="azX4@._- =\"';,", max_size=12),
            max_size=12))
        delimiters = data.draw(st.lists(
            st.sampled_from([" ", "\n", "\t", "=", '"', "',", ";("]),
            min_size=max(len(tokens) - 1, 0),
            max_size=max(len(tokens) - 1, 0)))
        text = "".join(
            token + (delimiters[i] if i < len(delimiters) else "")
            for i, token in enumerate(tokens))
        assert (extract_identifiers(text)
                == extract_identifiers_legacy(text))

    def test_extract_on_world_strings(self, small_world):
        for sample in small_world.samples[:200]:
            blob = scan_context(sample.raw).text
            assert (extract_identifiers(blob)
                    == extract_identifiers_legacy(blob))


class TestScanContext:
    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=3000))
    def test_blob_equals_regex_reference(self, data):
        runs = re.compile(rb"[\x20-\x7e]{%d,}" % BLOB_MIN_RUN)
        assert build_blob(data) == b"\n".join(runs.findall(data))

    def test_blob_vector_path_on_large_input(self):
        data = (b"\x00\x01printable run here\xff" * 200
                + b"tiny\x02" + b"ends with a run of text")
        runs = re.compile(rb"[\x20-\x7e]{%d,}" % BLOB_MIN_RUN)
        assert len(data) > 1024
        assert build_blob(data) == b"\n".join(runs.findall(data))

    def test_strings_equal_extract_strings(self, small_world):
        for sample in small_world.samples[:100]:
            ctx = scan_context(sample.raw)
            assert ctx.strings == extract_strings(ctx.data)

    def test_unpack_shared_between_consumers(self):
        inner = build_binary(
            ExecutableKind.PE, code=b"\x90" * 64,
            strings=["stratum+tcp://pool.example.com:3333"])
        packed = pack(inner, PACKERS["UPX"])
        clear_caches()
        StaticAnalyzer().analyze(packed)
        assert (UNPACK_CACHE.misses, UNPACK_CACHE.hits) == (1, 0)
        rules = builtin_miner_rules()
        # the second consumer reuses the whole memoised context, so the
        # unpack memo is not even consulted again
        from repro.perf.scan import SCAN_CONTEXT_CACHE
        assert rules.scan(scan_context(packed))
        assert UNPACK_CACHE.misses == 1
        assert SCAN_CONTEXT_CACHE.hits >= 1
        # a consumer going through the memo directly also shares it
        assert cached_unpack(packed) == (inner, True)
        assert (UNPACK_CACHE.misses, UNPACK_CACHE.hits) == (1, 1)

    def test_cached_unpack_flags(self):
        inner = build_binary(ExecutableKind.PE, code=b"\x90" * 64,
                             strings=["some content string"])
        packed = pack(inner, PACKERS["UPX"])
        clear_caches()
        assert cached_unpack(packed) == (inner, True)
        assert cached_unpack(b"plain bytes") == (b"plain bytes", False)


class TestBlobSafetyAnalysis:
    def test_builtin_wallet_regex_is_blob_safe(self):
        length = printable_min_len(rb"4[0-9AB][1-9A-HJ-NP-Za-km-z]{93}")
        assert length == 95

    def test_literals_and_classes(self):
        assert printable_min_len(rb"abcdef") == 6
        assert printable_min_len(rb"(?:abc|defgh)") == 3
        assert printable_min_len(rb"ab{2,4}c") == 4

    def test_unsafe_constructs_rejected(self):
        for pattern in (rb"\d+", rb"a.c", rb"^abcdef", rb"abcdef$",
                        rb"[^ab]cdef", rb"(?=abc)def", rb"\w{8}"):
            assert printable_min_len(pattern) is None


class TestPackerRendering:
    def test_compression_only_renders_archive(self):
        inner = build_binary(ExecutableKind.PE, code=b"\x90" * 64,
                             strings=["plain old content"])
        findings = StaticAnalyzer().analyze(pack(inner, PACKERS["SFX"]))
        assert findings.packer == "SFX (archive)"

    def test_crypter_renders_plain_name(self):
        inner = build_binary(ExecutableKind.PE, code=b"\x90" * 64,
                             strings=["plain old content"])
        findings = StaticAnalyzer().analyze(pack(inner, PACKERS["UPX"]))
        assert findings.packer == "UPX"


class TestBatchIngestParity:
    def test_streaming_matches_batch_with_kernel(self, tmp_path):
        from repro.core.pipeline import MeasurementPipeline
        from repro.corpus.generator import generate_world
        from repro.corpus.model import ScenarioConfig
        from repro.ingest import IngestionService
        from repro.ingest.service import diff_measurements
        world = generate_world(ScenarioConfig(seed=5, scale=0.004))
        ingest = IngestionService(world, str(tmp_path / "ck"),
                                  batch_days=120).run()
        batch = MeasurementPipeline(world).run()
        assert diff_measurements(batch, ingest.result) == []
