"""Unit and integration tests for the Stratum protocol substrate."""

import json

import pytest

from repro.common.errors import ProtocolError
from repro.stratum.channel import Channel, make_channel_pair
from repro.stratum.client import StratumClient
from repro.stratum.framing import LineFramer, encode_frame
from repro.stratum.messages import (
    JobNotification,
    KeepAlive,
    LoginRequest,
    LoginResult,
    StratumError,
    SubmitRequest,
    SubmitResult,
    parse_message,
)
from repro.stratum.proxy import MiningProxy
from repro.stratum.server import ShareSink, StratumServerSession


class RecordingSink(ShareSink):
    def __init__(self, banned=()):
        self.logins = []
        self.shares = []
        self.banned = set(banned)

    def on_login(self, login, agent, src_ip):
        self.logins.append((login, agent, src_ip))
        return "Banned" if login in self.banned else None

    def on_share(self, login, valid, src_ip, difficulty=1):
        self.shares.append((login, valid, src_ip))


def connected_pair(login="W1", algo="cn/0", server_algo="cn/0",
                   sink=None, src_ip="10.9.9.9"):
    client_end, server_end = make_channel_pair()
    sink = sink if sink is not None else RecordingSink()
    server = StratumServerSession(server_end, sink,
                                  current_algo=server_algo, src_ip=src_ip)
    client = StratumClient(client_end, login, supported_algo=algo)
    return client, server, sink


class TestFraming:
    def test_roundtrip(self):
        framer = LineFramer()
        frames = framer.feed(encode_frame({"id": 1, "method": "login"}))
        assert frames == [{"id": 1, "method": "login"}]

    def test_partial_chunks(self):
        framer = LineFramer()
        wire = encode_frame({"a": 1}) + encode_frame({"b": 2})
        assert framer.feed(wire[:5]) == []
        frames = framer.feed(wire[5:])
        assert frames == [{"a": 1}, {"b": 2}]

    def test_pending_bytes(self):
        framer = LineFramer()
        framer.feed(b'{"incomplete"')
        assert framer.pending_bytes > 0

    def test_blank_lines_skipped(self):
        framer = LineFramer()
        assert framer.feed(b"\n\n" + encode_frame({"x": 1})) == [{"x": 1}]

    def test_malformed_json_raises(self):
        framer = LineFramer()
        with pytest.raises(ProtocolError):
            framer.feed(b"not json at all\n")

    def test_oversized_frame_raises(self):
        framer = LineFramer()
        with pytest.raises(ProtocolError):
            framer.feed(b"x" * (17 * 1024))


class TestMessages:
    def test_login_roundtrip(self):
        request = LoginRequest(1, "WALLET", "pass", "xmrig/2.8")
        parsed = parse_message(request.to_wire())
        assert parsed == request

    def test_submit_roundtrip(self):
        request = SubmitRequest(2, "sess1", "job1", "0000002a", "ff" * 32)
        parsed = parse_message(request.to_wire())
        assert parsed == request

    def test_keepalive(self):
        parsed = parse_message(KeepAlive(3).to_wire())
        assert isinstance(parsed, KeepAlive)

    def test_login_result(self):
        job = JobNotification("job1", "blob", "ffffffff", "cn/1", 7)
        wire = LoginResult(1, "sess9", job).to_wire()
        parsed = parse_message(wire)
        assert isinstance(parsed, LoginResult)
        assert parsed.job.algo == "cn/1"

    def test_job_notification(self):
        job = JobNotification("job2", "blob", "ffffffff", "cn/0")
        parsed = parse_message(job.to_wire())
        assert isinstance(parsed, JobNotification)

    def test_error_response(self):
        wire = StratumError(4, -32000, "Banned").to_wire()
        parsed = parse_message(wire)
        assert isinstance(parsed, StratumError)
        assert parsed.message == "Banned"

    def test_submit_missing_fields_raises(self):
        with pytest.raises(ProtocolError):
            parse_message({"id": 1, "method": "submit",
                           "params": {"id": "s"}})

    def test_login_missing_login_raises(self):
        with pytest.raises(ProtocolError):
            parse_message({"id": 1, "method": "login", "params": {}})

    def test_unknown_frame_raises(self):
        with pytest.raises(ProtocolError):
            parse_message({"method": "mystery"})

    def test_wire_is_single_line_json(self):
        wire = encode_frame(LoginRequest(1, "W").to_wire())
        assert wire.endswith(b"\n")
        assert b"\n" not in wire[:-1]
        json.loads(wire)


class TestChannel:
    def test_send_receive(self):
        a, b = make_channel_pair()
        a.send(b"hello")
        assert b.receive() == b"hello"
        assert b.receive() is None

    def test_bidirectional(self):
        a, b = make_channel_pair()
        a.send(b"ping")
        b.send(b"pong")
        assert b.receive() == b"ping"
        assert a.receive() == b"pong"

    def test_closed_send_raises(self):
        a, b = make_channel_pair()
        a.close()
        with pytest.raises(ConnectionError):
            a.send(b"x")

    def test_peer_closed_send_raises(self):
        a, b = make_channel_pair()
        b.close()
        with pytest.raises(ConnectionResetError):
            a.send(b"x")

    def test_unconnected_send_raises(self):
        with pytest.raises(ConnectionError):
            Channel().send(b"x")

    def test_byte_counters(self):
        a, b = make_channel_pair()
        a.send(b"12345")
        b.receive()
        assert a.bytes_sent == 5
        assert b.bytes_received == 5


class TestClientServer:
    def test_login_flow(self):
        client, server, sink = connected_pair()
        assert client.connect()
        assert client.session_id is not None
        assert client.current_job is not None
        assert sink.logins == [("W1", "xmrig/2.8.1", "10.9.9.9")]

    def test_banned_login_rejected(self):
        sink = RecordingSink(banned={"BAD"})
        client, server, _ = connected_pair(login="BAD", sink=sink)
        assert not client.connect()
        assert client.last_error is not None

    def test_share_accounting(self):
        client, server, sink = connected_pair()
        client.connect()
        accepted = client.mine(10)
        assert accepted == 10
        assert server.valid_shares == 10
        assert all(valid for _, valid, _ in sink.shares)

    def test_submit_before_login_raises(self):
        client, _, _ = connected_pair()
        with pytest.raises(ProtocolError):
            client.submit_share(1)

    def test_algorithm_mismatch_rejected(self):
        """An outdated miner's shares are invalid after a fork (§VI)."""
        client, server, _ = connected_pair(algo="cn/0", server_algo="cn/1")
        client.connect()
        assert client.mine(5) == 0
        assert server.invalid_shares == 5

    def test_fork_mid_session(self):
        client, server, _ = connected_pair()
        client.connect()
        assert client.mine(3) == 3
        server.set_algo("cn/1")  # the fork: pushes a new job
        assert client.mine(3) == 0  # client still hashes cn/0

    def test_updated_client_survives_fork(self):
        client, server, _ = connected_pair()
        client.connect()
        server.set_algo("cn/1")
        client.poll()  # pick up the pushed post-fork job
        client.supported_algo = "cn/1"  # operator pushed an update
        assert client.mine(3) == 3

    def test_stale_job_share_rejected(self):
        """A share computed against the pre-fork job must be rejected."""
        client, server, _ = connected_pair()
        client.connect()
        server.set_algo("cn/1")
        client.supported_algo = "cn/1"
        # no poll: the first submit references the stale job id
        assert not client.submit_share(0)


class TestProxy:
    def _build_proxy(self, n_bots=4, shares_each=5):
        up_client_end, up_server_end = make_channel_pair()
        pool_sink = RecordingSink()
        pool_session = StratumServerSession(
            up_server_end, pool_sink, current_algo="cn/0",
            src_ip="77.7.7.7")
        upstream = StratumClient(up_client_end, "OPERATOR",
                                 supported_algo="cn/0")
        proxy = MiningProxy(upstream, "77.7.7.7")
        assert proxy.connect_upstream()
        for i in range(n_bots):
            bot_channel = proxy.accept_bot(f"10.0.0.{i}")
            bot = StratumClient(bot_channel, f"bot{i}",
                                supported_algo="cn/0")
            assert bot.connect()
            bot.mine(shares_each)
        return proxy, pool_sink, pool_session

    def test_pool_sees_single_ip(self):
        proxy, pool_sink, _ = self._build_proxy()
        assert {ip for _, _, ip in pool_sink.shares} == {"77.7.7.7"}

    def test_pool_sees_operator_wallet_only(self):
        proxy, pool_sink, _ = self._build_proxy()
        assert {login for login, _, _ in pool_sink.shares} == {"OPERATOR"}

    def test_all_shares_forwarded(self):
        proxy, pool_sink, _ = self._build_proxy(n_bots=3, shares_each=4)
        assert proxy.forwarded_shares == 12
        assert len(pool_sink.shares) == 12

    def test_stats(self):
        proxy, _, _ = self._build_proxy(n_bots=3, shares_each=2)
        stats = proxy.stats()
        assert stats["bots"] == 3
        assert stats["distinct_ips"] == 3
        assert stats["downstream_shares"] == 6
