"""Unit tests for the network substrate (DNS, flows, IP allocation)."""

import datetime

import pytest

from repro.common.rng import DeterministicRNG
from repro.netsim.dns import DnsZone, PassiveDns, Resolver
from repro.netsim.flows import FlowLog, FlowRecord
from repro.netsim.ipspace import IpAllocator

D = datetime.date


@pytest.fixture
def zone():
    z = DnsZone()
    z.add_a("pool.minexmr.com", "10.1.1.1")
    z.add_cname("xt.freebuf.info", "pool.minexmr.com")
    return z


class TestResolution:
    def test_direct_a(self, zone):
        result = Resolver(zone).resolve("pool.minexmr.com", D(2018, 6, 1))
        assert result.ip == "10.1.1.1"
        assert result.cname_chain == []

    def test_cname_chain(self, zone):
        result = Resolver(zone).resolve("xt.freebuf.info", D(2018, 6, 1))
        assert result.ip == "10.1.1.1"
        assert result.cname_chain == ["pool.minexmr.com"]

    def test_unknown_name(self, zone):
        result = Resolver(zone).resolve("nonexistent.example", D(2018, 6, 1))
        assert not result.resolved

    def test_case_insensitive(self, zone):
        result = Resolver(zone).resolve("POOL.MINEXMR.COM", D(2018, 6, 1))
        assert result.ip == "10.1.1.1"

    def test_time_versioned_records(self):
        zone = DnsZone()
        zone.add_a("a.example", "10.0.0.1", valid_to=D(2018, 1, 1))
        zone.add_a("a.example", "10.0.0.2", valid_from=D(2018, 1, 2))
        resolver = Resolver(zone)
        assert resolver.resolve("a.example", D(2017, 6, 1)).ip == "10.0.0.1"
        assert resolver.resolve("a.example", D(2018, 6, 1)).ip == "10.0.0.2"

    def test_cname_rotation(self):
        """The alibuf.com case: one alias fronting two pools over time."""
        zone = DnsZone()
        zone.add_a("crypto-pool.fr", "10.2.2.2")
        zone.add_a("pool.minexmr.com", "10.1.1.1")
        zone.add_cname("x.alibuf.com", "crypto-pool.fr",
                       valid_to=D(2018, 4, 5))
        zone.add_cname("x.alibuf.com", "pool.minexmr.com",
                       valid_from=D(2018, 4, 6))
        resolver = Resolver(zone)
        assert resolver.resolve("x.alibuf.com", D(2018, 1, 1)).ip == "10.2.2.2"
        assert resolver.resolve("x.alibuf.com", D(2018, 6, 1)).ip == "10.1.1.1"

    def test_cname_loop_terminates(self):
        zone = DnsZone()
        zone.add_cname("a.example", "b.example")
        zone.add_cname("b.example", "a.example")
        result = Resolver(zone).resolve("a.example", D(2018, 1, 1))
        assert not result.resolved


class TestPassiveDns:
    def test_history_includes_expired(self):
        zone = DnsZone()
        zone.add_a("pool.a", "10.0.0.1")
        zone.add_a("pool.b", "10.0.0.2")
        zone.add_cname("alias.x", "pool.a", valid_to=D(2017, 1, 1))
        zone.add_cname("alias.x", "pool.b", valid_from=D(2017, 1, 2))
        pdns = PassiveDns(zone)
        assert pdns.ever_cname_targets("alias.x") == ["pool.a", "pool.b"]

    def test_reverse_lookup(self, zone):
        pdns = PassiveDns(zone)
        assert pdns.names_pointing_at("pool.minexmr.com") == \
            ["xt.freebuf.info"]

    def test_unknown_name_empty(self, zone):
        assert PassiveDns(zone).history("none.example") == []


class TestFlows:
    def test_stratum_filter(self):
        log = FlowLog()
        log.record(FlowRecord("pool.x", "10.0.0.1", 4444, "stratum",
                              login="W1"))
        log.record(FlowRecord("web.x", "10.0.0.2", 80, "http"))
        assert len(log) == 2
        assert len(log.stratum_flows()) == 1
        assert log.stratum_flows()[0].login == "W1"

    def test_contacted_hosts_dedup_order(self):
        log = FlowLog()
        for host in ["a.x", "b.x", "a.x"]:
            log.record(FlowRecord(host, "10.0.0.1", 80, "http"))
        assert log.contacted_hosts() == ["a.x", "b.x"]


class TestIpAllocator:
    def test_unique(self):
        alloc = IpAllocator(DeterministicRNG(1))
        ips = {alloc.allocate() for _ in range(100)}
        assert len(ips) == 100

    def test_owner_stability(self):
        alloc = IpAllocator(DeterministicRNG(1))
        assert alloc.allocate("pool:x") == alloc.allocate("pool:x")

    def test_pin(self):
        alloc = IpAllocator(DeterministicRNG(1))
        assert alloc.pin("host:usa138", "221.9.251.236") == "221.9.251.236"
        assert alloc.owner_ip("host:usa138") == "221.9.251.236"

    def test_pin_validates(self):
        alloc = IpAllocator(DeterministicRNG(1))
        with pytest.raises(ValueError):
            alloc.pin("x", "999.999.1.1")

    def test_unknown_owner_raises(self):
        alloc = IpAllocator(DeterministicRNG(1))
        with pytest.raises(KeyError):
            alloc.owner_ip("nobody")

    def test_within_base_net(self):
        alloc = IpAllocator(DeterministicRNG(1), base_net="192.0.2.0/24")
        for _ in range(20):
            assert alloc.allocate().startswith("192.0.2.")
