"""Unit tests for the sanity checks (§III-B)."""

import datetime

import pytest

from repro.binfmt.codegen import pseudo_code
from repro.binfmt.format import ExecutableKind, build_binary
from repro.common.rng import DeterministicRNG
from repro.core.sanity import SanityChecker
from repro.corpus.model import SampleRecord
from repro.intel.vt import AV_VENDORS, AvReport, VtService
from repro.netsim.flows import FlowRecord
from repro.osint.feeds import OsintFeeds
from repro.pools.directory import default_directory
from repro.sandbox.behavior import BehaviorScript
from repro.sandbox.emulator import SandboxReport

D = datetime.date


def make_sample(sha="s1", strings=None, kind=ExecutableKind.PE,
                raw=None):
    rng = DeterministicRNG(hash(sha) % 2**32)
    if raw is None:
        raw = build_binary(kind, code=pseudo_code(rng, 800),
                           strings=strings or [])
    return SampleRecord(sha256=sha, md5="", raw=raw,
                        behavior=BehaviorScript(), first_seen=None,
                        source="test", kind="miner")


def vt_with(sha, positives, label="Trojan.CoinMiner.x", domains=()):
    vt = VtService()
    detections = {v: (label, D(2018, 1, 1))
                  for v in AV_VENDORS[:positives]}
    vt.add_report(AvReport(sha256=sha, detections=detections,
                           contacted_domains=list(domains)))
    return vt


def checker(vt, whitelist=None, threshold=10):
    return SanityChecker(vt, OsintFeeds(), default_directory(),
                         tool_whitelist=whitelist or set(),
                         positives_threshold=threshold)


class TestIsExecutable:
    def test_pe_elf_jar_accepted(self):
        c = checker(VtService())
        for kind in (ExecutableKind.PE, ExecutableKind.ELF,
                     ExecutableKind.JAR):
            assert c.is_executable(build_binary(kind, code=b"\x90"))

    def test_script_and_data_rejected(self):
        c = checker(VtService())
        assert not c.is_executable(b"#!/bin/sh\necho hi")
        assert not c.is_executable(b"<script>mine()</script>")
        assert not c.is_executable(b"\x00\x01\x02garbage")


class TestIsMalware:
    def test_threshold(self):
        c = checker(vt_with("s1", 10))
        assert c.is_malware("s1")
        c2 = checker(vt_with("s2", 9))
        assert not c2.is_malware("s2")

    def test_custom_threshold(self):
        """The paper's proposed 5-AV greedy trade-off (§VI)."""
        c = checker(vt_with("s1", 6), threshold=5)
        assert c.is_malware("s1")

    def test_whitelisted_tool_not_malware(self):
        c = checker(vt_with("tool1", 20), whitelist={"tool1"})
        assert not c.is_malware("tool1")

    def test_unknown_sample_not_malware(self):
        assert not checker(VtService()).is_malware("ghost")

    def test_illicit_wallet_exception(self):
        """A 5-positive sample sharing a confirmed wallet is kept."""
        c = checker(vt_with("s1", 5))
        assert not c.is_malware("s1", {"WALLET-A"})
        c.confirm_wallets({"WALLET-A"})
        assert c.is_malware("s1", {"WALLET-A"})
        assert not c.is_malware("s1", {"WALLET-B"})


class TestIsMiner:
    def test_yara_on_strings(self):
        sample = make_sample(
            strings=["stratum+tcp://pool.example:3333"])
        assert checker(vt_with(sample.sha256, 12)).is_miner(sample)

    def test_plain_malware_not_miner(self):
        sample = make_sample(strings=["nothing suspicious"])
        c = checker(vt_with(sample.sha256, 12, label="Trojan.Generic.a"))
        assert not c.is_miner(sample)

    def test_stratum_flow_ioc(self):
        sample = make_sample(strings=["no static evidence"])
        report = SandboxReport(sample_sha256=sample.sha256)
        report.flows.record(FlowRecord("10.0.0.1", "10.0.0.1", 4444,
                                       "stratum", login="W"))
        c = checker(vt_with(sample.sha256, 12, label="Trojan.Generic.a"))
        assert c.is_miner(sample, report)

    def test_pool_dns_ioc(self):
        sample = make_sample(strings=["nothing"])
        report = SandboxReport(sample_sha256=sample.sha256)
        report.dns_queries.append("xmr-eu.dwarfpool.com")
        c = checker(vt_with(sample.sha256, 12, label="Trojan.Generic.a"))
        assert c.is_miner(sample, report)

    def test_vt_contacted_pool_domain(self):
        sample = make_sample(strings=["nothing"])
        c = checker(vt_with(sample.sha256, 12, label="Trojan.Generic.a",
                            domains=["pool.minexmr.com"]))
        assert c.is_miner(sample)

    def test_miner_labels_query(self):
        sample = make_sample(strings=["nothing"])
        c = checker(vt_with(sample.sha256, 12, label="Riskware.CoinMiner"))
        assert c.is_miner(sample)

    def test_osint_ioc(self):
        sample = make_sample(strings=["nothing"])
        vt = vt_with(sample.sha256, 12, label="Trojan.Generic.a")
        feeds = OsintFeeds()
        feeds.operation("Rocke").sample_hashes.add(sample.sha256)
        c = SanityChecker(vt, feeds, default_directory())
        assert c.is_miner(sample)

    def test_packed_sample_unpacked_before_scan(self):
        from repro.binfmt.packers import PACKERS, pack
        inner = build_binary(
            ExecutableKind.PE, code=b"\x90" * 200,
            strings=["stratum+tcp://pool.example:3333"])
        packed = pack(inner, PACKERS["UPX"])
        sample = make_sample(raw=packed)
        assert checker(vt_with(sample.sha256, 12)).is_miner(sample)


class TestCombinedVerdict:
    def test_accepted_path(self):
        sample = make_sample(strings=["stratum+tcp://p:3333"])
        verdict = checker(vt_with(sample.sha256, 15)).check(sample)
        assert verdict.accepted

    def test_rejected_not_executable(self):
        sample = make_sample(raw=b"#!/bin/sh")
        verdict = checker(VtService()).check(sample)
        assert not verdict.accepted
        assert "executable" in verdict.reasons

    def test_rejected_low_positives(self):
        sample = make_sample(strings=["stratum+tcp://p:3333"])
        verdict = checker(vt_with(sample.sha256, 3)).check(sample)
        assert not verdict.accepted
        assert "positives" in verdict.reasons

    def test_whitelisted_tool_verdict(self):
        sample = make_sample(strings=["stratum+tcp://p:3333"])
        c = checker(vt_with(sample.sha256, 20),
                    whitelist={sample.sha256})
        verdict = c.check(sample)
        assert verdict.whitelisted_tool
        assert not verdict.accepted

    def test_wallet_exception_flagged(self):
        sample = make_sample(strings=["stratum+tcp://p:3333"])
        c = checker(vt_with(sample.sha256, 5))
        c.confirm_wallets({"W-CONF"})
        verdict = c.check(sample, sample_wallets={"W-CONF"})
        assert verdict.accepted
        assert verdict.used_wallet_exception
