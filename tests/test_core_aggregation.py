"""Unit tests for the campaign aggregation graph (§III-E)."""

import pytest

from repro.core.aggregation import (
    CampaignAggregator,
    GroupingPolicy,
    is_public_repo_host,
)
from repro.core.records import MinerRecord
from repro.osint.feeds import KnownOperation, OsintFeeds


def miner(sha, wallets=(), parents=(), dropped=(), itw=(),
          cnames=(), dst_ip=None, coins=None):
    record = MinerRecord(sha256=sha)
    record.identifiers = list(wallets)
    record.identifier_coins = list(coins or ["XMR"] * len(wallets))
    record.parents = list(parents)
    record.dropped = list(dropped)
    record.itw_urls = list(itw)
    record.cname_aliases = list(cnames)
    record.dst_ip = dst_ip
    record.type = "Miner" if wallets else "Ancillary"
    return record


def aggregate(records, policy=None, osint=None, proxies=None):
    aggregator = CampaignAggregator(osint or OsintFeeds(),
                                    policy or GroupingPolicy.full(),
                                    proxy_ips=set(proxies or []))
    return aggregator.aggregate(records)


class TestGroupingFeatures:
    def test_same_identifier(self):
        campaigns = aggregate([
            miner("s1", wallets=["W1"]),
            miner("s2", wallets=["W1"]),
            miner("s3", wallets=["W2"]),
        ])
        assert len(campaigns) == 2
        sizes = sorted(c.num_samples for c in campaigns)
        assert sizes == [1, 2]

    def test_ancestor_links(self):
        campaigns = aggregate([
            miner("dropper", parents=(), dropped=("m1", "m2")),
            miner("m1", wallets=["W1"]),
            miner("m2", wallets=["W2"]),
        ])
        assert len(campaigns) == 1
        assert campaigns[0].num_wallets == 2

    def test_parent_metadata_links(self):
        campaigns = aggregate([
            miner("m1", wallets=["W1"], parents=["dropper"]),
            miner("m2", wallets=["W2"], parents=["dropper"]),
        ])
        assert len(campaigns) == 1

    def test_exact_url_hosting(self):
        campaigns = aggregate([
            miner("m1", wallets=["W1"], itw=["http://x.ru/a.exe"]),
            miner("m2", wallets=["W2"], itw=["http://x.ru/a.exe"]),
        ])
        assert len(campaigns) == 1

    def test_different_urls_same_public_repo_not_linked(self):
        """GitHub hosting must not merge unrelated campaigns."""
        campaigns = aggregate([
            miner("m1", wallets=["W1"],
                  itw=["http://github.com/a/miner.exe"]),
            miner("m2", wallets=["W2"],
                  itw=["http://github.com/b/miner.exe"]),
        ])
        assert len(campaigns) == 2

    def test_url_parameters_distinguish(self):
        """file8desktop-style ?p= parameters identify the resource."""
        campaigns = aggregate([
            miner("m1", wallets=["W1"],
                  itw=["http://f.com/download/get56?p=19363"]),
            miner("m2", wallets=["W2"],
                  itw=["http://f.com/download/get56?p=99999"]),
        ])
        assert len(campaigns) == 2

    def test_ip_hosting_links(self):
        campaigns = aggregate([
            miner("m1", wallets=["W1"],
                  itw=["http://221.9.251.236/a.exe"]),
            miner("m2", wallets=["W2"],
                  itw=["http://221.9.251.236/b.exe"]),
        ])
        assert len(campaigns) == 1
        assert campaigns[0].hosting_ips == ["221.9.251.236"]

    def test_cname_alias_links(self):
        campaigns = aggregate([
            miner("m1", wallets=["W1"], cnames=["xt.freebuf.info"]),
            miner("m2", wallets=["W2"], cnames=["xt.freebuf.info"]),
        ])
        assert len(campaigns) == 1
        assert campaigns[0].cname_aliases == ["xt.freebuf.info"]

    def test_proxy_links(self):
        campaigns = aggregate([
            miner("m1", wallets=["W1"], dst_ip="10.9.9.9"),
            miner("m2", wallets=["W2"], dst_ip="10.9.9.9"),
        ], proxies=["10.9.9.9"])
        assert len(campaigns) == 1
        assert campaigns[0].proxies == ["10.9.9.9"]

    def test_non_proxy_ip_not_linked(self):
        campaigns = aggregate([
            miner("m1", wallets=["W1"], dst_ip="10.9.9.9"),
            miner("m2", wallets=["W2"], dst_ip="10.9.9.9"),
        ], proxies=[])
        assert len(campaigns) == 2

    def test_known_operation_links(self):
        osint = OsintFeeds()
        osint.operation("Photominer").wallets.update({"W1", "W2"})
        campaigns = aggregate([
            miner("m1", wallets=["W1"]),
            miner("m2", wallets=["W2"]),
        ], osint=osint)
        assert len(campaigns) == 1
        assert campaigns[0].operations == ["Photominer"]


class TestDonationWallets:
    def test_donation_wallet_does_not_merge(self):
        """The paper's donation-wallet whitelist prevents gluing
        unrelated campaigns through developer wallets."""
        osint = OsintFeeds()
        osint.whitelist_donation_wallet("DON")
        campaigns = aggregate([
            miner("m1", wallets=["W1", "DON"], coins=["XMR", "XMR"]),
            miner("m2", wallets=["W2", "DON"], coins=["XMR", "XMR"]),
        ], osint=osint)
        assert len(campaigns) == 2

    def test_without_whitelist_overaggregates(self):
        """Ablation: disabling the whitelist produces the mega-merge."""
        policy = GroupingPolicy(exclude_donation_wallets=False)
        osint = OsintFeeds()
        osint.whitelist_donation_wallet("DON")
        campaigns = aggregate([
            miner("m1", wallets=["W1", "DON"], coins=["XMR", "XMR"]),
            miner("m2", wallets=["W2", "DON"], coins=["XMR", "XMR"]),
        ], policy=policy, osint=osint)
        assert len(campaigns) == 1


class TestPolicies:
    def test_wallet_only_baseline(self):
        """Prior work's wallet-only clustering misses CNAME links."""
        records = [
            miner("m1", wallets=["W1"], cnames=["alias.x"]),
            miner("m2", wallets=["W2"], cnames=["alias.x"]),
        ]
        full = aggregate(records)
        baseline = aggregate(records, policy=GroupingPolicy.wallet_only())
        assert len(full) == 1
        assert len(baseline) == 2

    def test_infrastructure_only_fragments_dropped(self):
        """Components without any miner sample are not campaigns."""
        campaigns = aggregate([
            miner("anc-only", itw=["http://x.ru/a.exe"]),
        ])
        assert campaigns == []


class TestCampaignProperties:
    def test_stable_renumbering_biggest_first(self):
        campaigns = aggregate([
            miner("a1", wallets=["W1"]),
            miner("a2", wallets=["W1"]),
            miner("b1", wallets=["W2"]),
        ])
        assert campaigns[0].campaign_id == 1
        assert campaigns[0].num_samples == 2

    def test_coins_collected(self):
        campaigns = aggregate([
            miner("m1", wallets=["W1", "E1"], coins=["XMR", "ETN"]),
        ])
        assert campaigns[0].coins == {"XMR", "ETN"}

    def test_public_repo_detection(self):
        assert is_public_repo_host("github.com")
        assert is_public_repo_host("s3.amazonaws.com")
        assert not is_public_repo_host("hrtests.ru")


class TestOneShotContract:
    def test_second_aggregate_raises(self):
        """aggregate() is one-shot: the grouping graph would silently
        merge both record sets if reuse were allowed."""
        aggregator = CampaignAggregator(OsintFeeds(),
                                        GroupingPolicy.full())
        aggregator.aggregate([miner("s1", wallets=["W1"])])
        with pytest.raises(RuntimeError, match="already ran"):
            aggregator.aggregate([miner("s2", wallets=["W2"])])

    def test_fresh_instances_stay_independent(self):
        first = aggregate([miner("s1", wallets=["W1"])])
        second = aggregate([miner("s2", wallets=["W2"])])
        assert [c.sample_hashes for c in first] == [["s1"]]
        assert [c.sample_hashes for c in second] == [["s2"]]
