"""Out-of-core pipeline ≡ batch pipeline, plus record-store routing.

The stream withholds a few fixture-linked campaigns until late in the
feed, so acceptance *order* differs from the batch world order; every
comparison therefore goes through sha-keyed dicts (all downstream
consumers — aggregation, profiling, reporting — are order-canonical).
"""

import dataclasses

import pytest

from repro.core.aggregation import CampaignAggregator
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.model import ScenarioConfig
from repro.ingest import IngestionService
from repro.scale.columnar import RecordStore
from repro.scale.pipeline import ScalePipeline
from repro.scale.stream import StreamingCorpus

_CONFIG = ScenarioConfig(seed=1, scale=0.01)


@pytest.fixture(scope="module")
def scale_result():
    corpus = StreamingCorpus(_CONFIG, chunk_samples=512)
    pipeline = ScalePipeline(corpus, num_shards=8, keep_verdicts=True,
                             keep_campaign_records=True)
    result = pipeline.run()
    yield result
    import shutil
    shutil.rmtree(result.store.root.parent, ignore_errors=True)


class TestScalePipelineEquivalence:
    def test_records_identical(self, scale_result, pipeline_result):
        batch = {r.sha256: r for r in pipeline_result.records}
        stream = {r.sha256: r for r in scale_result.records()}
        assert stream == batch

    def test_funnel_identical(self, scale_result, pipeline_result):
        for f in dataclasses.fields(pipeline_result.stats):
            assert getattr(scale_result.stats, f.name) == \
                getattr(pipeline_result.stats, f.name), f.name

    def test_proxies_profiles_verdicts(self, scale_result,
                                       pipeline_result):
        assert scale_result.proxy_ips == pipeline_result.proxy_ips
        assert scale_result.profiles == pipeline_result.profiles
        assert scale_result.verdicts == pipeline_result.verdicts

    def test_campaigns_identical(self, scale_result, small_world,
                                 pipeline_result):
        # the batch result's campaigns carry post-aggregation
        # enrichment; compare against the bare aggregator output,
        # which is what ScalePipeline's sharded stage replaces
        batch = CampaignAggregator(
            small_world.osint, proxy_ips=pipeline_result.proxy_ips
        ).aggregate(pipeline_result.records)
        assert scale_result.campaigns == batch

    def test_spill_telemetry(self, scale_result):
        assert scale_result.rejected_spilled > 0
        assert scale_result.recovered > 0
        assert scale_result.spill_bytes > 0
        assert scale_result.store.num_segments >= 1


class TestScalePipelineOptions:
    def test_workers_pool_identical(self, scale_result):
        corpus = StreamingCorpus(_CONFIG, chunk_samples=512)
        pooled = ScalePipeline(corpus, workers=2, num_shards=8,
                               keep_verdicts=True,
                               keep_campaign_records=True).run()
        assert {r.sha256: r for r in pooled.records()} == \
            {r.sha256: r for r in scale_result.records()}
        assert pooled.verdicts == scale_result.verdicts
        assert pooled.campaigns == scale_result.campaigns

    def test_prefetch_disabled_identical(self, scale_result):
        """The module fixture runs with the default prefetch (2); the
        eager path must produce byte-identical records, spills and
        campaigns — prefetch changes timing, never content."""
        corpus = StreamingCorpus(_CONFIG, chunk_samples=512)
        eager = ScalePipeline(corpus, prefetch=0, num_shards=8,
                              keep_verdicts=True,
                              keep_campaign_records=True).run()
        assert {r.sha256: r for r in eager.records()} == \
            {r.sha256: r for r in scale_result.records()}
        assert eager.verdicts == scale_result.verdicts
        assert eager.campaigns == scale_result.campaigns
        assert eager.stats == scale_result.stats
        assert eager.deferred_spilled == scale_result.deferred_spilled
        assert eager.rejected_spilled == scale_result.rejected_spilled

    def test_rejects_negative_prefetch(self):
        corpus = StreamingCorpus(_CONFIG, chunk_samples=512)
        with pytest.raises(ValueError):
            ScalePipeline(corpus, prefetch=-1)

    def test_small_segments_identical(self, scale_result):
        corpus = StreamingCorpus(_CONFIG, chunk_samples=512)
        chunked = ScalePipeline(corpus, segment_rows=64,
                                keep_campaign_records=True).run()
        assert chunked.store.num_segments > 1
        assert {r.sha256: r for r in chunked.records()} == \
            {r.sha256: r for r in scale_result.records()}
        assert chunked.campaigns == scale_result.campaigns

    def test_lean_defaults_drop_heavy_state(self, scale_result):
        corpus = StreamingCorpus(_CONFIG, chunk_samples=512)
        lean = ScalePipeline(corpus).run()
        assert lean.verdicts == {}
        assert all(c.records == [] for c in lean.campaigns)
        assert [c.sample_hashes for c in lean.campaigns] == \
            [c.sample_hashes for c in scale_result.campaigns]

    def test_explicit_store_persists(self, tmp_path):
        store = RecordStore(tmp_path / "store")
        corpus = StreamingCorpus(_CONFIG, chunk_samples=512)
        result = ScalePipeline(corpus, store=store).run()
        assert result.store is store
        assert store.num_segments >= 1
        assert len(store) == result.stats.all_executables_kept


class TestRecordStoreRouting:
    def test_batch_pipeline_flushes_kept_records(self, small_world,
                                                 tmp_path):
        store = RecordStore(tmp_path / "store")
        result = MeasurementPipeline(small_world,
                                     record_store=store).run()
        assert store.num_segments == 1
        assert {r.sha256: r for r in store.iter_records()} == \
            {r.sha256: r for r in result.records}

    def test_ingest_writes_batch_aligned_segments(self, small_world,
                                                  tmp_path):
        store = RecordStore(tmp_path / "store")
        service = IngestionService(small_world,
                                   tmp_path / "checkpoint",
                                   batch_days=120, record_store=store)
        ingest = service.run()
        assert store.num_segments > 1
        assert {sha for r in store.iter_records()
                for sha in [r.sha256]} == \
            {r.sha256 for r in ingest.result.records}

    def test_ingest_skips_existing_segments(self, small_world,
                                            tmp_path):
        """Crash-replay safety: a segment written before the commit is
        not rewritten (and does not crash) when the batch re-runs."""
        store = RecordStore(tmp_path / "store")
        probe = IngestionService(small_world, tmp_path / "probe",
                                 batch_days=120, record_store=store)
        probe.run()
        first = store.segment_paths()[0]
        stamp = first.stat().st_mtime_ns
        # re-ingesting into the same store must skip every existing
        # segment instead of raising FileExistsError
        again = IngestionService(small_world, tmp_path / "checkpoint",
                                 batch_days=120, record_store=store)
        again.run()
        assert first.stat().st_mtime_ns == stamp


class TestBenchHarness:
    def test_scale_point_metrics(self):
        from repro.scale.bench import measure_scale_point
        point = measure_scale_point(0.01, seed=1, chunk_samples=512)
        assert point["samples"] > 0
        assert point["records"] > 0
        assert point["campaigns"] > 0
        assert point["run_s"] > 0
        assert point["peak_rss_mib"] > 0
        assert point["segments"] >= 1

    def test_pipeline_point_metrics(self):
        from repro.scale.bench import measure_pipeline_point
        point = measure_pipeline_point(0.01, seed=1)
        assert point["samples"] > 0
        assert point["stages"], "expected per-stage timings"
        assert {"stage", "seconds", "items"} <= set(point["stages"][0])
