"""Crash/resume tests: kill the ingestion at every durability boundary.

A run interrupted at any of the checkpoint seams — before the commit
line, after it, before a snapshot, after one — must resume to the exact
state of an uninterrupted run, without re-analysing samples whose
outcomes already reached the journal.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.ingest import CheckpointStore, IngestionService
from repro.ingest.service import _STAGE1_KINDS, diff_measurements


@pytest.fixture(scope="module")
def world():
    return generate_world(ScenarioConfig(seed=7, scale=0.003))


@pytest.fixture(scope="module")
def expected(world):
    return MeasurementPipeline(world).run()


class _Crash(Exception):
    """Simulated process death at a durability boundary."""


def crash_at(target_point, target_batch):
    def hook(point, batch_id):
        if point == target_point and batch_id == target_batch:
            raise _Crash(f"{point}@{batch_id}")
    return hook


def run_until_crash(world, checkpoint, point, batch):
    service = IngestionService(world, checkpoint, batch_days=30,
                               snapshot_every=4, fsync=False,
                               fault_hook=crash_at(point, batch))
    with pytest.raises(_Crash):
        service.run()


class TestCrashResume:
    # batch 7 commits at cursor 8 = 2 * snapshot_every, so the
    # snapshot seams fire there; 5 is a plain mid-run commit.
    @pytest.mark.parametrize("point,batch", [
        ("pre-commit", 0),
        ("pre-commit", 5),
        ("post-commit", 5),
        ("pre-snapshot", 7),
        ("post-snapshot", 7),
    ])
    def test_resume_converges_identically(self, world, expected,
                                          tmp_path, point, batch):
        checkpoint = tmp_path / "ck"
        run_until_crash(world, checkpoint, point, batch)

        replay = CheckpointStore(checkpoint, fsync=False).load()
        committed_cursor = replay.cursor
        replayed_stage1 = sum(
            1 for data in replay.partial.get(committed_cursor, [])
            if data["kind"] in _STAGE1_KINDS)

        resumed = IngestionService(world, checkpoint, batch_days=30,
                                   snapshot_every=4, fsync=False,
                                   resume=True).run()

        assert diff_measurements(expected, resumed.result) == []
        assert resumed.resumed_from == committed_cursor
        assert len(resumed.batches) == resumed.total_batches

        committed_samples = sum(
            m.samples for m in resumed.batches[:committed_cursor])
        fresh_analyzed = sum(
            m.analyzed for m in resumed.batches[committed_cursor:])
        assert fresh_analyzed == (len(world.samples) - committed_samples
                                  - replayed_stage1)

    def test_resume_refused_without_flag(self, world, tmp_path):
        checkpoint = tmp_path / "ck"
        run_until_crash(world, checkpoint, "post-commit", 2)
        with pytest.raises(ValueError, match="resume"):
            IngestionService(world, checkpoint, batch_days=30,
                             fsync=False).run()

    def test_resume_rejects_mismatched_plan(self, world, tmp_path):
        checkpoint = tmp_path / "ck"
        run_until_crash(world, checkpoint, "post-snapshot", 3)
        with pytest.raises(ValueError, match="different feed plan"):
            IngestionService(world, checkpoint, batch_days=7,
                             fsync=False, resume=True).run()

    def test_double_crash_then_resume(self, world, expected, tmp_path):
        """Two successive crashes at different seams still converge."""
        checkpoint = tmp_path / "ck"
        run_until_crash(world, checkpoint, "pre-snapshot", 3)
        service = IngestionService(world, checkpoint, batch_days=30,
                                   snapshot_every=4, fsync=False,
                                   resume=True,
                                   fault_hook=crash_at("pre-commit", 9))
        with pytest.raises(_Crash):
            service.run()
        resumed = IngestionService(world, checkpoint, batch_days=30,
                                   snapshot_every=4, fsync=False,
                                   resume=True).run()
        assert diff_measurements(expected, resumed.result) == []

    def test_resume_of_finished_run_is_idempotent(self, world, expected,
                                                  tmp_path):
        checkpoint = tmp_path / "ck"
        first = IngestionService(world, checkpoint, batch_days=30,
                                 fsync=False).run()
        again = IngestionService(world, checkpoint, batch_days=30,
                                 fsync=False, resume=True).run()
        assert again.resumed_from == again.total_batches
        assert diff_measurements(first.result, again.result) == []
        assert diff_measurements(expected, again.result) == []


class TestSigkillResume:
    def test_sigkill_mid_run_then_cli_resume(self, tmp_path):
        """Kill -9 a real ingest process, then resume it via the CLI
        with --verify asserting equality with the batch pipeline."""
        checkpoint = tmp_path / "ck"
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        argv = [sys.executable, "-m", "repro.cli", "ingest",
                "--scale", "0.003", "--seed", "7", "--batch-days", "30",
                "--checkpoint", str(checkpoint)]
        proc = subprocess.Popen(argv, env=env, cwd=repo,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        time.sleep(1.5)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        done = subprocess.run(argv + ["--resume", "--verify"], env=env,
                              cwd=repo, capture_output=True, text=True,
                              timeout=300)
        assert done.returncode == 0, done.stderr
        assert "equals the batch pipeline" in done.stdout
