"""Donation-wallet whitelist regression: the taint rule's runtime twin.

The paper excludes developer donation wallets before identifier edges
are drawn — samples that merely ship the same donation address (miners
commonly embed the default donation wallet of the stock tool they
wrap) must not collapse into one campaign.  These tests pin that both
the batch aggregator and the incremental one consult the whitelist on
their identifier-edge paths, and that the exclusion is exactly as wide
as the whitelist.
"""

from repro.core.aggregation import CampaignAggregator, GroupingPolicy
from repro.core.records import MinerRecord
from repro.ingest.aggregator import IncrementalAggregator
from repro.osint.feeds import OsintFeeds

DONATION = "4DONATEdevfundwalletxxxxxxxxxxxxxxxxxxxxx"


def _feeds():
    feeds = OsintFeeds()
    feeds.whitelist_donation_wallet(DONATION)
    return feeds


def _records(shared_wallet):
    """Two otherwise-unrelated miners sharing one wallet string."""
    one = MinerRecord(sha256="aa01", identifiers=["W-one", shared_wallet],
                      identifier_coins=["XMR", "XMR"])
    two = MinerRecord(sha256="bb02", identifiers=["W-two", shared_wallet],
                      identifier_coins=["XMR", "XMR"])
    return [one, two]


def _batch_campaigns(records, feeds):
    return CampaignAggregator(feeds, GroupingPolicy.full()).aggregate(
        records)


def _incremental_campaigns(records, feeds):
    aggregator = IncrementalAggregator(feeds, GroupingPolicy.full())
    for record in records:
        aggregator.add_record(record)
    return aggregator.campaigns()


class TestDonationWhitelist:
    def test_batch_does_not_group_on_donation_wallet(self):
        campaigns = _batch_campaigns(_records(DONATION), _feeds())
        assert len(campaigns) == 2

    def test_incremental_does_not_group_on_donation_wallet(self):
        campaigns = _incremental_campaigns(_records(DONATION), _feeds())
        assert len(campaigns) == 2

    def test_control_a_real_shared_wallet_still_groups(self):
        # same shape, wallet not whitelisted: one campaign on both paths
        feeds = _feeds()
        assert len(_batch_campaigns(_records("W-shared"), feeds)) == 1
        assert len(_incremental_campaigns(_records("W-shared"),
                                          _feeds())) == 1

    def test_donation_wallet_never_appears_as_an_identifier(self):
        feeds = _feeds()
        for campaigns in (_batch_campaigns(_records(DONATION), feeds),
                          _incremental_campaigns(_records(DONATION),
                                                 _feeds())):
            for campaign in campaigns:
                assert DONATION not in campaign.identifiers

    def test_batch_and_incremental_agree_on_the_partition(self):
        batch = _batch_campaigns(_records(DONATION), _feeds())
        incremental = _incremental_campaigns(_records(DONATION),
                                             _feeds())
        assert [c.sample_hashes for c in batch] == \
            [c.sample_hashes for c in incremental]

    def test_exclusion_can_be_disabled_for_ablation(self):
        policy = GroupingPolicy(exclude_donation_wallets=False)
        campaigns = CampaignAggregator(_feeds(), policy).aggregate(
            _records(DONATION))
        assert len(campaigns) == 1  # the ablation baseline regroups
