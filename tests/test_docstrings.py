"""Documentation meta-test: every public item carries a docstring.

Walks all ``repro`` modules and asserts that public modules, classes
and functions are documented — the deliverable contract for a library
release.  Private names (leading underscore) and generated members
(dataclass plumbing, Enum values) are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        yield importlib.import_module(module_info.name)


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere
        yield name, member


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = [
        f"{module.__name__}.{name}"
        for name, member in _public_members(module)
        if not inspect.getdoc(member)
    ]
    assert not undocumented, f"undocumented: {undocumented}"


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_public_methods_documented(module):
    undocumented = []
    for name, member in _public_members(module):
        if not inspect.isclass(member):
            continue
        for attr_name, attr in vars(member).items():
            if attr_name.startswith("_"):
                continue
            if not inspect.isfunction(attr):
                continue
            if not inspect.getdoc(attr):
                undocumented.append(
                    f"{module.__name__}.{name}.{attr_name}")
    assert not undocumented, f"undocumented: {undocumented}"
