"""Unit tests for OSINT feeds and the stock-tool catalog."""

import datetime

import pytest

from repro.common.rng import DeterministicRNG
from repro.osint.feeds import (
    KNOWN_OPERATION_NAMES,
    KnownOperation,
    OsintFeeds,
    PPI_BOTNETS,
)
from repro.osint.stock_tools import StockToolCatalog, TOOL_FRAMEWORKS

D = datetime.date


class TestOsintFeeds:
    def test_six_default_operations(self):
        feeds = OsintFeeds()
        names = {op.name for op in feeds.operations()}
        assert names == set(KNOWN_OPERATION_NAMES)
        assert "Photominer" in names and "Rocke" in names

    def test_register_new_operation(self):
        """The methodology 'easily includes data from new operations'."""
        feeds = OsintFeeds()
        feeds.register_operation(KnownOperation(
            "NewBotnet", wallets={"W1"}))
        assert feeds.operation_for_wallet("W1").name == "NewBotnet"

    def test_lookup_by_sample_hash(self):
        feeds = OsintFeeds()
        feeds.operation("Adylkuzz").sample_hashes.add("abc")
        assert feeds.operation_for_sample("abc").name == "Adylkuzz"
        assert feeds.operation_for_sample("zzz") is None

    def test_lookup_by_domain_suffix(self):
        feeds = OsintFeeds()
        feeds.operation("Smominru").domains.add("evil.example")
        assert feeds.operation_for_domain("sub.evil.example").name == \
            "Smominru"
        assert feeds.operation_for_domain("evil.example.org") is None

    def test_donation_whitelist(self):
        feeds = OsintFeeds()
        feeds.whitelist_donation_wallet("DON1")
        assert feeds.is_donation_wallet("DON1")
        assert not feeds.is_donation_wallet("OTHER")


class TestPpiBotnets:
    def test_three_families(self):
        assert [b.name for b in PPI_BOTNETS] == ["Virut", "Ramnit", "Nitol"]

    def test_label_matching(self):
        virut = PPI_BOTNETS[0]
        assert virut.matches_label("Win32.Virut.ab")
        assert virut.matches_label("WIN32.VIRUT.AB")
        assert not virut.matches_label("Trojan.CoinMiner.x")


class TestStockToolCatalog:
    def test_thirteen_frameworks(self, stock_catalog):
        assert len(stock_catalog.frameworks()) == 13
        assert len(TOOL_FRAMEWORKS) == 13

    def test_fourteen_donation_wallets(self, stock_catalog):
        """The paper white-lists exactly 14 donation wallets."""
        assert len(stock_catalog.donation_wallets()) == 14

    def test_version_counts_follow_table9(self, stock_catalog):
        per_framework = {}
        for binary in stock_catalog.binaries():
            per_framework.setdefault(binary.framework, set()).add(
                binary.version_index)
        assert len(per_framework["xmrig"]) == 59
        assert len(per_framework["claymore"]) == 14
        assert len(per_framework["niceHash"]) == 11
        assert len(per_framework["ccminer"]) == 1

    def test_whitelist_covers_all_builds(self, stock_catalog):
        assert len(stock_catalog.whitelist_hashes()) == len(stock_catalog)

    def test_releases_inside_window(self, stock_catalog):
        for binary in stock_catalog.binaries():
            assert binary.release_date <= D(2019, 4, 30)

    def test_latest_version_as_of(self, stock_catalog):
        early = stock_catalog.latest_version("xmrig", as_of=D(2017, 8, 1))
        late = stock_catalog.latest_version("xmrig", as_of=D(2019, 4, 1))
        assert early.version_index < late.version_index

    def test_latest_version_before_release_none(self, stock_catalog):
        assert stock_catalog.latest_version("xmrig",
                                            as_of=D(2016, 1, 1)) is None

    def test_exact_hash_match(self, stock_catalog):
        tool = stock_catalog.latest_version("claymore")
        match = stock_catalog.match(tool.raw)
        assert match is not None
        assert match[1] == 0.0
        assert match[0].framework == "claymore"

    def test_fork_matches_within_threshold(self, stock_catalog):
        """Donation-stripped forks stay attributable (§III-E)."""
        tool = stock_catalog.latest_version("xmrig")
        fork = stock_catalog.fork_tool(tool, DeterministicRNG(77))
        match = stock_catalog.match(fork, threshold=0.1)
        assert match is not None
        assert match[0].framework == "xmrig"
        assert 0.0 < match[1] <= 0.1

    def test_unrelated_binary_no_match(self, stock_catalog):
        rng = DeterministicRNG(88)
        assert stock_catalog.match(rng.randbytes(4400)) is None

    def test_cross_framework_no_match(self, stock_catalog):
        """Different frameworks must not match each other."""
        xmrig = stock_catalog.latest_version("xmrig")
        match = stock_catalog.match(xmrig.raw, threshold=0.1)
        assert match[0].framework == "xmrig"

    def test_deterministic_catalog(self):
        c1 = StockToolCatalog(DeterministicRNG(5))
        c2 = StockToolCatalog(DeterministicRNG(5))
        assert c1.whitelist_hashes() == c2.whitelist_hashes()
