"""Tests for the Appendix C source-overlap analysis."""

import pytest

from repro.analysis.sources import (
    exclusive_counts,
    source_coverage,
    source_overlap_matrix,
)


class TestSourceOverlap:
    def test_feeds_overlap(self, small_world, pipeline_result):
        """Per-feed counts exceed the dataset size (Table III shape)."""
        by_source = pipeline_result.stats.by_source
        total = len(pipeline_result.records)
        assert sum(by_source.values()) > total

    def test_vt_dominates_coverage(self, small_world, pipeline_result):
        coverage = source_coverage(small_world, pipeline_result)
        assert coverage["Virus Total"] == max(coverage.values())
        assert coverage["Virus Total"] > 0.6

    def test_vt_pa_pair_is_largest_overlap(self, small_world,
                                           pipeline_result):
        matrix = source_overlap_matrix(small_world, pipeline_result)
        assert matrix
        biggest = max(matrix, key=matrix.get)
        assert set(biggest) == {"Palo Alto Networks", "Virus Total"}

    def test_exclusive_plus_shared_consistent(self, small_world,
                                              pipeline_result):
        exclusive = exclusive_counts(small_world, pipeline_result)
        total = len(pipeline_result.records)
        shared = total - sum(exclusive.values())
        assert shared > 0
        assert sum(exclusive.values()) > 0

    def test_coverage_fractions_bounded(self, small_world,
                                        pipeline_result):
        for feed, fraction in source_coverage(small_world,
                                              pipeline_result).items():
            assert 0.0 < fraction <= 1.0, feed
