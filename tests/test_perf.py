"""Unit tests for the repro.perf subsystem and its helpers."""

import pytest

from repro.binfmt.entropy import shannon_entropy
from repro.common.net import is_ipv4_literal
from repro.fuzzyhash import ctph
from repro.perf.cache import (
    CTPH_CACHE,
    CachingResolver,
    LruCache,
    cache_stats,
    cached_ctph,
    cached_entropy,
    clear_caches,
    warm_ctph,
)
from repro.perf.profiler import PipelineProfiler


# ---------------------------------------------------------------------------
# LruCache
# ---------------------------------------------------------------------------


class TestLruCache:
    def test_get_or_compute_memoises(self):
        cache = LruCache("t", maxsize=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1
        assert cache.hits == 2 and cache.misses == 1

    def test_eviction_is_lru(self):
        cache = LruCache("t", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b becomes oldest
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_none_values_are_cached(self):
        cache = LruCache("t")
        calls = []
        for _ in range(2):
            value = cache.get_or_compute(
                "k", lambda: calls.append(1) and None)
        assert value is None
        assert len(calls) == 1

    def test_clear_resets_counters(self):
        cache = LruCache("t")
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
        assert cache.hit_rate == 0.0

    def test_stats_shape(self):
        cache = LruCache("t")
        cache.get_or_compute("k", lambda: 1)
        cache.get("k")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["hit_rate"] == 0.5

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            LruCache("t", maxsize=0)


# ---------------------------------------------------------------------------
# Content-keyed memos
# ---------------------------------------------------------------------------


class TestContentMemos:
    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_cached_ctph_matches_direct(self):
        data = b"some miner binary contents " * 64
        assert cached_ctph(data) == ctph.compute(data)
        assert CTPH_CACHE.hits == 0
        assert cached_ctph(data) == ctph.compute(data)
        assert CTPH_CACHE.hits == 1

    def test_warm_ctph_preseeds(self):
        data = b"warmed content " * 32
        warm_ctph(data, ctph.compute(data))
        cached_ctph(data)
        assert CTPH_CACHE.hits == 1 and CTPH_CACHE.misses == 0

    def test_cached_entropy_matches_direct(self):
        data = bytes(range(256)) * 8
        assert cached_entropy(data) == shannon_entropy(data)
        assert cached_entropy(data) == shannon_entropy(data)

    def test_cache_stats_covers_process_caches(self):
        stats = cache_stats()
        assert set(stats) >= {"ctph", "entropy"}


# ---------------------------------------------------------------------------
# CachingResolver
# ---------------------------------------------------------------------------


class _CountingResolver:
    def __init__(self):
        self.calls = 0

    def resolve(self, name, when):
        self.calls += 1
        return (name, when)

    def cname_targets(self, name, when):
        return [name]


class TestCachingResolver:
    def test_resolution_is_memoised(self):
        inner = _CountingResolver()
        resolver = CachingResolver(inner)
        first = resolver.resolve("Pool.Example.COM", "2018-09-01")
        again = resolver.resolve("pool.example.com", "2018-09-01")
        assert first == again
        assert inner.calls == 1

    def test_distinct_dates_miss(self):
        inner = _CountingResolver()
        resolver = CachingResolver(inner)
        resolver.resolve("a.example", "2018-01-01")
        resolver.resolve("a.example", "2018-02-01")
        assert inner.calls == 2

    def test_cname_targets_delegates(self):
        resolver = CachingResolver(_CountingResolver())
        assert resolver.cname_targets("x.example", None) == ["x.example"]


# ---------------------------------------------------------------------------
# PipelineProfiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_stage_records_wall_time(self):
        prof = PipelineProfiler()
        with prof.stage("work", items=10):
            pass
        timing = prof.stages["work"]
        assert timing.calls == 1 and timing.items == 10
        assert timing.wall_s >= 0.0
        assert prof.total_wall_s == timing.wall_s

    def test_repeat_stages_accumulate(self):
        prof = PipelineProfiler()
        prof.record("s", 0.5, items=5)
        prof.record("s", 0.5, items=5)
        assert prof.stages["s"].calls == 2
        assert prof.stages["s"].items == 10
        assert prof.stages["s"].items_per_s == 10.0

    def test_render_table_lists_stages_in_order(self):
        prof = PipelineProfiler()
        prof.record("first", 1.0, items=4)
        prof.record("second", 3.0)
        prof.count("events", 7)
        table = prof.render_table()
        assert table.index("first") < table.index("second")
        assert "75.0%" in table
        assert "events" in table and "7" in table

    def test_summary_maps_stage_to_wall(self):
        prof = PipelineProfiler()
        prof.record("a", 1.25)
        assert prof.summary() == {"a": 1.25}


# ---------------------------------------------------------------------------
# is_ipv4_literal
# ---------------------------------------------------------------------------


class TestIsIpv4Literal:
    @pytest.mark.parametrize("host", [
        "1.2.3.4", "0.0.0.0", "255.255.255.255", "198.51.100.17",
    ])
    def test_accepts_dotted_quads(self, host):
        assert is_ipv4_literal(host)

    @pytest.mark.parametrize("host", [
        "", "...", "1.2.3", "1.2.3.4.5", "1.2.3.999", "1.2.3.",
        ".1.2.3", "1..2.3", "a.b.c.d", "1.2.3.4a", "0001.2.3.4",
        "pool.minexmr.com",
    ])
    def test_rejects_malformed(self, host):
        assert not is_ipv4_literal(host)


# ---------------------------------------------------------------------------
# CTPH fast path vs pure-python reference
# ---------------------------------------------------------------------------


class TestCtphFastPath:
    @pytest.mark.parametrize("payload", [
        b"",
        b"short",
        b"x" * 64,
        bytes(range(256)) * 32,
        b"low entropy " * 500,
    ])
    def test_vectorised_path_matches_reference(self, payload):
        fast = ctph.compute(payload)
        totals = ctph._rolling_totals(payload)
        if totals is not None:
            reference = ctph._piecewise_signature(
                payload, fast.blocksize)
            assert fast.signature == reference
