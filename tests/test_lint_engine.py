"""reprolint engine tests: per-rule fixtures, pragmas, baselines.

Each rule family has a positive fixture (every expected rule ID at an
expected line, located by marker comments so line drift cannot rot the
assertions) and a negative fixture that must stay silent.  On top:
pragma suppression, baseline add/expire arithmetic, and the self-check
that HEAD lints clean.
"""

from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintEngine,
    RULE_REGISTRY,
    lint_source_tree,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_fixture(*names):
    """Findings for the named fixture files (paths kept fixture-relative)."""
    paths = [FIXTURES / name for name in names]
    return LintEngine().run(FIXTURES, paths=paths)


def marked_lines(name, marker):
    """1-based lines of ``name`` whose text mentions ``marker``."""
    text = (FIXTURES / name).read_text().splitlines()
    return [i for i, line in enumerate(text, start=1)
            if marker in line and "marked_lines" not in line]


def found(report, rule_id):
    return [(f.path, f.line) for f in report.findings
            if f.rule_id == rule_id]


# -- rule families ----------------------------------------------------------


class TestTaintRules:
    def test_positive(self):
        report = lint_fixture("taint_bad.py")
        assert found(report, "TAINT001") == [
            ("taint_bad.py", line)
            for line in marked_lines("taint_bad.py", "TAINT001")]
        flagged = {line for _, line in found(report, "TAINT002")}
        assert flagged == set(marked_lines("taint_bad.py", "TAINT002"))

    def test_negative(self):
        assert lint_fixture("taint_ok.py").findings == []

    def test_non_grouping_module_out_of_scope(self, tmp_path):
        # the same tainted read outside a grouping module is fine
        module = tmp_path / "enricher.py"
        module.write_text(
            "def tag(campaign):\n"
            "    return campaign.ppi_botnets\n")
        assert LintEngine().run(tmp_path).findings == []


class TestDeterminismRules:
    def test_positive(self):
        report = lint_fixture("core/det_bad.py")
        det1 = {line for _, line in found(report, "DET001")}
        assert det1 == set(marked_lines("core/det_bad.py", "DET001"))
        det2 = {line for _, line in found(report, "DET002")}
        assert det2 == set(marked_lines("core/det_bad.py", "DET002"))

    def test_negative(self):
        assert lint_fixture("core/det_ok.py").findings == []

    def test_out_of_scope_directory(self, tmp_path):
        # the determinism contract covers core/ingest/reporting only
        module = tmp_path / "benchmarks" / "timer.py"
        module.parent.mkdir()
        module.write_text("import time\n\n"
                          "def now():\n    return time.time()\n")
        assert LintEngine().run(tmp_path).findings == []


class TestParallelSafetyRules:
    def test_positive(self):
        report = lint_fixture("parallel_bad.py")
        par1 = {line for _, line in found(report, "PAR001")}
        assert par1 == set(marked_lines("parallel_bad.py", "PAR001"))
        par2 = {line for _, line in found(report, "PAR002")}
        assert par2 == set(marked_lines("parallel_bad.py", "PAR002"))

    def test_indirect_submission_traced(self):
        # Engine.run -> _map(fn=_tally_chunk) -> pool.submit(fn): the
        # global-mutating task is caught through the indirection.
        report = lint_fixture("parallel_bad.py")
        assert any(f.symbol == "_tally_chunk"
                   for f in report.findings if f.rule_id == "PAR002")

    def test_negative(self):
        assert lint_fixture("parallel_ok.py").findings == []


class TestDurabilityRules:
    def test_positive(self):
        report = lint_fixture("ingest/durable_bad.py")
        assert {line for _, line in found(report, "DUR001")} == \
            set(marked_lines("ingest/durable_bad.py", "DUR001"))
        assert {line for _, line in found(report, "DUR002")} == \
            set(marked_lines("ingest/durable_bad.py", "DUR002"))

    def test_negative(self):
        assert lint_fixture("ingest/durable_ok.py").findings == []

    def test_out_of_scope_directory(self, tmp_path):
        module = tmp_path / "reports" / "writer.py"
        module.parent.mkdir()
        module.write_text("def dump(path, text):\n"
                          "    open(path, 'w').write(text)\n")
        assert LintEngine().run(tmp_path).findings == []


class TestCacheKeyRules:
    def test_positive(self):
        report = lint_fixture("cache_bad.py")
        assert {line for _, line in found(report, "CKEY001")} == \
            set(marked_lines("cache_bad.py", "CKEY001"))

    def test_negative_including_derived_keys(self):
        assert lint_fixture("cache_ok.py").findings == []


class TestExceptionRules:
    def test_positive(self):
        report = lint_fixture("exc_bad.py")
        assert {line for _, line in found(report, "EXC001")} == \
            set(marked_lines("exc_bad.py", "EXC001"))
        assert {line for _, line in found(report, "EXC002")} == \
            set(marked_lines("exc_bad.py", "EXC002"))

    def test_negative(self):
        assert lint_fixture("exc_ok.py").findings == []


# -- pragmas ----------------------------------------------------------------


class TestPragmas:
    def test_line_and_file_pragmas_suppress(self):
        report = lint_fixture("pragma_cases.py")
        suppressed = {(f.rule_id, f.line) for f in report.suppressed}
        (pragma_line,) = marked_lines("pragma_cases.py",
                                      "disable=EXC001")
        assert ("EXC001", pragma_line) in suppressed
        assert any(rule == "EXC002" for rule, _ in suppressed)

    def test_unpragmad_finding_survives(self):
        report = lint_fixture("pragma_cases.py")
        assert found(report, "EXC001") == [
            ("pragma_cases.py", line)
            for line in marked_lines("pragma_cases.py",
                                     "EXC001 — no pragma")]

    def test_pragma_in_string_does_not_suppress(self, tmp_path):
        module = tmp_path / "strings.py"
        module.write_text(
            'NOTE = "# reprolint: disable-file=all"\n\n'
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except:\n"
            "        return None\n")
        report = LintEngine().run(tmp_path)
        assert [f.rule_id for f in report.findings] == ["EXC001"]


# -- baseline ---------------------------------------------------------------


class TestBaseline:
    def test_accepts_exactly_current_findings(self):
        report = lint_fixture("exc_bad.py")
        baseline = Baseline.from_report(report)
        assert baseline.regressions(report) == []
        assert baseline.expired(report) == []

    def test_new_finding_is_a_regression(self):
        baseline = Baseline.from_report(lint_fixture("exc_bad.py"))
        wider = lint_fixture("exc_bad.py", "core/det_bad.py")
        regressions = baseline.regressions(wider)
        assert regressions and all(
            f.path == "core/det_bad.py" for f in regressions)

    def test_fixed_finding_expires_its_grant(self):
        baseline = Baseline.from_report(
            lint_fixture("exc_bad.py", "core/det_bad.py"))
        narrower = lint_fixture("exc_bad.py")
        expired = baseline.expired(narrower)
        assert expired
        assert all(path == "core/det_bad.py"
                   for (_, path), _, _ in expired)
        assert baseline.regressions(narrower) == []

    def test_roundtrip_through_toml(self, tmp_path):
        report = lint_fixture("exc_bad.py", "cache_bad.py")
        baseline = Baseline.from_report(report)
        baseline.notes[("EXC001", "exc_bad.py")] = "fixture grant"
        path = baseline.write(tmp_path / "lint_baseline.toml")
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert loaded.notes == baseline.notes
        assert loaded.regressions(report) == []


# -- self-check -------------------------------------------------------------


class TestSelfCheck:
    def test_head_lints_clean(self):
        run = lint_source_tree()
        assert run.report.parse_errors == []
        assert [f.render() for f in run.regressions] == []

    def test_every_registered_rule_has_a_firing_fixture(self):
        report = LintEngine().run(FIXTURES)
        fired = {f.rule_id for f in report.findings} | \
                {f.rule_id for f in report.suppressed}
        assert fired == set(RULE_REGISTRY)

    def test_rule_registry_is_complete(self):
        families = {spec.family for spec in RULE_REGISTRY.values()}
        assert families == {"taint", "determinism", "parallel-safety",
                            "durability", "cache-keys",
                            "exception-hygiene"}
