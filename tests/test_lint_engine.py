"""reprolint engine tests: per-rule fixtures, pragmas, baselines.

Each rule family has a positive fixture (every expected rule ID at an
expected line, located by marker comments so line drift cannot rot the
assertions) and a negative fixture that must stay silent.  On top:
pragma suppression, baseline add/expire arithmetic, and the self-check
that HEAD lints clean.
"""

import subprocess
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintEngine,
    LintReport,
    RULE_REGISTRY,
    build_project_index,
    changed_files,
    lint_source_tree,
)
from repro.lint.pragmas import collect_pragmas

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_fixture(*names):
    """Findings for the named fixture files (paths kept fixture-relative)."""
    paths = [FIXTURES / name for name in names]
    return LintEngine().run(FIXTURES, paths=paths)


def marked_lines(name, marker):
    """1-based lines of ``name`` whose text mentions ``marker``."""
    text = (FIXTURES / name).read_text().splitlines()
    return [i for i, line in enumerate(text, start=1)
            if marker in line and "marked_lines" not in line]


def found(report, rule_id):
    return [(f.path, f.line) for f in report.findings
            if f.rule_id == rule_id]


# -- rule families ----------------------------------------------------------


class TestTaintRules:
    def test_positive(self):
        report = lint_fixture("taint_bad.py")
        assert found(report, "TAINT001") == [
            ("taint_bad.py", line)
            for line in marked_lines("taint_bad.py", "TAINT001")]
        flagged = {line for _, line in found(report, "TAINT002")}
        assert flagged == set(marked_lines("taint_bad.py", "TAINT002"))

    def test_negative(self):
        assert lint_fixture("taint_ok.py").findings == []

    def test_non_grouping_module_out_of_scope(self, tmp_path):
        # the same tainted read outside a grouping module is fine
        module = tmp_path / "enricher.py"
        module.write_text(
            "def tag(campaign):\n"
            "    return campaign.ppi_botnets\n")
        assert LintEngine().run(tmp_path).findings == []


class TestDeterminismRules:
    def test_positive(self):
        report = lint_fixture("core/det_bad.py")
        det1 = {line for _, line in found(report, "DET001")}
        assert det1 == set(marked_lines("core/det_bad.py", "DET001"))
        det2 = {line for _, line in found(report, "DET002")}
        assert det2 == set(marked_lines("core/det_bad.py", "DET002"))

    def test_negative(self):
        assert lint_fixture("core/det_ok.py").findings == []

    def test_out_of_scope_directory(self, tmp_path):
        # the determinism contract covers core/ingest/reporting only
        module = tmp_path / "benchmarks" / "timer.py"
        module.parent.mkdir()
        module.write_text("import time\n\n"
                          "def now():\n    return time.time()\n")
        assert LintEngine().run(tmp_path).findings == []


class TestParallelSafetyRules:
    def test_positive(self):
        report = lint_fixture("parallel_bad.py")
        par1 = {line for _, line in found(report, "PAR001")}
        assert par1 == set(marked_lines("parallel_bad.py", "PAR001"))
        par2 = {line for _, line in found(report, "PAR002")}
        assert par2 == set(marked_lines("parallel_bad.py", "PAR002"))

    def test_indirect_submission_traced(self):
        # Engine.run -> _map(fn=_tally_chunk) -> pool.submit(fn): the
        # global-mutating task is caught through the indirection.
        report = lint_fixture("parallel_bad.py")
        assert any(f.symbol == "_tally_chunk"
                   for f in report.findings if f.rule_id == "PAR002")

    def test_negative(self):
        assert lint_fixture("parallel_ok.py").findings == []


class TestDurabilityRules:
    def test_positive(self):
        report = lint_fixture("ingest/durable_bad.py")
        assert {line for _, line in found(report, "DUR001")} == \
            set(marked_lines("ingest/durable_bad.py", "DUR001"))
        assert {line for _, line in found(report, "DUR002")} == \
            set(marked_lines("ingest/durable_bad.py", "DUR002"))

    def test_negative(self):
        assert lint_fixture("ingest/durable_ok.py").findings == []

    def test_out_of_scope_directory(self, tmp_path):
        module = tmp_path / "reports" / "writer.py"
        module.parent.mkdir()
        module.write_text("def dump(path, text):\n"
                          "    open(path, 'w').write(text)\n")
        assert LintEngine().run(tmp_path).findings == []


class TestConcurrencyRules:
    def test_fork_positive(self):
        report = lint_fixture("conc_fork_bad.py")
        assert {line for _, line in found(report, "FORK001")} == \
            set(marked_lines("conc_fork_bad.py", "FORK001"))
        assert {line for _, line in found(report, "FORK002")} == \
            set(marked_lines("conc_fork_bad.py", "FORK002"))

    def test_async_positive(self):
        report = lint_fixture("conc_async_bad.py")
        assert {line for _, line in found(report, "ASYNC001")} == \
            set(marked_lines("conc_async_bad.py", "ASYNC001"))
        assert {line for _, line in found(report, "ASYNC002")} == \
            set(marked_lines("conc_async_bad.py", "ASYNC002"))

    def test_blocking_call_laundered_two_hops(self):
        # report_stats -> _load_stats -> _read_manifest: the open()
        # two sync hops down is still attributed to the coroutine.
        report = lint_fixture("conc_async_bad.py")
        laundered = [f for f in report.findings
                     if f.rule_id == "ASYNC001"
                     and f.symbol == "_read_manifest"]
        assert len(laundered) == 1
        assert "report_stats" in laundered[0].message

    def test_thread_positive(self):
        report = lint_fixture("conc_thread_bad.py")
        assert {line for _, line in found(report, "THR001")} == \
            set(marked_lines("conc_thread_bad.py", "THR001"))

    @pytest.mark.parametrize("name", ["conc_fork_ok.py",
                                      "conc_async_ok.py",
                                      "conc_thread_ok.py"])
    def test_negative(self, name):
        assert lint_fixture(name).findings == []


class TestResourceRules:
    def test_positive(self):
        report = lint_fixture("scale/res_bad.py")
        assert {line for _, line in found(report, "RES001")} == \
            set(marked_lines("scale/res_bad.py", "RES001"))

    def test_negative(self):
        assert lint_fixture("scale/res_ok.py").findings == []

    def test_out_of_scope_directory(self, tmp_path):
        # ownership is enforced in the handle-owning subsystems only
        module = tmp_path / "reports" / "writer.py"
        module.parent.mkdir()
        module.write_text("def probe(path):\n"
                          "    open(path, 'rb')\n")
        assert LintEngine().run(tmp_path).findings == []


class TestCacheKeyRules:
    def test_positive(self):
        report = lint_fixture("cache_bad.py")
        assert {line for _, line in found(report, "CKEY001")} == \
            set(marked_lines("cache_bad.py", "CKEY001"))

    def test_negative_including_derived_keys(self):
        assert lint_fixture("cache_ok.py").findings == []


class TestExceptionRules:
    def test_positive(self):
        report = lint_fixture("exc_bad.py")
        assert {line for _, line in found(report, "EXC001")} == \
            set(marked_lines("exc_bad.py", "EXC001"))
        assert {line for _, line in found(report, "EXC002")} == \
            set(marked_lines("exc_bad.py", "EXC002"))

    def test_negative(self):
        assert lint_fixture("exc_ok.py").findings == []


# -- pragmas ----------------------------------------------------------------


class TestPragmas:
    def test_line_and_file_pragmas_suppress(self):
        report = lint_fixture("pragma_cases.py")
        suppressed = {(f.rule_id, f.line) for f in report.suppressed}
        (pragma_line,) = marked_lines("pragma_cases.py",
                                      "disable=EXC001")
        assert ("EXC001", pragma_line) in suppressed
        assert any(rule == "EXC002" for rule, _ in suppressed)

    def test_unpragmad_finding_survives(self):
        report = lint_fixture("pragma_cases.py")
        assert found(report, "EXC001") == [
            ("pragma_cases.py", line)
            for line in marked_lines("pragma_cases.py",
                                     "EXC001 — no pragma")]

    def test_pragma_in_string_does_not_suppress(self, tmp_path):
        module = tmp_path / "strings.py"
        module.write_text(
            'NOTE = "# reprolint: disable-file=all"\n\n'
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except:\n"
            "        return None\n")
        report = LintEngine().run(tmp_path)
        assert [f.rule_id for f in report.findings] == ["EXC001"]


# -- baseline ---------------------------------------------------------------


class TestBaseline:
    def test_accepts_exactly_current_findings(self):
        report = lint_fixture("exc_bad.py")
        baseline = Baseline.from_report(report)
        assert baseline.regressions(report) == []
        assert baseline.expired(report) == []

    def test_new_finding_is_a_regression(self):
        baseline = Baseline.from_report(lint_fixture("exc_bad.py"))
        wider = lint_fixture("exc_bad.py", "core/det_bad.py")
        regressions = baseline.regressions(wider)
        assert regressions and all(
            f.path == "core/det_bad.py" for f in regressions)

    def test_fixed_finding_expires_its_grant(self):
        baseline = Baseline.from_report(
            lint_fixture("exc_bad.py", "core/det_bad.py"))
        narrower = lint_fixture("exc_bad.py")
        expired = baseline.expired(narrower)
        assert expired
        assert all(path == "core/det_bad.py"
                   for (_, path), _, _ in expired)
        assert baseline.regressions(narrower) == []

    def test_roundtrip_through_toml(self, tmp_path):
        report = lint_fixture("exc_bad.py", "cache_bad.py")
        baseline = Baseline.from_report(report)
        baseline.notes[("EXC001", "exc_bad.py")] = "fixture grant"
        path = baseline.write(tmp_path / "lint_baseline.toml")
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert loaded.notes == baseline.notes
        assert loaded.regressions(report) == []


# -- whole-program passes ---------------------------------------------------


class TestInterproceduralTaint:
    def test_three_hop_chain_through_pool_flagged(self):
        report = lint_fixture("taintdeep/grouping.py",
                              "taintdeep/helpers.py")
        assert found(report, "TAINT002") == [
            ("taintdeep/grouping.py", line)
            for line in marked_lines("taintdeep/grouping.py",
                                     "TAINT002")]
        (finding,) = report.findings
        assert "relay_via_pool" in finding.message

    def test_sanitized_variant_is_clean(self):
        report = lint_fixture("taintdeep/grouping_ok.py",
                              "taintdeep/helpers.py")
        assert report.findings == []

    def test_helpers_alone_are_clean(self):
        # the chain is only a violation once grouping code consumes it
        assert lint_fixture("taintdeep/helpers.py").findings == []

    def test_checkpoint_sink_direct_and_laundered(self):
        report = lint_fixture("ckpt_bad.py")
        assert {line for _, line in found(report, "TAINT003")} == \
            set(marked_lines("ckpt_bad.py", "TAINT003"))
        # the untainted write must stay silent
        assert len(report.findings) == 2


class TestSchemaRules:
    def test_positive(self):
        report = lint_fixture("schema_bad.py")
        for rule in ("SCHEMA001", "SCHEMA002", "SCHEMA003"):
            assert {line for _, line in found(report, rule)} == \
                set(marked_lines("schema_bad.py", rule)), rule

    def test_negative_including_opaque_escape(self):
        assert lint_fixture("schema_ok.py").findings == []


class TestUnitKindRules:
    ALL = ("UNIT001", "UNIT002", "UNIT003", "KIND001", "KIND002")

    def test_positive_line_precise(self):
        report = lint_fixture("units_bad.py")
        for rule in self.ALL:
            assert {line for _, line in found(report, rule)} == \
                set(marked_lines("units_bad.py", rule)), rule
        assert len(report.findings) == sum(
            len(marked_lines("units_bad.py", rule))
            for rule in self.ALL)

    def test_negative(self):
        assert lint_fixture("units_ok.py").findings == []

    def test_two_hop_laundered_remainder(self):
        # the coin unit survives max() and the helper call boundary
        report = lint_fixture("unitdeep/sink.py",
                              "unitdeep/helpers.py")
        assert found(report, "UNIT002") == [
            ("unitdeep/sink.py", line)
            for line in marked_lines("unitdeep/sink.py", "UNIT002")]
        assert len(report.findings) == 1

    def test_two_hop_with_conversion_witness_is_clean(self):
        report = lint_fixture("unitdeep/sink_ok.py",
                              "unitdeep/helpers.py")
        assert report.findings == []

    def test_helpers_alone_are_clean(self):
        assert lint_fixture("unitdeep/helpers.py").findings == []

    def test_contract_drift_flagged(self, tmp_path):
        # a contracted field the real dataclass no longer defines
        module = tmp_path / "records.py"
        module.write_text(
            "import dataclasses\n\n\n"
            "@dataclasses.dataclass\n"
            "class WalletRecord:\n"
            "    user: str\n"
            "    hashes: float = 0.0\n"
            "    hashrate: float = 0.0\n"
            "    last_share: object = None\n"
            "    balance: float = 0.0\n"
            "    date_query: object = None\n"
            "    usd: float = 0.0\n")
        report = LintEngine().run(tmp_path)
        assert [(f.rule_id, f.path) for f in report.findings] == \
            [("SCHEMA003", "records.py")]
        assert "total_paid" in report.findings[0].message

    def test_seed_fingerprint_invalidates_summary_cache(
            self, tmp_path, monkeypatch):
        from repro.lint.cache import SummaryCache, cache_stamp
        from repro.lint.facts import summarize_module
        from repro.lint.symbols import build_module_info

        module = tmp_path / "mod.py"
        module.write_text("def f(record, row):\n"
                          "    row['usd'] = record.total_paid\n")
        stamp = cache_stamp(module)
        summary = summarize_module(
            build_module_info(module, tmp_path, with_pragmas=False))

        cache = SummaryCache(tmp_path / "cache.bin")
        cache.put("mod.py", stamp, summary)
        cache.save()
        assert SummaryCache(
            tmp_path / "cache.bin").get("mod.py", stamp) is not None

        # editing a seed table re-fingerprints and drops the cache,
        # even though the module file itself is untouched.
        import repro.lint.units as units
        patched = dict(units.SLOT_UNITS)
        patched["grand_total"] = "USD"
        monkeypatch.setattr(units, "SLOT_UNITS", patched)
        assert SummaryCache(
            tmp_path / "cache.bin").get("mod.py", stamp) is None


class TestDeadCode:
    def test_unreachable_function_flagged(self):
        report = lint_fixture("deadpkg/cli.py", "deadpkg/lib.py")
        assert found(report, "DEAD001") == [
            ("deadpkg/lib.py", line)
            for line in marked_lines("deadpkg/lib.py", "DEAD001")]

    def test_no_entrypoint_means_no_dead_code_pass(self):
        # without a cli/__main__ module the roots are unknowable
        assert lint_fixture("deadpkg/lib.py").findings == []


class TestGraphRender:
    def test_render_graph_and_contracts(self):
        from repro.lint.callgraph import render_contracts, render_graph
        index = build_project_index(FIXTURES)
        graph = render_graph(index)
        assert "taintdeep.grouping.build_campaign" in graph
        assert "-> taintdeep.helpers.relay_via_pool" in graph
        contracts = render_contracts(index)
        assert "schema_bad.make_flow" in contracts
        assert "produces" in contracts and "requires" in contracts


# -- pragma parsing and hygiene ---------------------------------------------


class TestPragmaParsing:
    def test_multi_rule_list(self):
        index = collect_pragmas(
            "x = now()  # reprolint: disable=DET001,CKEY001 — "
            "clock is logged only\n")
        (entry,) = index.entries
        assert entry.rules == ("DET001", "CKEY001")
        assert index.disabled(1, "DET001")
        assert index.disabled(1, "CKEY001")
        assert not index.disabled(1, "EXC001")

    def test_prose_never_becomes_a_rule(self):
        index = collect_pragmas(
            "y = 2  # reprolint: disable=DET001, see ticket 42\n")
        (entry,) = index.entries
        assert entry.rules == ("DET001",)

    def test_scopes_and_all_wildcard(self):
        index = collect_pragmas(
            "# reprolint: disable-file=all\n"
            "z = 3  # reprolint: disable=EXC001\n")
        assert [e.scope for e in index.entries] == \
            ["disable-file", "disable"]
        assert index.disabled(99, "DET001")  # file-wide wildcard

    def test_stale_pragma_warned_live_pragma_kept(self):
        report = lint_fixture("pragma_stale.py")
        assert found(report, "PRAGMA001") == [
            ("pragma_stale.py", line)
            for line in marked_lines("pragma_stale.py", "PRAGMA001")]
        # the live pragma still suppresses, and is not reported stale
        assert found(report, "EXC001") == []
        assert "EXC001" in {f.rule_id for f in report.suppressed}


# -- parallel workers and --changed focus -----------------------------------


class TestParallelEngine:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_match_serial(self, workers):
        serial = LintEngine().run(FIXTURES)
        parallel = LintEngine(workers=workers).run(FIXTURES)
        assert [f.render() for f in serial.findings] == \
            [f.render() for f in parallel.findings]
        assert sorted(f.render() for f in serial.suppressed) == \
            sorted(f.render() for f in parallel.suppressed)


class TestFocusAndChanged:
    def test_focus_narrows_reporting_but_keeps_program(self):
        paths = [FIXTURES / "taintdeep/grouping.py",
                 FIXTURES / "taintdeep/helpers.py"]
        out_of_focus = LintEngine().run(
            FIXTURES, paths=paths, focus=["taintdeep/helpers.py"])
        assert out_of_focus.findings == []
        in_focus = LintEngine().run(
            FIXTURES, paths=paths, focus=["taintdeep/grouping.py"])
        assert [f.rule_id for f in in_focus.findings] == ["TAINT002"]

    def test_changed_files_outside_git(self, tmp_path):
        assert changed_files(tmp_path) is None

    def test_summary_cache_serves_unchanged_modules(self, tmp_path):
        paths = [FIXTURES / "taintdeep/grouping.py",
                 FIXTURES / "taintdeep/helpers.py"]
        cache = tmp_path / "reprolint-cache"
        focus = ["taintdeep/grouping.py"]
        cold = LintEngine(cache_path=cache).run(
            FIXTURES, paths=paths, focus=focus)
        assert cache.exists()
        warm = LintEngine(cache_path=cache).run(
            FIXTURES, paths=paths, focus=focus)
        assert [f.render() for f in warm.findings] == \
            [f.render() for f in cold.findings]
        assert [f.rule_id for f in warm.findings] == ["TAINT002"]

    def test_summary_cache_invalidates_on_edit(self, tmp_path):
        pkg = tmp_path / "taintdeep"
        pkg.mkdir()
        for name in ("grouping.py", "helpers.py"):
            pkg.joinpath(name).write_text(
                (FIXTURES / "taintdeep" / name).read_text())
        cache = tmp_path / "reprolint-cache"
        focus = ["taintdeep/grouping.py"]
        first = LintEngine(cache_path=cache).run(tmp_path, focus=focus)
        assert [f.rule_id for f in first.findings] == ["TAINT002"]
        # neutralise the out-of-focus helper; its cached facts must
        # not survive the edit (mtime/size stamp changes).
        helpers = pkg / "helpers.py"
        helpers.write_text(
            helpers.read_text().replace(
                "campaign.stock_tools", "campaign.first_seen"))
        second = LintEngine(cache_path=cache).run(tmp_path,
                                                  focus=focus)
        assert second.findings == []

    def test_summary_cache_invalidates_on_thread_spawn_edit(
            self, tmp_path):
        pkg = tmp_path / "scalepkg"
        pkg.mkdir()
        (pkg / "spawner.py").write_text(
            "import threading\n\n\n"
            "def start(bucket):\n"
            "    worker = threading.Thread(target=bucket.append)\n"
            "    worker.start()\n")
        (pkg / "driver.py").write_text(
            "from concurrent.futures import ProcessPoolExecutor\n\n"
            "from scalepkg.spawner import start\n\n\n"
            "def run(bucket):\n"
            "    start(bucket)\n"
            "    return ProcessPoolExecutor(max_workers=2)\n")
        cache = tmp_path / "reprolint-cache"
        focus = ["scalepkg/driver.py"]
        first = LintEngine(cache_path=cache).run(tmp_path, focus=focus)
        assert [f.rule_id for f in first.findings] == ["FORK001"]
        # joining the thread in the out-of-focus spawner must reach
        # the whole-program pass through the fact cache.
        spawner = pkg / "spawner.py"
        spawner.write_text(spawner.read_text() + "    worker.join()\n")
        second = LintEngine(cache_path=cache).run(tmp_path,
                                                  focus=focus)
        assert second.findings == []

    def test_changed_files_sees_working_tree_diff(self, tmp_path):
        repo = tmp_path / "repo"
        (repo / "pkg").mkdir(parents=True)
        (repo / "pkg" / "a.py").write_text("A = 1\n")
        (repo / "pkg" / "b.py").write_text("B = 2\n")

        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t",
                 *argv], cwd=repo, check=True, capture_output=True)

        git("init", "-b", "main")
        git("add", ".")
        git("commit", "-m", "seed")
        (repo / "pkg" / "b.py").write_text("B = 3\n")
        assert changed_files(repo, base_refs=("main",)) == ["pkg/b.py"]
        assert changed_files(repo / "pkg",
                             base_refs=("main",)) == ["b.py"]


# -- SARIF serialization ----------------------------------------------------


class TestSarif:
    def test_findings_round_trip(self):
        import json

        from repro.lint.sarif import render_sarif, to_sarif

        report = lint_fixture("units_bad.py")
        doc = to_sarif(report, regressions=report.findings)
        (run,) = doc["runs"]
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rules == sorted(set(rules))  # deduped, stable order
        assert set(rules) == {f.rule_id for f in report.findings}
        assert len(run["results"]) == len(report.findings)
        first = run["results"][0]
        loc = first["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "units_bad.py"
        assert loc["region"]["startLine"] == report.findings[0].line
        assert first["baselineState"] == "new"
        assert first["ruleId"] == rules[first["ruleIndex"]]
        # text form parses back to the same document
        assert json.loads(render_sarif(
            report, report.findings)) == json.loads(
                json.dumps(doc, sort_keys=True))

    def test_baseline_state_partition(self):
        from repro.lint.sarif import to_sarif

        report = lint_fixture("units_bad.py")
        granted = to_sarif(report, regressions=[])
        states = {r["baselineState"]
                  for r in granted["runs"][0]["results"]}
        assert states == {"unchanged"}
        no_baseline = to_sarif(report, regressions=None)
        assert all("baselineState" not in r
                   for r in no_baseline["runs"][0]["results"])


# -- baseline edge cases ----------------------------------------------------


class TestBaselineEdgeCases:
    def test_budget_shrink_is_not_a_regression(self):
        report = lint_fixture("exc_bad.py")
        baseline = Baseline.from_report(report)
        reduced = LintReport()
        reduced.findings = report.findings[:-1]
        assert baseline.regressions(reduced) == []
        assert baseline.expired(reduced)

    def test_deleted_path_grant_expires(self):
        baseline = Baseline.from_report(lint_fixture("exc_bad.py"))
        assert baseline.regressions(LintReport()) == []
        expired = baseline.expired(LintReport())
        assert expired
        assert {path for (_, path), _, _ in expired} == {"exc_bad.py"}

    def test_rewrite_is_byte_identical(self, tmp_path):
        report = lint_fixture("exc_bad.py", "cache_bad.py")
        path = tmp_path / "lint_baseline.toml"
        Baseline.from_report(report).write(path)
        first = path.read_bytes()
        loaded = Baseline.load(path)
        Baseline.from_report(report, notes=loaded.notes).write(path)
        assert path.read_bytes() == first


# -- self-check -------------------------------------------------------------


class TestSelfCheck:
    def test_head_lints_clean(self):
        run = lint_source_tree()
        assert run.report.parse_errors == []
        assert [f.render() for f in run.regressions] == []

    def test_every_registered_rule_has_a_firing_fixture(self):
        report = LintEngine().run(FIXTURES)
        fired = {f.rule_id for f in report.findings} | \
                {f.rule_id for f in report.suppressed}
        assert fired == set(RULE_REGISTRY)

    def test_rule_registry_is_complete(self):
        families = {spec.family for spec in RULE_REGISTRY.values()}
        assert families == {"taint", "determinism", "parallel-safety",
                            "durability", "cache-keys",
                            "exception-hygiene", "schema",
                            "dead-code", "pragma-hygiene",
                            "concurrency", "resource-lifecycle",
                            "units"}
