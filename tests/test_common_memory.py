"""Peak-RSS helper: sane values, monotonicity, child accounting."""

import subprocess
import sys

from repro.common.memory import peak_rss_bytes, peak_rss_mib, rss_supported


class TestPeakRss:
    def test_supported_on_posix(self):
        # the CI and dev platforms are all POSIX; the helper must work
        assert rss_supported()

    def test_bytes_positive_and_plausible(self):
        peak = peak_rss_bytes()
        assert peak is not None
        # a running CPython interpreter needs at least a few MiB and
        # (in a test process) far less than a terabyte
        assert 1 * 1024 * 1024 < peak < 1 << 40

    def test_mib_matches_bytes(self):
        mib = peak_rss_mib()
        by = peak_rss_bytes()
        assert mib is not None and by is not None
        # the peak can only grow between the two calls
        assert mib * 1024 * 1024 <= by + 1024 * 1024

    def test_monotone_nondecreasing(self):
        before = peak_rss_bytes()
        ballast = [bytes(1024) for _ in range(1024)]
        after = peak_rss_bytes()
        del ballast
        assert after >= before

    def test_self_only_excludes_children(self):
        own = peak_rss_bytes(include_children=False)
        both = peak_rss_bytes(include_children=True)
        assert own is not None and both is not None
        assert both >= own

    def test_children_accounted_after_join(self):
        # a waited-for child that allocates ~64 MiB must raise the
        # child high-water mark above that allocation
        script = "x = bytearray(64 * 1024 * 1024); print(len(x))"
        subprocess.run([sys.executable, "-c", script], check=True,
                       capture_output=True)
        both = peak_rss_bytes(include_children=True)
        assert both is not None
        assert both >= 64 * 1024 * 1024
