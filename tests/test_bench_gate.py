"""Regression-gate arithmetic: the lint lane and machine calibration.

The gate compares committed BENCH_*.json baselines against fresh
runs; these tests pin the two behaviours PRs keep relying on — the
lint lane's (mode, workers) point matching, and the calibration
stamp that normalises throughput across machines of different speed
(with a raw fallback against stamp-less baselines).
"""

from repro.common.calibrate import calibration_score
from repro.scale.bench import (
    GATE_METRICS,
    compare_runs,
    measure_lint_point,
)


def _lint_run(mps, calibration=None):
    payload = {"bench": "lint",
               "points": [{"mode": "cold", "workers": 1,
                           "modules": 155, "modules_per_s": mps}]}
    if calibration is not None:
        payload["calibration"] = calibration
    return payload


class TestCompareRuns:
    def test_lint_suite_is_gated(self):
        metric, key_fields = GATE_METRICS["lint"]
        assert metric == "modules_per_s"
        assert key_fields == ("mode", "workers")

    def test_raw_regression_detected(self):
        regressions, _ = compare_runs(_lint_run(80.0), _lint_run(50.0))
        assert len(regressions) == 1

    def test_raw_within_threshold_passes(self):
        regressions, _ = compare_runs(_lint_run(80.0), _lint_run(70.0))
        assert regressions == []

    def test_calibration_normalises_slower_machine(self):
        # half-speed machine, half throughput: hardware, not code —
        # but the same drop WITHOUT stamps is flagged raw.
        prev = _lint_run(80.0, calibration=2000.0)
        cur = _lint_run(40.0, calibration=1000.0)
        regressions, notes = compare_runs(prev, cur)
        assert regressions == []
        assert any("normalised" in n for n in notes)
        assert compare_runs(_lint_run(80.0), _lint_run(40.0))[0]

    def test_calibration_does_not_hide_code_regressions(self):
        prev = _lint_run(80.0, calibration=1500.0)
        cur = _lint_run(40.0, calibration=1500.0)
        assert len(compare_runs(prev, cur)[0]) == 1

    def test_stampless_baseline_compares_raw(self):
        prev = _lint_run(80.0)
        cur = _lint_run(76.0, calibration=1000.0)
        regressions, notes = compare_runs(prev, cur)
        assert regressions == []
        assert not any("normalised" in n for n in notes)


class TestCalibration:
    def test_score_is_positive_and_repeatable(self):
        first = calibration_score()
        second = calibration_score()
        assert first > 0 and second > 0
        # same machine, same ballpark (best-of-three absorbs blips)
        assert abs(first - second) / max(first, second) < 0.5


class TestLintPoint:
    def test_cold_point_shape(self):
        point = measure_lint_point("cold", workers=1)
        assert point["suite"] == "lint"
        assert point["mode"] == "cold"
        assert point["workers"] == 1
        assert point["modules"] > 100
        assert point["parse_errors"] == 0
        assert point["modules_per_s"] > 0
