"""Fixpoint kind & unit inference over the project call graph.

Runs the abstract domain of :mod:`repro.lint.units` — quantity units
(XMR / coin / USD / usd_per_coin / hs / hashes / shares / date) and
identifier kinds (sha256 / wallet / domain / campaign-id / pool-url /
email) — over the shared :class:`~repro.lint.interproc.
ResolvedProgram` substrate.  Per function the engine evaluates the
:class:`~repro.lint.facts.ValueFact` sketches (bind RHS, arithmetic
events, sink writes, key flows, returns) to a name -> state map, and
summarises the return value's unit/kind plus the parameter positions
that flow into it, iterating caller-ward to fixpoint exactly like the
taint engine — so a coin amount laundered through two helper calls
still reaches a ``usd`` slot with its coin unit intact.

Findings (reported by :class:`repro.lint.rules.units.UnitKindRule`):

* **UNIT001** — mixed-unit arithmetic/comparison (``XMR + USD``).
* **UNIT002** — a coin-denominated value written into a USD-labelled
  field or record slot (or vice versa) without a conversion witness —
  a value that went through ``rates.to_usd`` or a
  ``* AVERAGE_XMR_USD`` cast *is* USD, so a surviving coin unit means
  the conversion was skipped.
* **UNIT003** — rate-vs-cumulative confusion: an ``hs`` hashrate
  meeting ``hashes``/``shares``/``total_paid``-style cumulative
  quantities in additive arithmetic or a seeded sink.
* **KIND001** — equality/membership between different identifier
  kinds (a sha256 compared against a wallet can never match).
* **KIND002** — a wrong-kind key flowing into a kind-seeded mapping
  (the serve ``IntelIndex`` tables, the aggregation identifier maps).
"""

from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.facts import (
    CallFact,
    FunctionFact,
    ValueFact,
)
from repro.lint.interproc import FnKey, ResolvedProgram
from repro.lint.units import (
    ATTR_KINDS,
    ATTR_UNITS,
    KEY_KINDS,
    MONEY_UNITS,
    NAME_UNITS,
    PARAM_POSITIONS,
    PARAM_SEEDS,
    RETURN_SEEDS,
    SLOT_KINDS,
    SLOT_UNITS,
    WORK_UNITS,
    arith_result,
    join_units,
    kinds_compatible,
    mix_rule,
    units_compatible,
)

#: builtins that return (one of) their arguments unchanged, unit-wise.
_PASSTHROUGH_CALLS = frozenset({
    "sum", "min", "max", "abs", "round", "float", "int", "sorted",
})


@dataclass(frozen=True)
class UnitState:
    """One value's abstract state: unit + kind + provenance."""

    unit: Optional[str] = None
    kind: Optional[str] = None
    #: human description of where the unit/kind came from.
    witness: Optional[str] = None
    #: parameter positions whose state flows into this value.
    params: FrozenSet[int] = frozenset()

    def join(self, other: "UnitState") -> "UnitState":
        """Control-flow join: agreeing facts survive, conflicts drop."""
        if other == _BOTTOM:
            return self
        kind = self.kind if other.kind in (None, self.kind) \
            else (other.kind if self.kind is None else None)
        return UnitState(
            unit=join_units(self.unit, other.unit), kind=kind,
            witness=self.witness if self.witness is not None
            else other.witness,
            params=self.params | other.params)


_BOTTOM = UnitState()


@dataclass
class UnitSummary:
    """Fixpoint state for one function: its return value."""

    ret: UnitState = _BOTTOM

    def same(self, other: "UnitSummary") -> bool:
        """Fixpoint equality (witness text is display-only)."""
        return (self.ret.unit, self.ret.kind, self.ret.params) == \
            (other.ret.unit, other.ret.kind, other.ret.params)


@dataclass(frozen=True)
class UnitFinding:
    """A project-level unit/kind violation, pre-Finding."""

    rule_id: str
    module: str
    line: int
    col: int
    message: str
    symbol: str


def sink_rule(want: str, got: str) -> str:
    """Which rule a unit mismatch at a seeded sink violates."""
    if want in MONEY_UNITS and got in MONEY_UNITS:
        return "UNIT002"
    if want in WORK_UNITS and got in WORK_UNITS:
        return "UNIT003"
    return "UNIT001"


class UnitFlowEngine:
    """Whole-program unit/kind propagation and checking."""

    def __init__(self, program: ResolvedProgram) -> None:
        self.program = program
        self.summaries: Dict[FnKey, UnitSummary] = {
            key: UnitSummary() for key in program.facts}

    # -- the fixpoint -------------------------------------------------------

    def solve(self, max_rounds: int = 50) -> None:
        """Iterate to fixpoint over reverse caller edges."""
        changed: List[FnKey] = []
        for key in self.program.facts:
            new = self._evaluate(key, report=None)
            if not new.same(self.summaries[key]):
                self.summaries[key] = new
                changed.append(key)
        queue = deque(changed)
        queued = set(changed)
        budget = max_rounds * max(1, len(self.program.facts))
        while queue and budget > 0:
            key = queue.popleft()
            queued.discard(key)
            for caller in self.program.callers(key):
                budget -= 1
                new = self._evaluate(caller, report=None)
                if not new.same(self.summaries[caller]):
                    self.summaries[caller] = new
                    if caller not in queued:
                        queue.append(caller)
                        queued.add(caller)

    def report(self) -> List[UnitFinding]:
        """One checking pass over the solved program."""
        findings: List[UnitFinding] = []
        for key in self.program.facts:
            self._evaluate(key, report=findings)
        findings.sort(key=lambda f: (f.module, f.line, f.col,
                                     f.rule_id, f.message))
        return findings

    # -- per-function evaluation --------------------------------------------

    def _evaluate(self, key: FnKey,
                  report: Optional[List[UnitFinding]]) -> UnitSummary:
        summary, fact = self.program.facts[key]
        names: Dict[str, UnitState] = {}
        qual_last = fact.qualname.split(".")[-1]
        seeds = PARAM_SEEDS.get(qual_last, {})
        for i, param in enumerate(fact.params):
            state = UnitState(params=frozenset({i}))
            if param in seeds:
                unit, kind = seeds[param]
                state = replace(
                    state, unit=unit, kind=kind,
                    witness=f"seeded parameter '{param}' of "
                            f"{qual_last}()")
            names[param] = state

        def emit(rule_id: str, line: int, col: int,
                 message: str) -> None:
            if report is not None:
                report.append(UnitFinding(
                    rule_id=rule_id, module=summary.dotted,
                    line=line, col=max(1, col), message=message,
                    symbol=fact.qualname))

        def eval_value(vf: Optional[ValueFact],
                       checking: bool = False) -> UnitState:
            if vf is None:
                return _BOTTOM
            form = vf.form
            if form == "num":
                return UnitState(unit="num")
            if form == "name":
                state = names.get(vf.name, _BOTTOM)
                if state == _BOTTOM and vf.name in NAME_UNITS:
                    return UnitState(
                        unit=NAME_UNITS[vf.name],
                        witness=f"constant {vf.name}")
                return state
            if form == "attr":
                unit = ATTR_UNITS.get(vf.attr) or \
                    NAME_UNITS.get(vf.attr)
                kind = ATTR_KINDS.get(vf.attr)
                if unit is None and kind is None:
                    return _BOTTOM
                return UnitState(
                    unit=unit, kind=kind,
                    witness=f"'.{vf.attr}' read at line {vf.line}")
            if form == "key":
                unit = SLOT_UNITS.get(vf.attr)
                kind = SLOT_KINDS.get(vf.attr)
                if unit is None and kind is None:
                    return _BOTTOM
                return UnitState(
                    unit=unit, kind=kind,
                    witness=f"['{vf.attr}'] read at line {vf.line}")
            if form == "call":
                return eval_call(vf, checking)
            if form == "binop":
                left = eval_value(vf.left, checking)
                right = eval_value(vf.right, checking)
                if checking and vf.op in ("+", "-", "%"):
                    rule = mix_rule(left.unit, right.unit)
                    if rule is not None:
                        emit(rule, vf.line, 1, _mix_message(
                            rule, vf.op, left, right))
                unit = arith_result(vf.op, left.unit, right.unit)
                return UnitState(
                    unit=unit,
                    witness=(left.witness or right.witness
                             if unit is not None else None),
                    params=left.params | right.params)
            if form == "compare":
                left = eval_value(vf.left, checking)
                right = eval_value(vf.right, checking)
                if checking:
                    self._check_compare(vf, left, right, emit)
                return UnitState(unit="num")
            if form == "merge":
                return eval_value(vf.left, checking).join(
                    eval_value(vf.right, checking))
            if form == "elt":
                return eval_value(vf.left, checking)
            return _BOTTOM  # "const" / "opaque"

        def eval_call(vf: ValueFact, checking: bool) -> UnitState:
            last = (vf.name or "").split(".")[-1]
            call = (fact.calls[vf.call]
                    if vf.call is not None
                    and vf.call < len(fact.calls) else None)
            if last in _PASSTHROUGH_CALLS:
                state = _BOTTOM
                if call is not None:
                    for arg in call.args:
                        state = state.join(
                            eval_value(arg.value, checking))
                return state
            if last in RETURN_SEEDS:
                unit, kind = RETURN_SEEDS[last]
                return UnitState(
                    unit=unit, kind=kind,
                    witness=f"{last}() at line {vf.line}")
            if call is None:
                return _BOTTOM
            res = self.program.resolve(key, vf.call)
            if res is None or res.kind != "function":
                return _BOTTOM
            target_key = (res.module, res.qualname)
            target = self.summaries.get(target_key)
            if target is None or target_key not in self.program.facts:
                return _BOTTOM
            ret = target.ret
            state = UnitState(
                unit=ret.unit, kind=ret.kind,
                witness=(f"{res.origin}() returns "
                         f"{ret.unit or ret.kind} "
                         f"({ret.witness})"
                         if ret.unit or ret.kind else None))
            target_fact = self.program.facts[target_key][1]
            for j in sorted(ret.params):
                flowing = _arg_at(target_fact, j, call)
                if flowing is not None:
                    state = state.join(
                        eval_value(flowing, checking))
            return replace(state, params=frozenset())

        def _arg_at(target_fact: FunctionFact, j: int,
                    call: CallFact) -> Optional[ValueFact]:
            if j < len(call.args):
                return call.args[j].value
            if j < len(target_fact.params):
                wanted = target_fact.params[j]
                for kw, arg in call.kwargs:
                    if kw == wanted:
                        return arg.value
            return None

        # local binds to a small fixpoint (loops can cycle units).
        for _ in range(max(2, len(fact.unit_binds))):
            changed = False
            for name, sketch in fact.unit_binds:
                state = names.get(name, _BOTTOM).join(
                    eval_value(sketch))
                if state != names.get(name):
                    names[name] = state
                    changed = True
            if not changed:
                break

        if report is not None:
            for event in fact.arith_events:
                eval_value(event, checking=True)
            self._check_sinks(fact, eval_value, emit)
            self._check_key_flows(fact, eval_value, emit)
            self._check_calls(key, fact, eval_value, emit)

        ret = _BOTTOM
        for sketch in fact.ret_values:
            ret = ret.join(eval_value(sketch))
        return UnitSummary(ret=ret)

    # -- the checks ---------------------------------------------------------

    def _check_compare(self, vf, left: UnitState, right: UnitState,
                       emit) -> None:
        if vf.op == "in":
            base = _mapping_name(vf.right)
            if base is not None:
                expected = KEY_KINDS[base]
                if left.kind is not None and \
                        not kinds_compatible(left.kind, expected):
                    emit("KIND002", vf.line, 1,
                         f"{left.kind}-kind key tested against "
                         f"'{base}' (keys are {expected}-kind) — "
                         f"the membership can never hit "
                         f"({left.witness})")
                return
        if vf.op in ("==", "!=", "in"):
            if not kinds_compatible(left.kind, right.kind):
                emit("KIND001", vf.line, 1,
                     f"cross-kind {vf.op}: {left.kind} vs "
                     f"{right.kind} identifiers never match "
                     f"({left.witness}; {right.witness})")
        rule = mix_rule(left.unit, right.unit)
        if rule is not None and vf.op != "in":
            emit(rule, vf.line, 1,
                 _mix_message(rule, vf.op, left, right))

    def _check_sinks(self, fact: FunctionFact, eval_value,
                     emit) -> None:
        for sink in fact.sink_writes:
            want_unit = SLOT_UNITS.get(sink.field)
            want_kind = SLOT_KINDS.get(sink.field)
            got = eval_value(sink.value)
            if want_unit is not None and got.unit is not None and \
                    not units_compatible(want_unit, got.unit):
                rule = sink_rule(want_unit, got.unit)
                hint = (" — convert with rates.to_usd / "
                        "AVERAGE_XMR_USD first"
                        if rule == "UNIT002" else
                        " — multiply the rate by a time span first"
                        if rule == "UNIT003" else "")
                emit(rule, sink.line, sink.col,
                     f"{got.unit}-denominated value written to the "
                     f"{want_unit}-labelled '{sink.field}' "
                     f"{'slot' if sink.target != 'attr' else 'field'}"
                     f" without a conversion witness{hint} "
                     f"({got.witness})")
            if want_kind is not None and got.kind is not None and \
                    not kinds_compatible(want_kind, got.kind):
                emit("KIND001", sink.line, sink.col,
                     f"{got.kind}-kind identifier written to the "
                     f"{want_kind}-kind '{sink.field}' field "
                     f"({got.witness})")

    def _check_key_flows(self, fact: FunctionFact, eval_value,
                         emit) -> None:
        for flow in fact.key_flows:
            expected = KEY_KINDS.get(flow.base)
            if expected is None:
                continue
            got = eval_value(flow.key)
            if got.kind is not None and \
                    not kinds_compatible(got.kind, expected):
                emit("KIND002", flow.line, flow.col,
                     f"{got.kind}-kind key into '{flow.base}' "
                     f"(keys are {expected}-kind) — the lookup can "
                     f"never hit ({got.witness})")

    def _check_calls(self, key: FnKey, fact: FunctionFact,
                     eval_value, emit) -> None:
        """Seeded-parameter and constructor-field checks."""
        from repro.lint.contracts import RECORD_FIELD_CONTRACTS
        for ci, call in enumerate(fact.calls):
            last = (call.callee or "").split(".")[-1]
            res = self.program.resolve(key, ci)
            # seeded function parameters (to_usd's amount is coin).
            seeds = PARAM_SEEDS.get(last)
            if seeds is not None:
                self._check_param_seeds(last, call, seeds,
                                        eval_value, emit)
            # constructor keywords against the field contracts.
            cls_name = None
            if res is not None and res.kind == "class":
                cls_name = res.qualname.split(".")[-1]
            elif last in RECORD_FIELD_CONTRACTS:
                cls_name = last
            contract = RECORD_FIELD_CONTRACTS.get(cls_name or "")
            if not contract:
                continue
            for kw, arg in call.kwargs:
                declared = contract.get(kw or "")
                if declared is None:
                    continue
                want_unit, want_kind = declared
                got = eval_value(arg.value)
                if want_unit is not None and got.unit is not None \
                        and not units_compatible(want_unit,
                                                 got.unit):
                    rule = sink_rule(want_unit, got.unit)
                    emit(rule, call.line, call.col,
                         f"{got.unit}-denominated value passed as "
                         f"{cls_name}({kw}=...) which is "
                         f"{want_unit}-labelled ({got.witness})")
                if want_kind is not None and \
                        got.kind is not None and \
                        not kinds_compatible(want_kind, got.kind):
                    emit("KIND001", call.line, call.col,
                         f"{got.kind}-kind identifier passed as "
                         f"{cls_name}({kw}=...) which is "
                         f"{want_kind}-kind ({got.witness})")

    @staticmethod
    def _check_param_seeds(fn_name: str, call: CallFact, seeds,
                           eval_value, emit) -> None:
        for param, (want_unit, want_kind) in seeds.items():
            arg = None
            index = PARAM_POSITIONS.get((fn_name, param))
            if index is not None and index < len(call.args):
                arg = call.args[index].value
            else:
                for kw, kw_arg in call.kwargs:
                    if kw == param:
                        arg = kw_arg.value
                        break
            if arg is None:
                continue
            got = eval_value(arg)
            if want_unit is not None and got.unit is not None and \
                    not units_compatible(want_unit, got.unit):
                rule = sink_rule(want_unit, got.unit)
                emit(rule, call.line, call.col,
                     f"{got.unit}-denominated argument for "
                     f"'{param}' of {fn_name}() which is "
                     f"{want_unit}-seeded ({got.witness})")
            if want_kind is not None and got.kind is not None and \
                    not kinds_compatible(got.kind, want_kind):
                emit("KIND002", call.line, call.col,
                     f"{got.kind}-kind argument for '{param}' of "
                     f"{fn_name}() which is {want_kind}-kind "
                     f"({got.witness})")


def _mapping_name(vf: Optional[ValueFact]) -> Optional[str]:
    """KEY_KINDS name of a membership RHS sketch, or None."""
    if vf is None:
        return None
    if vf.form == "name" and vf.name in KEY_KINDS:
        return vf.name
    if vf.form == "attr" and vf.attr in KEY_KINDS:
        return vf.attr
    return None


def _mix_message(rule: str, op: str, left: "UnitState",
                 right: "UnitState") -> str:
    if rule == "UNIT003":
        return (f"rate-vs-cumulative mix: {left.unit} {op} "
                f"{right.unit} — multiply the rate by a time span "
                f"first ({left.witness}; {right.witness})")
    return (f"mixed-unit arithmetic: {left.unit} {op} {right.unit} "
            f"— convert before combining "
            f"({left.witness}; {right.witness})")


def run_unit_analysis(program: ResolvedProgram) -> List[UnitFinding]:
    """Solve the fixpoint and return every unit/kind violation."""
    engine = UnitFlowEngine(program)
    engine.solve()
    return engine.report()
