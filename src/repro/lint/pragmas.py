"""``# reprolint: disable=RULE`` pragma parsing.

Two forms, both comma-separable and accepting ``all``:

* ``# reprolint: disable=DET001`` — silences matching findings **on
  that physical line** (put it on the offending statement);
* ``# reprolint: disable-file=DET001`` — silences matching findings in
  the whole module (put it anywhere, conventionally near the top).

A trailing justification is allowed and encouraged::

    memo[key] = now()  # reprolint: disable=DET001,CKEY001 — clock is logged only

Rule lists stop at the first token that is not a rule ID, so the prose
never becomes a bogus rule name.  Pragmas are read with
:mod:`tokenize` so strings that merely *contain* the pragma text never
suppress anything.  Besides the suppression index, parsing records an
inventory of every pragma (line, scope, rules) so the engine can warn
about stale pragmas — suppressions that no longer match any finding.
"""

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: a single well-formed rule ID (or the ``all`` wildcard).
_RULE_TOKEN_RE = re.compile(r"^(all|[A-Z][A-Z0-9_]*\d{3})$")


@dataclass(frozen=True)
class PragmaEntry:
    """One pragma comment, as written: where, which scope, which rules."""

    line: int
    scope: str                  # "disable" | "disable-file"
    rules: Tuple[str, ...]      # normalised, in source order


@dataclass
class PragmaIndex:
    """Per-module pragma state: line-scoped and file-scoped disables."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)
    #: every pragma as written, for stale-suppression analysis.
    entries: List[PragmaEntry] = field(default_factory=list)

    def disabled(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is silenced for a finding on ``line``."""
        for pool in (self.file_wide, self.by_line.get(line, ())):
            if "all" in pool or rule_id in pool:
                return True
        return False


def _parse_rules(text: str) -> List[str]:
    """Normalised rule IDs from a comma-separated list.

    Each comma-separated part contributes its leading identifier
    token; parsing stops at the first part that is not a plain rule ID
    (or ``all``), so ``DET001,CKEY001 — clock is logged only`` yields
    exactly ``["DET001", "CKEY001"]``.
    """
    rules: List[str] = []
    for part in text.split(","):
        token = part.strip().split()[0] if part.strip() else ""
        token = token.lower() if token.lower() == "all" else token.upper()
        if not _RULE_TOKEN_RE.match(token):
            break
        if token not in rules:
            rules.append(token)
    return rules


def collect_pragmas(source: str) -> PragmaIndex:
    """All reprolint pragmas in ``source``, indexed by line."""
    index = PragmaIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            rules = _parse_rules(match.group("rules"))
            if not rules:
                continue
            scope = match.group("scope")
            line = token.start[0]
            index.entries.append(
                PragmaEntry(line=line, scope=scope, rules=tuple(rules)))
            if scope == "disable-file":
                index.file_wide.update(rules)
            else:
                index.by_line.setdefault(line, set()).update(rules)
    except tokenize.TokenError:
        pass  # a torn module still lints; the parse error is reported
    return index
