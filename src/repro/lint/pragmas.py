"""``# reprolint: disable=RULE`` pragma parsing.

Two forms, both comma-separable and accepting ``all``:

* ``# reprolint: disable=DET001`` — silences matching findings **on
  that physical line** (put it on the offending statement);
* ``# reprolint: disable-file=DET001`` — silences matching findings in
  the whole module (put it anywhere, conventionally near the top).

Pragmas are read with :mod:`tokenize` so strings that merely *contain*
the pragma text never suppress anything.
"""

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)")


@dataclass
class PragmaIndex:
    """Per-module pragma state: line-scoped and file-scoped disables."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def disabled(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is silenced for a finding on ``line``."""
        for pool in (self.file_wide, self.by_line.get(line, ())):
            if "all" in pool or rule_id in pool:
                return True
        return False


def _parse_rules(text: str) -> FrozenSet[str]:
    return frozenset(
        part.strip().lower() if part.strip().lower() == "all"
        else part.strip().upper()
        for part in text.split(",") if part.strip())


def collect_pragmas(source: str) -> PragmaIndex:
    """All reprolint pragmas in ``source``, indexed by line."""
    index = PragmaIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            rules = _parse_rules(match.group("rules"))
            if match.group("scope") == "disable-file":
                index.file_wide.update(rules)
            else:
                index.by_line.setdefault(
                    token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # a torn module still lints; the parse error is reported
    return index
