"""Seed tables and algebra for the domain kind & unit pass.

The paper's two load-bearing computations — per-payment XMR→USD
conversion (§III-D) and campaign aggregation over typed identifiers
(§III-E) — are both silently wrong if a coin amount skips conversion
or a lookup crosses identifier namespaces.  This module turns the
per-field declarations in :data:`repro.lint.contracts.
RECORD_FIELD_CONTRACTS` into the flat, attribute-name-keyed seed maps
the fact extractor and the whole-program pass consume, and defines the
tiny unit algebra the UNIT rules evaluate expressions under.

Units form flat dimension families rather than a lattice:

* money: ``XMR`` and the generic ``coin`` are compatible (their join
  is ``coin``); ``USD`` is its own dimension; ``usd_per_coin`` is the
  conversion rate between them.  ``coin * usd_per_coin -> USD`` is the
  *conversion witness* UNIT002 looks for.
* work: ``hs`` (a rate, H/s) vs the cumulative ``hashes`` and
  ``shares`` — mixing rate and cumulative is UNIT003's
  rate-vs-cumulative confusion.  Multiplying ``hs`` by a plain number
  deliberately yields *unknown*: a numeric factor may be a seconds
  span (``hashrate_hs * 86400`` legitimately produces hashes).
* time: ``date`` (simulated calendar dates).  ``date - date`` is a
  span, not a date, so subtraction demotes to unknown.

Kinds (``sha256``, ``wallet``, ``domain``, ``campaign-id``,
``pool-url``, ``email``) never combine; equality/membership across two
different kinds is KIND001, and a wrong-kind key into a seeded mapping
(:data:`repro.lint.contracts.MAPPING_KEY_KINDS`) is KIND002.
``wallet`` and ``email`` are deliberately compatible: the paper's
login identifiers mix wallet addresses and pool e-mail logins in one
namespace.

Because fact extraction filters its unit/kind events through these
tables, the summary cache keys on :func:`seed_fingerprint` — editing a
seed invalidates every cached module summary.
"""

import hashlib
from typing import Dict, Optional, Tuple

from repro.lint.contracts import (
    CONSTANT_UNITS,
    FUNCTION_PARAM_CONTRACTS,
    FUNCTION_RETURN_CONTRACTS,
    MAPPING_KEY_KINDS,
    RECORD_FIELD_CONTRACTS,
)

#: every declared quantity unit, for validation.
UNITS = frozenset({"XMR", "coin", "USD", "usd_per_coin",
                   "hs", "hashes", "shares", "date"})

#: every declared identifier kind.
KINDS = frozenset({"sha256", "wallet", "domain", "campaign-id",
                   "pool-url", "email"})

#: units measuring an amount of money (the UNIT001/UNIT002 family).
MONEY_UNITS = frozenset({"XMR", "coin", "USD", "usd_per_coin"})

#: units measuring mining work (the UNIT003 family).
WORK_UNITS = frozenset({"hs", "hashes", "shares"})


def _flatten() -> Tuple[Dict[str, str], Dict[str, str]]:
    """``attr/field name -> unit`` and ``-> kind`` over every class.

    Field names are matched bare (``record.total_paid`` and
    ``row["total_paid"]`` alike), mirroring the TAINTED_ATTRIBUTES
    precedent; the declarations must therefore agree wherever a name
    repeats across classes — checked here so contracts cannot drift.
    """
    units: Dict[str, str] = {}
    kinds: Dict[str, str] = {}
    for cls, fields in sorted(RECORD_FIELD_CONTRACTS.items()):
        for name, (unit, kind) in fields.items():
            if unit is not None:
                if units.setdefault(name, unit) != unit:
                    raise ValueError(
                        f"conflicting unit for field '{name}' "
                        f"({units[name]} vs {unit} in {cls})")
                if unit not in UNITS:
                    raise ValueError(f"unknown unit {unit!r} on "
                                     f"{cls}.{name}")
            if kind is not None:
                if kinds.setdefault(name, kind) != kind:
                    raise ValueError(
                        f"conflicting kind for field '{name}' "
                        f"({kinds[name]} vs {kind} in {cls})")
                if kind not in KINDS:
                    raise ValueError(f"unknown kind {kind!r} on "
                                     f"{cls}.{name}")
    return units, kinds


#: bare field/attr/key name -> quantity unit ("total_paid" -> "coin").
ATTR_UNITS, ATTR_KINDS = _flatten()

#: extra dict-slot names that carry a unit but are not dataclass
#: fields (serve payloads, exhibit accumulator rows).
SLOT_UNITS: Dict[str, str] = {
    "total_xmr": "XMR",
    "total_usd": "USD",
    "xmr": "XMR",
    "usd": "USD",
}
SLOT_UNITS.update(ATTR_UNITS)

#: bare name -> kind for dict slots ("sha256" key in a payload row).
SLOT_KINDS: Dict[str, str] = dict(ATTR_KINDS)

#: re-exports so the pass has one import surface.
KEY_KINDS = MAPPING_KEY_KINDS
PARAM_SEEDS = FUNCTION_PARAM_CONTRACTS
RETURN_SEEDS = FUNCTION_RETURN_CONTRACTS
NAME_UNITS = CONSTANT_UNITS

#: positional index of each seeded parameter (after self/cls), so the
#: call-site check can match positional arguments without resolving
#: the callee.  A seeded param missing here is matched by keyword only.
PARAM_POSITIONS: Dict[Tuple[str, str], int] = {
    ("to_usd", "amount"): 0,
    ("hash_intel", "sha256"): 0,
    ("wallet_intel", "identifier"): 0,
    ("campaign_intel", "campaign_id"): 0,
    ("domain_intel", "name"): 0,
    ("api_wallet_stats", "identifier"): 0,
    ("credit_mining_day", "hashrate_hs"): 2,
}


def seed_fingerprint() -> str:
    """Stable digest of every seed table (cache invalidation key)."""
    payload = repr((
        sorted(ATTR_UNITS.items()), sorted(ATTR_KINDS.items()),
        sorted(SLOT_UNITS.items()), sorted(SLOT_KINDS.items()),
        sorted(KEY_KINDS.items()), sorted(NAME_UNITS.items()),
        sorted((k, sorted(v.items())) for k, v in PARAM_SEEDS.items()),
        sorted(RETURN_SEEDS.items()),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------
# The unit algebra
# --------------------------------------------------------------------------


def units_compatible(a: Optional[str], b: Optional[str]) -> bool:
    """Whether two units may meet in +/-/comparison."""
    if a is None or b is None or a == b:
        return True
    if "num" in (a, b):
        return True
    if {a, b} <= {"XMR", "coin"}:
        return True
    return False


def join_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Unit of ``a + b`` (compatible operands; None is unknown).

    An unknown or plain-number side takes the known side's unit —
    optimistic, which is what lets a laundered remainder keep its coin
    unit through ``max(0.0, total - covered)``.
    """
    if a is None or a == "num":
        return b
    if b is None or b == "num":
        return a
    if a == b:
        return a
    if {a, b} == {"XMR", "coin"}:
        return "coin"
    return None


def kinds_compatible(a: Optional[str], b: Optional[str]) -> bool:
    """Whether two identifier kinds may meet in ==/in/joins."""
    if a is None or b is None or a == b:
        return True
    if {a, b} == {"wallet", "email"}:
        return True  # the paper's shared login-identifier namespace
    return False


#: units where a plain-number factor is (or may be) a dimension
#: change rather than a scale: rates times a time span, dates plus a
#: day count.  Multiplying/dividing these by "num" demotes to unknown.
_SPAN_SENSITIVE = frozenset({"hs", "hashes", "shares", "date"})


def multiply_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Unit of ``a * b`` (symmetric)."""
    if a == "num" and b == "num":
        return "num"
    for left, right in ((a, b), (b, a)):
        if left in ("XMR", "coin") and right == "usd_per_coin":
            return "USD"  # the conversion witness
        if right == "num":
            # a plain number is a scale factor for money, but an
            # unknown-span factor for rates (hs * 86400 -> hashes).
            return None if left in _SPAN_SENSITIVE else left
    return None


def divide_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Unit of ``a / b``."""
    if a == "USD" and b in ("XMR", "coin"):
        return "usd_per_coin"
    if a == "USD" and b == "usd_per_coin":
        return "coin"
    if a is not None and a == b:
        return "num"
    if b == "num":
        return None if a in _SPAN_SENSITIVE else a
    return None


def arith_result(op: str, a: Optional[str],
                 b: Optional[str]) -> Optional[str]:
    """Resulting unit of one arithmetic step (no violation checking).

    ``date`` never survives additive arithmetic: date-date is a span
    and date+number is calendar stepping, neither of which the table
    models.
    """
    if op == "*":
        return multiply_units(a, b)
    if op in ("/", "//"):
        return divide_units(a, b)
    if op in ("+", "-", "%"):
        if a == "date" or b == "date":
            return None
        return join_units(a, b)
    return None


def mix_rule(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Which rule (if any) an additive/comparison mix violates.

    Returns "UNIT003" for a rate-vs-cumulative mix inside the work
    family, "UNIT001" for any other incompatible pair, None when the
    operands may meet.
    """
    if a in (None, "num") or b in (None, "num"):
        return None
    if units_compatible(a, b):
        return None
    if a in WORK_UNITS and b in WORK_UNITS:
        return "UNIT003"
    return "UNIT001"
