"""Fixpoint interprocedural taint over the project call graph.

The lattice is the two-point enrichment lattice (untainted <
tainted) with field sensitivity supplied at fact-extraction time:
sources are reads of enrichment-owned attributes/keys and calls that
resolve into an enrichment module (:data:`TAINTED_MODULES`).  The
engine computes, per function, a summary

* ``ret_taint`` — the return value carries taint from a source inside
  the function (with a human witness chain),
* ``ret_params`` — parameter positions whose taint flows to the
  return value,
* ``sink_params`` — parameter positions that flow (transitively) into
  a :class:`CheckpointStore` write API,

iterating to fixpoint so taint crosses arbitrary call depth —
including ``pool.submit(f, ...)`` sites, which fact extraction rewrote
into direct calls to ``f``.  Analysis is flow-insensitive over merged
local bindings: one assignment of a tainted value marks the name for
the whole function.  Deliberate precision gap: *mutation* of an
argument does not taint the caller's binding (the enrichment stage
annotates campaigns in place by design; tracking mutation would flag
every post-enrichment snapshot).

Findings derived from the summaries:

* **TAINT002** (upgraded) — a grouping-module call returns an
  enrichment-tainted value (the helper-laundering case the one-hop
  rule missed);
* **TAINT003** — a tainted value reaches a checkpoint sink through
  any call path.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.callgraph import ProjectIndex, Resolution
from repro.lint.facts import (
    ArgFact,
    BindFact,
    CallFact,
    FunctionFact,
    ModuleSummary,
)

FnKey = Tuple[str, str]  # (module dotted, qualname)


@dataclass(frozen=True)
class TaintState:
    """One value's abstract state: witness (if tainted) + param deps."""

    witness: Optional[str] = None
    params: FrozenSet[int] = frozenset()

    @property
    def tainted(self) -> bool:
        return self.witness is not None

    def merge(self, other: "TaintState") -> "TaintState":
        """Lattice join: keep the first witness, union param deps."""
        if other.witness is None and not other.params:
            return self
        return TaintState(
            witness=self.witness if self.witness is not None
            else other.witness,
            params=self.params | other.params)


_BOTTOM = TaintState()


@dataclass
class FnSummary:
    """Fixpoint state for one function."""

    ret_taint: Optional[str] = None
    ret_params: FrozenSet[int] = frozenset()
    #: param position -> description of the sink it reaches
    sink_params: Dict[int, str] = field(default_factory=dict)

    def same(self, other: "FnSummary") -> bool:
        """Fixpoint equality (witness text is display-only)."""
        return (self.ret_taint is None) == (other.ret_taint is None) \
            and self.ret_params == other.ret_params \
            and set(self.sink_params) == set(other.sink_params)


@dataclass(frozen=True)
class TaintFinding:
    """A project-level taint violation, pre-Finding."""

    rule_id: str
    module: str          # ModuleSummary.dotted
    line: int
    col: int
    message: str
    symbol: str


class TaintEngine:
    """Runs the whole-program taint fixpoint and reports violations."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.summaries: Dict[FnKey, FnSummary] = {
            (s.dotted, q): FnSummary()
            for s in index.summaries for q in s.functions}
        self._resolutions: Dict[Tuple[str, str, int],
                                Optional[Resolution]] = {}

    # -- call-site resolution (memoised) -----------------------------------

    def _resolve(self, summary: ModuleSummary, fact: FunctionFact,
                 call_idx: int) -> Optional[Resolution]:
        key = (summary.dotted, fact.qualname, call_idx)
        if key not in self._resolutions:
            self._resolutions[key] = self.index.resolve_call(
                fact.calls[call_idx], fact, summary)
        return self._resolutions[key]

    # -- the fixpoint -------------------------------------------------------

    def solve(self, max_rounds: int = 50) -> None:
        """Iterate per-function evaluation until summaries stabilise.

        One full round evaluates every function (memoising every
        call-site resolution as a side effect); after that a worklist
        re-evaluates only the *callers* of functions whose summary
        changed, so the cost of reaching the fixpoint scales with the
        depth of actual taint chains, not with rounds × program size.
        """
        facts: Dict[FnKey, Tuple[ModuleSummary, FunctionFact]] = {}
        for summary in self.index.summaries:
            for qualname in sorted(summary.functions):
                facts[(summary.dotted, qualname)] = \
                    (summary, summary.functions[qualname])
        changed: List[FnKey] = []
        for key, (summary, fact) in facts.items():
            new = self._evaluate(summary, fact, report=None)
            if not new.same(self.summaries[key]):
                self.summaries[key] = new
                changed.append(key)
        # reverse edges from the (now complete) resolution memo:
        # callee -> the functions that resolve a call to it.
        callers: Dict[FnKey, Set[FnKey]] = {}
        for (mod, qual, _ci), res in self._resolutions.items():
            if res is not None and res.kind == "function":
                callers.setdefault(
                    (res.module, res.qualname), set()).add((mod, qual))
        queue = deque(changed)
        queued = set(changed)
        budget = max_rounds * len(facts)
        while queue and budget > 0:
            key = queue.popleft()
            queued.discard(key)
            for caller in sorted(callers.get(key, ())):
                budget -= 1
                summary, fact = facts[caller]
                new = self._evaluate(summary, fact, report=None)
                if not new.same(self.summaries[caller]):
                    self.summaries[caller] = new
                    if caller not in queued:
                        queue.append(caller)
                        queued.add(caller)

    def report(self) -> List[TaintFinding]:
        """One reporting pass over the solved program."""
        findings: List[TaintFinding] = []
        for summary in self.index.summaries:
            for qualname in sorted(summary.functions):
                fact = summary.functions[qualname]
                self._evaluate(summary, fact, report=findings)
        findings.sort(key=lambda f: (f.module, f.line, f.col,
                                     f.rule_id, f.message))
        return findings

    # -- per-function abstract evaluation ----------------------------------

    def _evaluate(self, summary: ModuleSummary, fact: FunctionFact,
                  report: Optional[List[TaintFinding]]) -> FnSummary:
        names: Dict[str, TaintState] = {
            name: TaintState(params=frozenset({i}))
            for i, name in enumerate(fact.params)}
        call_cache: Dict[int, TaintState] = {}

        def state_of_name(name: str) -> TaintState:
            return names.get(name, _BOTTOM)

        def state_of_reads(reads) -> TaintState:
            state = _BOTTOM
            for name in sorted(reads):
                state = state.merge(state_of_name(name))
            return state

        def state_of_arg(arg: ArgFact,
                         depth: int = 0) -> TaintState:
            state = state_of_reads(arg.reads)
            if arg.direct is not None:
                state = state.merge(TaintState(witness=arg.direct))
            for ci in arg.calls:
                state = state.merge(call_result(ci, depth + 1))
            return state

        def call_result(ci: int, depth: int = 0) -> TaintState:
            if depth > len(fact.calls) + 2:
                return _BOTTOM  # pathological nesting; stay sound-ish
            if ci in call_cache:
                return call_cache[ci]
            call_cache[ci] = _BOTTOM  # cycle guard
            call = fact.calls[ci]
            res = self._resolve(summary, fact, ci)
            arg_states = [state_of_arg(a, depth) for a in call.args]
            kw_states = [(kw, state_of_arg(a, depth))
                         for kw, a in call.kwargs]
            base = state_of_reads(call.base_reads)
            if call.base_direct is not None:
                base = base.merge(TaintState(witness=call.base_direct))
            state = self._apply_call(
                call, res, arg_states, kw_states, base)
            call_cache[ci] = state
            return state

        # iterate local bindings to a (small) fixpoint: loops can
        # thread taint through cyclic local dependencies.
        for _ in range(max(2, len(fact.binds))):
            changed = False
            for name in sorted(fact.binds):
                bind = fact.binds[name]
                state = state_of_reads(bind.reads)
                if bind.direct is not None:
                    state = state.merge(TaintState(witness=bind.direct))
                for ci in bind.calls:
                    state = state.merge(call_result(ci))
                merged = state_of_name(name).merge(state)
                if merged != names.get(name):
                    names[name] = merged
                    changed = True
            call_cache.clear()
            if not changed:
                break

        new = FnSummary()
        self._finish_calls(summary, fact, names, call_result,
                           state_of_arg, new, report)
        ret = state_of_reads(fact.ret.reads)
        if fact.ret.direct is not None:
            ret = ret.merge(TaintState(witness=fact.ret.direct))
        for ci in fact.ret.calls:
            ret = ret.merge(call_result(ci))
        new.ret_taint = ret.witness
        new.ret_params = ret.params
        return new

    def _apply_call(self, call: CallFact, res: Optional[Resolution],
                    arg_states: List[TaintState],
                    kw_states: List[Tuple[Optional[str], TaintState]],
                    base: TaintState) -> TaintState:
        if res is not None and res.kind == "tainted":
            params = base.params
            for state in arg_states:
                params = params | state.params
            return TaintState(
                witness=f"call into enrichment module "
                f"'{res.origin}' (line {call.line})",
                params=params)
        if res is not None and res.kind == "function":
            target = self.summaries.get((res.module, res.qualname))
            target_fact = self.index.by_dotted[
                res.module].functions[res.qualname]
            state = base  # method results may carry their receiver
            if target is None:
                return state
            if target.ret_taint is not None:
                state = state.merge(TaintState(
                    witness=f"{res.origin}() returns a tainted value "
                    f"({target.ret_taint})"))
            for j in target.ret_params:
                flowing = self._arg_at(target_fact, j, arg_states,
                                       kw_states)
                if flowing is not None:
                    state = state.merge(flowing)
            return state
        # unresolved call (or plain constructor): conservative
        # pass-through of everything flowing in.
        state = base
        for other in arg_states:
            state = state.merge(other)
        for _, other in kw_states:
            state = state.merge(other)
        return state

    @staticmethod
    def _arg_at(target_fact: FunctionFact, j: int,
                arg_states: List[TaintState],
                kw_states: List[Tuple[Optional[str], TaintState]],
                ) -> Optional[TaintState]:
        if j < len(arg_states):
            return arg_states[j]
        if j < len(target_fact.params):
            wanted = target_fact.params[j]
            for kw, state in kw_states:
                if kw == wanted:
                    return state
        return None

    def _finish_calls(self, summary: ModuleSummary, fact: FunctionFact,
                      names: Dict[str, TaintState],
                      call_result: Callable[[int], TaintState],
                      state_of_arg: Callable[[ArgFact], TaintState],
                      new: FnSummary,
                      report: Optional[List[TaintFinding]]) -> None:
        """Sink propagation + (on the reporting pass) findings."""
        for ci, call in enumerate(fact.calls):
            res = self._resolve(summary, fact, ci)
            arg_states = [state_of_arg(a) for a in call.args]
            kw_states = [(kw, state_of_arg(a))
                         for kw, a in call.kwargs]
            if call.is_sink:
                flowing = _BOTTOM
                for state in arg_states:
                    flowing = flowing.merge(state)
                for _, state in kw_states:
                    flowing = flowing.merge(state)
                where = (f"checkpoint sink "
                         f"'{(call.callee or '?').split('.')[-1]}()' "
                         f"at {summary.relpath}:{call.line}")
                for j in flowing.params:
                    new.sink_params.setdefault(j, where)
                if flowing.tainted and report is not None:
                    report.append(TaintFinding(
                        rule_id="TAINT003", module=summary.dotted,
                        line=call.line, col=call.col,
                        message=f"enrichment-tainted value reaches "
                        f"{where.split(' at ')[0]} — checkpoints must "
                        f"be pure functions of the corpus "
                        f"(source: {flowing.witness})",
                        symbol=fact.qualname))
            if res is not None and res.kind == "function":
                target = self.summaries.get((res.module, res.qualname))
                target_fact = self.index.by_dotted[
                    res.module].functions[res.qualname]
                if target is not None and target.sink_params:
                    for j, sink_desc in sorted(
                            target.sink_params.items()):
                        flowing = self._arg_at(
                            target_fact, j, arg_states, kw_states)
                        if flowing is None:
                            continue
                        for p in flowing.params:
                            new.sink_params.setdefault(
                                p, sink_desc)
                        if flowing.tainted and report is not None:
                            report.append(TaintFinding(
                                rule_id="TAINT003",
                                module=summary.dotted,
                                line=call.line, col=call.col,
                                message=f"enrichment-tainted value "
                                f"flows through {res.origin}() into "
                                f"the {sink_desc} "
                                f"(source: {flowing.witness})",
                                symbol=fact.qualname))
                if summary.is_grouping and report is not None and \
                        target is not None and \
                        target.ret_taint is not None:
                    report.append(TaintFinding(
                        rule_id="TAINT002", module=summary.dotted,
                        line=call.line, col=call.col,
                        message=f"call to {res.origin}() returns an "
                        f"enrichment-tainted value inside a grouping "
                        f"module ({target.ret_taint}) — enrichment "
                        f"must stay informative, never a grouping "
                        f"edge (paper §III-E)",
                        symbol=fact.qualname))


def run_taint_analysis(index: ProjectIndex) -> List[TaintFinding]:
    """Solve the fixpoint and return every project-level violation."""
    engine = TaintEngine(index)
    engine.solve()
    return engine.report()


# --------------------------------------------------------------------------
# Shared resolved-call-graph substrate for the reachability passes
# --------------------------------------------------------------------------


class ResolvedProgram:
    """Memoised call-site resolutions + caller edges over one index.

    The concurrency (FORK/ASYNC/THR) and resource-lifecycle (RES)
    passes all need the same three things the taint engine builds
    privately: a flat ``FnKey -> (summary, fact)`` map, a memo of
    per-call-site :class:`Resolution` results, and reverse caller
    edges for worklist propagation.  This class extracts that
    substrate so one set of resolutions feeds every pass (the 2.5s
    full-tree budget rules out re-resolving the tree per rule) and
    adds the one lookup taint never needed: constructor calls
    (``kind == "class"``) mapped onto the class's ``__init__`` so
    thread spawns and resource acquisitions inside constructors
    propagate to the instantiation site.
    """

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.facts: Dict[FnKey, Tuple[ModuleSummary, FunctionFact]] = {}
        for summary in index.summaries:
            for qualname in sorted(summary.functions):
                self.facts[(summary.dotted, qualname)] = \
                    (summary, summary.functions[qualname])
        self._resolutions: Dict[Tuple[str, str, int],
                                Optional[Resolution]] = {}
        self._edges: Dict[FnKey,
                          Tuple[Tuple[int, int, FnKey], ...]] = {}
        self._callers: Optional[Dict[FnKey, Tuple[FnKey, ...]]] = None

    def resolve(self, key: FnKey, call_idx: int) -> Optional[Resolution]:
        """The (memoised) resolution of one call site."""
        memo_key = (key[0], key[1], call_idx)
        if memo_key not in self._resolutions:
            summary, fact = self.facts[key]
            self._resolutions[memo_key] = self.index.resolve_call(
                fact.calls[call_idx], fact, summary)
        return self._resolutions[memo_key]

    def callee_key(self, res: Optional[Resolution]) -> Optional[FnKey]:
        """FnKey a resolution lands on: functions directly,
        constructor calls on the class's ``__init__``."""
        if res is None:
            return None
        if res.kind == "function":
            key = (res.module, res.qualname)
            return key if key in self.facts else None
        if res.kind == "class":
            key = (res.module, f"{res.qualname}.__init__")
            return key if key in self.facts else None
        return None

    def edges(self, key: FnKey) -> Tuple[Tuple[int, int, FnKey], ...]:
        """``(call index, line, callee FnKey)`` for every resolved,
        in-project call inside ``key`` (memoised)."""
        cached = self._edges.get(key)
        if cached is not None:
            return cached
        _, fact = self.facts[key]
        out: List[Tuple[int, int, FnKey]] = []
        for ci, call in enumerate(fact.calls):
            callee = self.callee_key(self.resolve(key, ci))
            if callee is not None:
                out.append((ci, call.line, callee))
        result = tuple(out)
        self._edges[key] = result
        return result

    def callers(self, key: FnKey) -> Tuple[FnKey, ...]:
        """Reverse edges (built lazily over the *whole* program)."""
        if self._callers is None:
            callers: Dict[FnKey, Set[FnKey]] = {}
            for caller in self.facts:
                for _ci, _line, callee in self.edges(caller):
                    callers.setdefault(callee, set()).add(caller)
            self._callers = {k: tuple(sorted(v))
                             for k, v in callers.items()}
        return self._callers.get(key, ())


def resolved_program(index: ProjectIndex) -> ResolvedProgram:
    """One shared :class:`ResolvedProgram` per index.

    The concurrency and resource rules run back to back inside one
    lint invocation; caching the program on the index keeps the
    (expensive) whole-tree resolution pass single-shot.
    """
    program = getattr(index, "_resolved_program", None)
    if program is None or program.index is not index:
        program = ResolvedProgram(index)
        index._resolved_program = program
    return program
