"""Per-module symbol tables and the lightweight dataflow layer.

reprolint parses each module exactly once; this module turns the AST
into the lookup structures every rule shares — import aliases, the
module-level definition table — plus small intra-function dataflow
helpers (single-assignment expansion of local names) that let rules
answer questions like "which *parameters* does this cache key actually
depend on" without a full abstract interpreter.
"""

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.lint.pragmas import PragmaIndex, collect_pragmas

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one parsed module."""

    path: Path
    relpath: str                       # posix-style, relative to root
    parts: Tuple[str, ...]             # directory parts + module stem
    tree: ast.Module
    source: str
    pragmas: PragmaIndex
    #: qualified names of every imported module ("repro.core.enrichment")
    imported_modules: Set[str] = field(default_factory=set)
    #: local binding -> qualified origin ("nx" -> "networkx",
    #: "record_attachments" -> "repro.core.aggregation.record_attachments")
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: module-level function definitions by name
    module_functions: Dict[str, FunctionNode] = field(default_factory=dict)
    #: module-level class definitions by name
    module_classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: every module-level binding (functions, classes, assigns, imports)
    module_names: Set[str] = field(default_factory=set)

    def in_directory(self, names: Set[str]) -> bool:
        """Whether any path segment (or the stem) is in ``names``.

        This is how directory-scoped rules (determinism, durability)
        decide applicability; it works identically for the real tree
        (``core/aggregation.py``) and for test fixtures laid out under
        a mimicking directory (``fixtures/lint/core/...``).
        """
        return any(part in names for part in self.parts)

    def imports_any(self, modules: Set[str]) -> bool:
        """Whether the module imports any of ``modules`` (by prefix)."""
        for imported in self.imported_modules:
            for wanted in modules:
                if imported == wanted or imported.startswith(wanted + "."):
                    return True
        return False

    def origin_of(self, name: str) -> Optional[str]:
        """Qualified origin of a local binding, or None if not imported."""
        return self.import_aliases.get(name)


def build_module_info(path: Path, root: Path,
                      with_pragmas: bool = True) -> ModuleInfo:
    """Parse ``path`` once and derive its symbol tables.

    ``with_pragmas=False`` skips the tokenizer pass that collects
    suppression pragmas — the ``--changed`` fast path uses it for
    out-of-focus modules, whose findings are scoped out of the report
    anyway (their facts still feed the whole-program passes).
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    rel = path.relative_to(root)
    info = ModuleInfo(
        path=path,
        relpath=rel.as_posix(),
        parts=tuple(rel.parts[:-1]) + (rel.stem,),
        tree=tree,
        source=source,
        pragmas=(collect_pragmas(source) if with_pragmas
                 else PragmaIndex()),
    )
    for node in tree.body:
        _index_toplevel(info, node)
    for node in ast.walk(tree):
        _index_imports(info, node)
    return info


def _index_toplevel(info: ModuleInfo, node: ast.stmt) -> None:
    if isinstance(node, FUNCTION_NODES):
        info.module_functions[node.name] = node
        info.module_names.add(node.name)
    elif isinstance(node, ast.ClassDef):
        info.module_classes[node.name] = node
        info.module_names.add(node.name)
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            for name in _target_names(target):
                info.module_names.add(name)
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                        ast.Name):
        info.module_names.add(node.target.id)
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            info.module_names.add(alias.asname or
                                  alias.name.split(".")[0])


def _index_imports(info: ModuleInfo, node: ast.AST) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            info.imported_modules.add(alias.name)
            local = alias.asname or alias.name.split(".")[0]
            info.import_aliases[local] = (alias.name if alias.asname
                                          else alias.name.split(".")[0])
    elif isinstance(node, ast.ImportFrom) and node.module:
        info.imported_modules.add(node.module)
        for alias in node.names:
            info.import_aliases[alias.asname or alias.name] = \
                f"{node.module}.{alias.name}"


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


# --------------------------------------------------------------------------
# Intra-function dataflow helpers
# --------------------------------------------------------------------------


def dotted_name(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_scope(func: FunctionNode) -> Iterator[ast.AST]:
    """Walk ``func``'s own body without entering nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, FUNCTION_NODES + (ast.Lambda,)):
            stack.extend(ast.iter_child_nodes(node))


def name_loads(node: ast.AST) -> Set[str]:
    """Every Name read (Load context) anywhere under ``node``."""
    return {n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


def parameter_names(func: FunctionNode,
                    skip_self: bool = True) -> Set[str]:
    """All parameter names of ``func`` (minus self/cls by default)."""
    args = func.args
    names = [a.arg for a in (args.posonlyargs + args.args
                             + args.kwonlyargs)]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    if skip_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    return set(names)


def local_assignments(func: FunctionNode) -> Dict[str, List[ast.expr]]:
    """``name -> [value exprs]`` for simple assignments inside ``func``.

    Tuple unpacking maps every target name to the whole right-hand
    side, which is exactly what transitive expansion needs: any name
    the RHS reads taints every unpacked binding.
    """
    out: Dict[str, List[ast.expr]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _target_names(target):
                    out.setdefault(name, []).append(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            out.setdefault(node.target.id, []).append(node.value)
        elif isinstance(node, ast.AugAssign) and \
                isinstance(node.target, ast.Name):
            out.setdefault(node.target.id, []).append(node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name in _target_names(node.target):
                out.setdefault(name, []).append(node.iter)
        elif isinstance(node, ast.withitem) and \
                node.optional_vars is not None:
            for name in _target_names(node.optional_vars):
                out.setdefault(name, []).append(node.context_expr)
    return out


def expand_names(names: Set[str],
                 assignments: Dict[str, List[ast.expr]],
                 max_depth: int = 8) -> Set[str]:
    """Transitive closure of name reads through local assignments.

    Starting from ``names``, repeatedly add every name read by the
    expressions assigned to a known name: ``key = bytes(raw)`` makes
    ``{"key"}`` expand to ``{"key", "raw"}``.
    """
    seen = set(names)
    frontier = set(names)
    for _ in range(max_depth):
        grown: Set[str] = set()
        for name in frontier:
            for value in assignments.get(name, ()):
                grown |= name_loads(value) - seen
        if not grown:
            break
        seen |= grown
        frontier = grown
    return seen
