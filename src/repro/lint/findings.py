"""Finding and rule-identity types shared by every reprolint rule."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RuleSpec:
    """One rule's identity: stable ID, family, and a short summary."""

    rule_id: str
    family: str
    summary: str


@dataclass(frozen=True)
class Finding:
    """One precise violation: rule, location, and the human message.

    ``path`` is relative to the lint root so findings (and the
    baseline keyed on them) are portable across checkouts.  ``symbol``
    is the enclosing function/class qualname, kept for readable output
    and for baseline stability across unrelated line drift.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def render(self) -> str:
        """``path:line:col: RULE message`` — the canonical text form."""
        where = f"{self.path}:{self.line}:{self.col}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule_id} {self.message}{sym}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering: path, then position, then rule."""
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class LintReport:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: findings silenced by ``# reprolint: disable=...`` pragmas
    suppressed: List[Finding] = field(default_factory=list)
    modules_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)

    def by_rule(self) -> Dict[str, List[Finding]]:
        """Findings grouped by rule ID."""
        out: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            out.setdefault(finding.rule_id, []).append(finding)
        return out

    def counts(self) -> Dict[Tuple[str, str], int]:
        """``(rule_id, path) -> count`` — the baseline's key space."""
        out: Dict[Tuple[str, str], int] = {}
        for finding in self.findings:
            key = (finding.rule_id, finding.path)
            out[key] = out.get(key, 0) + 1
        return out


#: every shipped rule, by ID (populated by the rules package import).
RULE_REGISTRY: Dict[str, RuleSpec] = {}


def register_rule(rule_id: str, family: str, summary: str) -> RuleSpec:
    """Register one rule ID; duplicate registrations must agree."""
    spec = RuleSpec(rule_id, family, summary)
    existing = RULE_REGISTRY.get(rule_id)
    if existing is not None and existing != spec:
        raise ValueError(f"conflicting registration for {rule_id}")
    RULE_REGISTRY[rule_id] = spec
    return spec


def known_rule(rule_id: str) -> Optional[RuleSpec]:
    """The spec for ``rule_id``, or None for unknown IDs."""
    return RULE_REGISTRY.get(rule_id)
