"""Baseline files: CI fails on *regressions*, not on history.

A baseline (``lint_baseline.toml``) records the accepted finding count
per ``(rule, path)``.  Comparing a fresh report against it yields:

* **regressions** — findings beyond the baselined count for their key
  (new violations; these fail the gate);
* **expired** — baseline entries the code no longer trips (stale
  grants; ``--strict`` fails on them so the file shrinks monotonically
  toward empty).

Counts rather than line numbers keep entries stable across unrelated
edits; a line-pinned suppression belongs in a
``# reprolint: disable=`` pragma instead.
"""

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.findings import Finding, LintReport

BASELINE_NAME = "lint_baseline.toml"

Key = Tuple[str, str]  # (rule_id, relpath)


@dataclass
class Baseline:
    """Accepted findings: ``(rule, path) -> count`` plus notes."""

    entries: Dict[Key, int] = field(default_factory=dict)
    notes: Dict[Key, str] = field(default_factory=dict)
    path: Optional[Path] = None

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        baseline = cls(path=path)
        if not path.exists():
            return baseline
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
        for entry in data.get("suppress", []):
            key = (str(entry["rule"]), str(entry["path"]))
            baseline.entries[key] = int(entry.get("count", 1))
            if entry.get("note"):
                baseline.notes[key] = str(entry["note"])
        return baseline

    @classmethod
    def from_report(cls, report: LintReport,
                    notes: Optional[Dict[Key, str]] = None) -> "Baseline":
        """The baseline that accepts exactly ``report``'s findings."""
        baseline = cls()
        baseline.entries = dict(report.counts())
        baseline.notes = dict(notes or {})
        return baseline

    # -- comparison --------------------------------------------------------

    def regressions(self, report: LintReport) -> List[Finding]:
        """Findings beyond the baselined count, oldest-line first."""
        budget = dict(self.entries)
        out: List[Finding] = []
        for finding in sorted(report.findings, key=Finding.sort_key):
            key = (finding.rule_id, finding.path)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                out.append(finding)
        return out

    def expired(self, report: LintReport) -> List[Tuple[Key, int, int]]:
        """Entries granting more than the code still needs.

        Returns ``(key, granted, used)`` triples — ``used < granted``
        means the grant should shrink or go away entirely.
        """
        counts = report.counts()
        out = []
        for key in sorted(self.entries):
            used = min(counts.get(key, 0), self.entries[key])
            if used < self.entries[key]:
                out.append((key, self.entries[key], used))
        return out

    # -- serialisation -----------------------------------------------------

    def render(self) -> str:
        """The TOML text for this baseline (stable ordering)."""
        lines = [
            "# reprolint baseline — accepted findings by (rule, path).",
            "# Regenerate with: repro lint --update-baseline",
            "# The gate fails on findings beyond these counts; --strict",
            "# also fails on entries the code no longer needs.",
            "",
            "version = 1",
        ]
        for (rule, path), count in sorted(self.entries.items()):
            lines += [
                "",
                "[[suppress]]",
                f'rule = "{rule}"',
                f'path = "{path}"',
                f"count = {count}",
            ]
            note = self.notes.get((rule, path))
            if note:
                lines.append(f'note = "{note}"')
        return "\n".join(lines) + "\n"

    def write(self, path=None) -> Path:
        """Persist to ``path`` (default: where it was loaded from)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no baseline path to write to")
        target.write_text(self.render(), encoding="utf-8")
        return target


def find_baseline(start: Path) -> Optional[Path]:
    """The nearest ``lint_baseline.toml`` in ``start`` or an ancestor."""
    start = Path(start).resolve()
    if start.is_file():
        start = start.parent
    for directory in (start, *start.parents):
        candidate = directory / BASELINE_NAME
        if candidate.exists():
            return candidate
    return None
