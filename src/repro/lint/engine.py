"""The reprolint engine: compile once, traverse once, run every rule.

Each module under the lint root is read and parsed exactly one time;
the engine then makes a single depth-first pass over the AST while
maintaining the enclosing-scope stack, offering every node to each
applicable rule (mirroring the scan kernel's one-pass philosophy: the
per-module cost is one parse + one walk regardless of how many rule
families ship).  The same parse also distils the module into a
picklable fact summary (:mod:`repro.lint.facts`); after every module
is in, the *project rules* — interprocedural taint, schema contracts,
dead-symbol reachability, fork/thread/asyncio safety and resource
lifecycle — run over the joined
:class:`~repro.lint.callgraph.ProjectIndex` without touching an AST
again.  The concurrency and resource families are whole-program by
construction: a blocking call is only a defect if a coroutine can
*reach* it, a thread spawn only matters at a *later* fork point, so
their facts flow through the same resolved call graph
(:func:`repro.lint.interproc.resolved_program`) the taint pass uses.

Because per-module work only needs the facts back, it parallelises
over a process pool (``workers=N``) with a deterministic path-sorted
merge; the project passes always run in the parent.  ``focus`` narrows
*reporting* to a subset of files (``repro lint --changed``) while the
whole program still feeds the project passes.
"""

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.facts import ModuleSummary, summarize_module
from repro.lint.findings import Finding, LintReport, known_rule
from repro.lint.symbols import (
    FUNCTION_NODES,
    ModuleInfo,
    build_module_info,
)

#: directories never linted (caches, build trees).
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "build"})


class Emitter:
    """The finding callback handed to rules for one module."""

    def __init__(self, module: ModuleInfo, report: LintReport) -> None:
        self._module = module
        self._report = report
        self._stack: List[str] = []

    def push(self, name: str) -> None:
        """Enter a function/class scope named ``name``."""
        self._stack.append(name)

    def pop(self) -> None:
        """Leave the innermost scope."""
        self._stack.pop()

    @property
    def symbol(self) -> str:
        return ".".join(self._stack)

    def emit(self, rule_id: str, node: ast.AST, message: str,
             symbol: Optional[str] = None) -> None:
        """Record one finding (or its suppression) at ``node``."""
        if known_rule(rule_id) is None:
            raise ValueError(f"unregistered rule id {rule_id}")
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        finding = Finding(
            rule_id=rule_id, path=self._module.relpath, line=line,
            col=col, message=message,
            symbol=symbol if symbol is not None else self.symbol)
        if self._module.pragmas.disabled(line, rule_id):
            self._report.suppressed.append(finding)
        else:
            self._report.findings.append(finding)


class Rule:
    """Base class: override ``applies``/``visit``/``finish``.

    ``visit`` is called once per AST node during the engine's single
    traversal; ``finish`` once per module afterwards, for rules that
    need whole-module context (e.g. tracing a submitted callable back
    through call sites).
    """

    def applies(self, module: ModuleInfo) -> bool:
        """Whether this rule runs on ``module`` at all."""
        return True

    def visit(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter) -> None:
        """Offered every AST node during the single traversal."""

    def finish(self, module: ModuleInfo, emitter: Emitter) -> None:
        """Called once per module after the traversal completes."""


class ProjectEmitter:
    """Finding callback for whole-program passes.

    Findings land on a *module* (by summary) rather than the module
    being walked; pragma suppression is routed through that module's
    own pragma index, so ``# reprolint: disable=`` works identically
    for project findings.
    """

    def __init__(self, index, report: LintReport) -> None:
        self._index = index
        self._report = report

    def emit(self, rule_id: str, module_dotted: str, line: int,
             col: int, message: str, symbol: str = "") -> None:
        """Record one project finding against ``module_dotted``."""
        if known_rule(rule_id) is None:
            raise ValueError(f"unregistered rule id {rule_id}")
        summary = self._index.by_dotted[module_dotted]
        finding = Finding(
            rule_id=rule_id, path=summary.relpath, line=line, col=col,
            message=message, symbol=symbol)
        if summary.pragmas.disabled(line, rule_id):
            self._report.suppressed.append(finding)
        else:
            self._report.findings.append(finding)


class ProjectRule:
    """Base class for whole-program passes over the fact summaries."""

    def applies(self, index) -> bool:
        """Whether this pass runs on the project at all."""
        return True

    def run(self, index, emitter: ProjectEmitter) -> None:
        """One pass over the joined project index."""


# --------------------------------------------------------------------------
# Parallel per-module work
# --------------------------------------------------------------------------

#: (relpath, findings, suppressed, parse error, summary) per module.
ModuleResult = Tuple[str, List[Finding], List[Finding], Optional[str],
                     Optional[ModuleSummary]]


def _lint_one(path: Path, base: Path,
              rules: Sequence[Rule],
              run_module_rules: bool) -> ModuleResult:
    """Parse + walk + summarize one module (worker-safe)."""
    try:
        module = build_module_info(path, base,
                                   with_pragmas=run_module_rules)
    except (SyntaxError, UnicodeDecodeError) as exc:
        return (str(path), [], [], f"{path}: {exc}", None)
    report = LintReport()
    if run_module_rules:
        active = [rule for rule in rules if rule.applies(module)]
        if active:
            emitter = Emitter(module, report)
            _walk(module.tree, module, emitter, active)
            for rule in active:
                rule.finish(module, emitter)
    return (module.relpath, report.findings, report.suppressed, None,
            summarize_module(module))


def _walk(node: ast.AST, module: ModuleInfo, emitter: Emitter,
          rules: Sequence[Rule]) -> None:
    scoped = isinstance(node, FUNCTION_NODES + (ast.ClassDef,))
    if scoped:
        emitter.push(node.name)
    for rule in rules:
        rule.visit(node, module, emitter)
    for child in ast.iter_child_nodes(node):
        _walk(child, module, emitter, rules)
    if scoped:
        emitter.pop()


def _lint_worker(args) -> List[ModuleResult]:
    """Process-pool task: lint one chunk of paths with default rules."""
    base_str, path_strs, focus = args
    from repro.lint.rules import default_rules
    rules = default_rules()
    base = Path(base_str)
    out: List[ModuleResult] = []
    for path_str in path_strs:
        path = Path(path_str)
        relpath = path.relative_to(base).as_posix()
        run_module_rules = focus is None or relpath in focus
        out.append(_lint_one(path, base, rules, run_module_rules))
    return out


class LintEngine:
    """Runs a rule set over every Python module under a root."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 project_rules: Optional[Sequence[ProjectRule]] = None,
                 workers: Optional[int] = None,
                 cache_path=None) -> None:
        self._default_rules = rules is None
        if rules is None:
            from repro.lint.rules import default_rules
            rules = default_rules()
            if project_rules is None:
                from repro.lint.rules import default_project_rules
                project_rules = default_project_rules()
        self.rules = list(rules)
        # an explicit per-module rule set means *exactly* those rules
        self.project_rules = list(project_rules or [])
        self.workers = workers
        self._cache = None
        if cache_path is not None:
            from repro.lint.cache import SummaryCache
            self._cache = SummaryCache(cache_path)

    # -- module discovery --------------------------------------------------

    @staticmethod
    def discover(root: Path) -> List[Path]:
        """Every lintable ``.py`` file under ``root``, sorted."""
        root = Path(root)
        if root.is_file():
            return [root]
        return sorted(
            p for p in root.rglob("*.py")
            if not _SKIP_DIRS.intersection(p.relative_to(root).parts))

    # -- the pass ----------------------------------------------------------

    def run(self, root: Path,
            paths: Optional[Iterable[Path]] = None,
            focus: Optional[Iterable[str]] = None) -> LintReport:
        """Lint ``paths`` (default: all modules) relative to ``root``.

        ``paths`` defines the *program* the project passes see;
        ``focus`` (relpaths) narrows which files findings are reported
        for — the whole program is still parsed and summarized so
        cross-module analysis stays sound under ``--changed``.
        """
        root = Path(root).resolve()
        base = root.parent if root.is_file() else root
        path_list = [Path(p).resolve()
                     for p in (paths if paths is not None
                               else self.discover(root))]
        focus_set: Optional[Set[str]] = (
            set(focus) if focus is not None else None)
        report = LintReport()
        results = self._run_modules(path_list, base, focus_set)
        summaries: List[ModuleSummary] = []
        for relpath, findings, suppressed, error, summary in results:
            if error is not None:
                report.parse_errors.append(error)
                continue
            report.findings.extend(findings)
            report.suppressed.extend(suppressed)
            report.modules_scanned += 1
            if summary is not None:
                summaries.append(summary)
        self._run_project(summaries, report, focus_set)
        self._check_stale_pragmas(summaries, report, focus_set)
        report.findings.sort(key=Finding.sort_key)
        return report

    def _run_modules(self, path_list: List[Path], base: Path,
                     focus: Optional[Set[str]]) -> List[ModuleResult]:
        workers = self.workers or 1
        if workers <= 1 or len(path_list) < 2 or not self._default_rules:
            from repro.lint.cache import cache_stamp
            results = []
            for path in path_list:
                relpath = (path.relative_to(base).as_posix()
                           if path.is_relative_to(base) else str(path))
                run_module = focus is None or relpath in focus
                stamp = (cache_stamp(path) if self._cache is not None
                         else None)
                if self._cache is not None and not run_module:
                    # facts-only module: serve from the warm cache
                    cached = self._cache.get(relpath, stamp)
                    if cached is not None:
                        results.append((relpath, [], [], None, cached))
                        continue
                result = _lint_one(path, base, self.rules, run_module)
                if self._cache is not None and result[3] is None and \
                        result[4] is not None:
                    self._cache.put(relpath, stamp, result[4])
                results.append(result)
            if self._cache is not None:
                self._cache.save()
            return results
        import concurrent.futures
        import multiprocessing
        chunks: List[List[str]] = [[] for _ in range(workers)]
        for i, path in enumerate(path_list):
            chunks[i % workers].append(str(path))
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        merged: List[ModuleResult] = []
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=context) as pool:
            tasks = [pool.submit(_lint_worker, (str(base), chunk, focus))
                     for chunk in chunks if chunk]
            for task in tasks:
                merged.extend(task.result())
        merged.sort(key=lambda result: result[0])
        return merged

    def _run_project(self, summaries: List[ModuleSummary],
                     report: LintReport,
                     focus: Optional[Set[str]]) -> None:
        if not self.project_rules or not summaries:
            return
        from repro.lint.callgraph import ProjectIndex
        index = ProjectIndex(summaries)
        scoped = (report if focus is None else LintReport())
        emitter = ProjectEmitter(index, scoped)
        for rule in self.project_rules:
            if rule.applies(index):
                rule.run(index, emitter)
        if focus is not None:
            report.findings.extend(
                f for f in scoped.findings if f.path in focus)
            report.suppressed.extend(
                f for f in scoped.suppressed if f.path in focus)

    def _check_stale_pragmas(self, summaries: List[ModuleSummary],
                             report: LintReport,
                             focus: Optional[Set[str]]) -> None:
        """PRAGMA001: suppressions that no longer suppress anything.

        Runs after the per-module *and* project passes so a pragma
        justified by any rule family counts as live.  The check keys
        off ``report.suppressed``: a pragma rule that silenced at
        least one finding (on its line, or anywhere for
        ``disable-file``) is live; everything else is stale noise that
        would hide future regressions.
        """
        if known_rule("PRAGMA001") is None or not self._default_rules:
            return
        for summary in summaries:
            if focus is not None and summary.relpath not in focus:
                continue
            by_line: Set[Tuple[str, int]] = set()
            file_wide: Set[str] = set()
            for finding in report.suppressed:
                if finding.path != summary.relpath:
                    continue
                by_line.add((finding.rule_id, finding.line))
                file_wide.add(finding.rule_id)
            for entry in summary.pragmas.entries:
                if entry.scope == "disable-file":
                    stale = [r for r in entry.rules
                             if r != "all" and r not in file_wide]
                    if "all" in entry.rules and not file_wide:
                        stale.append("all")
                else:
                    stale = [r for r in entry.rules
                             if r != "all"
                             and (r, entry.line) not in by_line]
                    if "all" in entry.rules and not any(
                            line == entry.line
                            for _, line in by_line):
                        stale.append("all")
                if not stale:
                    continue
                finding = Finding(
                    rule_id="PRAGMA001", path=summary.relpath,
                    line=entry.line, col=1,
                    message=f"stale pragma: no finding matches "
                    f"'{entry.scope}={','.join(stale)}' — remove the "
                    f"suppression so it cannot mask a future "
                    f"regression")
                if summary.pragmas.disabled(entry.line, "PRAGMA001"):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)


def lint_tree(root, rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Convenience one-shot: lint every module under ``root``."""
    return LintEngine(rules).run(Path(root))
