"""The reprolint engine: compile once, traverse once, run every rule.

Each module under the lint root is read and parsed exactly one time;
the engine then makes a single depth-first pass over the AST while
maintaining the enclosing-scope stack, offering every node to each
applicable rule (mirroring the scan kernel's one-pass philosophy: the
per-module cost is one parse + one walk regardless of how many rule
families ship).  Rules emit findings through a callback; the engine
stamps the location/symbol and applies pragma suppression before
anything reaches the report.
"""

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.findings import Finding, LintReport, known_rule
from repro.lint.symbols import (
    FUNCTION_NODES,
    ModuleInfo,
    build_module_info,
)

#: directories never linted (caches, build trees).
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "build"})


class Emitter:
    """The finding callback handed to rules for one module."""

    def __init__(self, module: ModuleInfo, report: LintReport) -> None:
        self._module = module
        self._report = report
        self._stack: List[str] = []

    def push(self, name: str) -> None:
        """Enter a function/class scope named ``name``."""
        self._stack.append(name)

    def pop(self) -> None:
        """Leave the innermost scope."""
        self._stack.pop()

    @property
    def symbol(self) -> str:
        return ".".join(self._stack)

    def emit(self, rule_id: str, node: ast.AST, message: str,
             symbol: Optional[str] = None) -> None:
        """Record one finding (or its suppression) at ``node``."""
        if known_rule(rule_id) is None:
            raise ValueError(f"unregistered rule id {rule_id}")
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        finding = Finding(
            rule_id=rule_id, path=self._module.relpath, line=line,
            col=col, message=message,
            symbol=symbol if symbol is not None else self.symbol)
        if self._module.pragmas.disabled(line, rule_id):
            self._report.suppressed.append(finding)
        else:
            self._report.findings.append(finding)


class Rule:
    """Base class: override ``applies``/``visit``/``finish``.

    ``visit`` is called once per AST node during the engine's single
    traversal; ``finish`` once per module afterwards, for rules that
    need whole-module context (e.g. tracing a submitted callable back
    through call sites).
    """

    def applies(self, module: ModuleInfo) -> bool:
        """Whether this rule runs on ``module`` at all."""
        return True

    def visit(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter) -> None:
        """Offered every AST node during the single traversal."""

    def finish(self, module: ModuleInfo, emitter: Emitter) -> None:
        """Called once per module after the traversal completes."""


class LintEngine:
    """Runs a rule set over every Python module under a root."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from repro.lint.rules import default_rules
            rules = default_rules()
        self.rules = list(rules)

    # -- module discovery --------------------------------------------------

    @staticmethod
    def discover(root: Path) -> List[Path]:
        """Every lintable ``.py`` file under ``root``, sorted."""
        root = Path(root)
        if root.is_file():
            return [root]
        return sorted(
            p for p in root.rglob("*.py")
            if not _SKIP_DIRS.intersection(p.relative_to(root).parts))

    # -- the pass ----------------------------------------------------------

    def run(self, root: Path,
            paths: Optional[Iterable[Path]] = None) -> LintReport:
        """Lint ``paths`` (default: all modules) relative to ``root``."""
        root = Path(root).resolve()
        base = root.parent if root.is_file() else root
        report = LintReport()
        for path in (paths if paths is not None else self.discover(root)):
            path = Path(path).resolve()
            try:
                module = build_module_info(path, base)
            except (SyntaxError, UnicodeDecodeError) as exc:
                report.parse_errors.append(f"{path}: {exc}")
                continue
            self._run_module(module, report)
            report.modules_scanned += 1
        report.findings.sort(key=Finding.sort_key)
        return report

    def _run_module(self, module: ModuleInfo,
                    report: LintReport) -> None:
        active = [rule for rule in self.rules if rule.applies(module)]
        if not active:
            return
        emitter = Emitter(module, report)
        self._walk(module.tree, module, emitter, active)
        for rule in active:
            rule.finish(module, emitter)

    def _walk(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter, rules: List[Rule]) -> None:
        scoped = isinstance(node, FUNCTION_NODES + (ast.ClassDef,))
        if scoped:
            emitter.push(node.name)
        for rule in rules:
            rule.visit(node, module, emitter)
        for child in ast.iter_child_nodes(node):
            self._walk(child, module, emitter, rules)
        if scoped:
            emitter.pop()


def lint_tree(root, rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Convenience one-shot: lint every module under ``root``."""
    return LintEngine(rules).run(Path(root))
