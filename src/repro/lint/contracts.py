"""The pipeline contracts reprolint enforces, as shared vocabulary.

Every rule family checks some slice of the same small set of
methodology contracts (paper §III-E and the streaming-equivalence
guarantee); this module is the single home for the names those
contracts are anchored on, so the per-module rules and the
whole-program passes (call graph, interprocedural taint, schema
checking) cannot drift apart on what counts as "enrichment", "edge
construction" or "the durable sink".
"""

#: defining or importing either of these marks a grouping module —
#: exactly the batch aggregator and the streaming one today, and
#: automatically any future module that takes on edge construction.
GROUPING_FUNCTIONS = frozenset({"record_attachments", "build_campaign"})

#: modules whose outputs are enrichment-only (prefix matched): values
#: produced by them are *informative* annotations and must never feed
#: campaign grouping or the durable checkpoint state.
TAINTED_MODULES = frozenset({
    "repro.core.enrichment",
    "repro.osint.stock_tools",
    "repro.binfmt.packers",
    "repro.binfmt.entropy",
    "repro.botnet",
    "repro.intel.labels",
})

#: attributes owned by the enrichment stage (on records or campaigns).
#: Reads of these — as ``.attr`` or as constant ``["attr"]`` keys on
#: record-shaped dicts — are taint sources.
TAINTED_ATTRIBUTES = frozenset({
    "uses_ppi", "ppi_botnets", "stock_tools", "stock_tool_matches",
    "obfuscated", "packers", "packer", "entropy",
})

#: CheckpointStore write APIs: everything journaled or snapshotted
#: must be a pure function of the corpus, so enrichment-tainted values
#: reaching these calls (via any path) are TAINT003 violations.
CHECKPOINT_SINK_METHODS = frozenset({
    "append_outcome", "commit_batch", "write_snapshot",
})

#: module stems that anchor dead-symbol reachability: the CLI layer.
#: DEAD001 only runs when the analyzed project contains at least one
#: entrypoint module, so linting a lone module stays conservative.
ENTRYPOINT_STEMS = frozenset({"cli", "__main__"})
