"""The pipeline contracts reprolint enforces, as shared vocabulary.

Every rule family checks some slice of the same small set of
methodology contracts (paper §III-E and the streaming-equivalence
guarantee); this module is the single home for the names those
contracts are anchored on, so the per-module rules and the
whole-program passes (call graph, interprocedural taint, schema
checking) cannot drift apart on what counts as "enrichment", "edge
construction" or "the durable sink".
"""

#: defining or importing either of these marks a grouping module —
#: exactly the batch aggregator and the streaming one today, and
#: automatically any future module that takes on edge construction.
GROUPING_FUNCTIONS = frozenset({"record_attachments", "build_campaign"})

#: modules whose outputs are enrichment-only (prefix matched): values
#: produced by them are *informative* annotations and must never feed
#: campaign grouping or the durable checkpoint state.
TAINTED_MODULES = frozenset({
    "repro.core.enrichment",
    "repro.osint.stock_tools",
    "repro.binfmt.packers",
    "repro.binfmt.entropy",
    "repro.botnet",
    "repro.intel.labels",
})

#: attributes owned by the enrichment stage (on records or campaigns).
#: Reads of these — as ``.attr`` or as constant ``["attr"]`` keys on
#: record-shaped dicts — are taint sources.
TAINTED_ATTRIBUTES = frozenset({
    "uses_ppi", "ppi_botnets", "stock_tools", "stock_tool_matches",
    "obfuscated", "packers", "packer", "entropy",
})

#: CheckpointStore write APIs: everything journaled or snapshotted
#: must be a pure function of the corpus, so enrichment-tainted values
#: reaching these calls (via any path) are TAINT003 violations.
CHECKPOINT_SINK_METHODS = frozenset({
    "append_outcome", "commit_batch", "write_snapshot",
})

#: module stems that anchor dead-symbol reachability: the CLI layer.
#: DEAD001 only runs when the analyzed project contains at least one
#: entrypoint module, so linting a lone module stays conservative.
ENTRYPOINT_STEMS = frozenset({"cli", "__main__"})

# -- concurrency discipline (FORK/ASYNC/THR families) ----------------------

#: constructor names (last dotted segment) that start an OS thread.
THREAD_SPAWN_CALLS = frozenset({"Thread", "Timer"})

#: constructor names (last dotted segment) that fork worker processes.
#: ``os.fork`` is matched by its full dotted text (see FORK_POINT_TEXTS)
#: because a bare ``fork`` attribute is too ambiguous.
FORK_POINT_CALLS = frozenset({"ProcessPoolExecutor", "Pool", "Process"})
FORK_POINT_TEXTS = frozenset({"os.fork"})

#: method names that establish a fork-safety barrier: every thread the
#: caller owns is parked at a lock-free point for the duration (the
#: sanctioned pattern is ``with prefetcher.quiesced(): engine forks``,
#: or an engine constructed with a ``fork_barrier=`` hook that wraps
#: its own pool creation).  A fork-ward call preceded by one of these
#: in the same function is considered safe by FORK001.
FORK_BARRIER_CALLS = frozenset({"quiesced", "fork_barrier",
                                "_fork_barrier"})

#: method names that retire a live thread (or drain its owner).  A
#: thread spawned at line S is considered live until the first such
#: call after S in the same function.
THREAD_RELEASE_CALLS = frozenset({"close", "join", "stop", "shutdown"})

#: call texts that block the calling thread — poison inside a
#: coroutine body (ASYNC001).  Dotted texts match exactly; prefixes
#: match whole leading segments ("subprocess" covers subprocess.run).
BLOCKING_CALL_TEXTS = frozenset({
    "time.sleep", "socket.create_connection", "select.select",
    "urllib.request.urlopen", "input", "open",
})
BLOCKING_CALL_PREFIXES = frozenset({"subprocess"})

#: method names (attribute calls only) that block: raw socket I/O and
#: synchronous file reads.  An *awaited* call is never blocking — the
#: async stream APIs share these names.
BLOCKING_METHODS = frozenset({
    "recv", "recv_into", "accept", "connect", "sendall",
    "read", "readinto", "readlines",
})

#: executor hand-off calls: work scheduled through these runs off the
#: event loop, so their callable arguments are not coroutine-reachable.
EXECUTOR_HOP_CALLS = frozenset({"run_in_executor", "to_thread"})

#: call names that *schedule* a coroutine object (ASYNC002 accepts a
#: coroutine call appearing as an argument to any of these in lieu of
#: ``await``).
COROUTINE_SCHEDULE_CALLS = frozenset({
    "create_task", "ensure_future", "gather", "run",
    "run_until_complete", "wait", "wait_for",
    "run_coroutine_threadsafe", "shield",
})

#: loop-marshalling calls: a callback handed to these runs on the
#: event-loop thread, so loop-affine flips inside count as on-loop.
LOOP_MARSHAL_CALLS = frozenset({"call_soon", "call_soon_threadsafe",
                                "call_later"})

#: method names that flip lock-free hot-swap state readers race on.
#: Calls resolving to one of these on a class that also defines
#: coroutines must come from the loop thread (async caller or a
#: LOOP_MARSHAL_CALLS callback) — ASYNC002's affinity half.
LOOP_AFFINE_METHODS = frozenset({"swap"})

#: module-level mutable initialisers exempt from THR001: these types
#: are the sanctioned cross-thread channels.
THREAD_SAFE_TYPES = frozenset({
    "Queue", "LifoQueue", "PriorityQueue", "SimpleQueue", "Event",
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Barrier", "deque", "local",
})

# -- resource lifecycle (RES family) ---------------------------------------

#: acquisition calls that hand back an OS-backed resource needing
#: explicit release.  Same matching split as the blocking sets.
RESOURCE_FACTORY_TEXTS = frozenset({
    "open", "mmap.mmap", "socket.socket", "socket.create_connection",
    "os.pipe",
})
RESOURCE_FACTORY_CALLS = frozenset({
    "NamedTemporaryFile", "TemporaryFile", "SpooledTemporaryFile",
})

#: method names that release a held resource (RES001's close half,
#: and the class-level escape check: storing a resource on ``self`` is
#: fine iff the owning class defines one of these).
RESOURCE_RELEASE_METHODS = frozenset({
    "close", "release", "shutdown", "stop", "terminate",
    "__exit__", "__del__",
})
