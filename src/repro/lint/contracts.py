"""The pipeline contracts reprolint enforces, as shared vocabulary.

Every rule family checks some slice of the same small set of
methodology contracts (paper §III-E and the streaming-equivalence
guarantee); this module is the single home for the names those
contracts are anchored on, so the per-module rules and the
whole-program passes (call graph, interprocedural taint, schema
checking) cannot drift apart on what counts as "enrichment", "edge
construction" or "the durable sink".
"""

#: defining or importing either of these marks a grouping module —
#: exactly the batch aggregator and the streaming one today, and
#: automatically any future module that takes on edge construction.
GROUPING_FUNCTIONS = frozenset({"record_attachments", "build_campaign"})

#: modules whose outputs are enrichment-only (prefix matched): values
#: produced by them are *informative* annotations and must never feed
#: campaign grouping or the durable checkpoint state.
TAINTED_MODULES = frozenset({
    "repro.core.enrichment",
    "repro.osint.stock_tools",
    "repro.binfmt.packers",
    "repro.binfmt.entropy",
    "repro.botnet",
    "repro.intel.labels",
})

#: attributes owned by the enrichment stage (on records or campaigns).
#: Reads of these — as ``.attr`` or as constant ``["attr"]`` keys on
#: record-shaped dicts — are taint sources.
TAINTED_ATTRIBUTES = frozenset({
    "uses_ppi", "ppi_botnets", "stock_tools", "stock_tool_matches",
    "obfuscated", "packers", "packer", "entropy",
})

#: CheckpointStore write APIs: everything journaled or snapshotted
#: must be a pure function of the corpus, so enrichment-tainted values
#: reaching these calls (via any path) are TAINT003 violations.
CHECKPOINT_SINK_METHODS = frozenset({
    "append_outcome", "commit_batch", "write_snapshot",
})

#: module stems that anchor dead-symbol reachability: the CLI layer.
#: DEAD001 only runs when the analyzed project contains at least one
#: entrypoint module, so linting a lone module stays conservative.
ENTRYPOINT_STEMS = frozenset({"cli", "__main__"})

# -- concurrency discipline (FORK/ASYNC/THR families) ----------------------

#: constructor names (last dotted segment) that start an OS thread.
THREAD_SPAWN_CALLS = frozenset({"Thread", "Timer"})

#: constructor names (last dotted segment) that fork worker processes.
#: ``os.fork`` is matched by its full dotted text (see FORK_POINT_TEXTS)
#: because a bare ``fork`` attribute is too ambiguous.
FORK_POINT_CALLS = frozenset({"ProcessPoolExecutor", "Pool", "Process"})
FORK_POINT_TEXTS = frozenset({"os.fork"})

#: method names that establish a fork-safety barrier: every thread the
#: caller owns is parked at a lock-free point for the duration (the
#: sanctioned pattern is ``with prefetcher.quiesced(): engine forks``,
#: or an engine constructed with a ``fork_barrier=`` hook that wraps
#: its own pool creation).  A fork-ward call preceded by one of these
#: in the same function is considered safe by FORK001.
FORK_BARRIER_CALLS = frozenset({"quiesced", "fork_barrier",
                                "_fork_barrier"})

#: method names that retire a live thread (or drain its owner).  A
#: thread spawned at line S is considered live until the first such
#: call after S in the same function.
THREAD_RELEASE_CALLS = frozenset({"close", "join", "stop", "shutdown"})

#: call texts that block the calling thread — poison inside a
#: coroutine body (ASYNC001).  Dotted texts match exactly; prefixes
#: match whole leading segments ("subprocess" covers subprocess.run).
BLOCKING_CALL_TEXTS = frozenset({
    "time.sleep", "socket.create_connection", "select.select",
    "urllib.request.urlopen", "input", "open",
})
BLOCKING_CALL_PREFIXES = frozenset({"subprocess"})

#: method names (attribute calls only) that block: raw socket I/O and
#: synchronous file reads.  An *awaited* call is never blocking — the
#: async stream APIs share these names.
BLOCKING_METHODS = frozenset({
    "recv", "recv_into", "accept", "connect", "sendall",
    "read", "readinto", "readlines",
})

#: executor hand-off calls: work scheduled through these runs off the
#: event loop, so their callable arguments are not coroutine-reachable.
EXECUTOR_HOP_CALLS = frozenset({"run_in_executor", "to_thread"})

#: call names that *schedule* a coroutine object (ASYNC002 accepts a
#: coroutine call appearing as an argument to any of these in lieu of
#: ``await``).
COROUTINE_SCHEDULE_CALLS = frozenset({
    "create_task", "ensure_future", "gather", "run",
    "run_until_complete", "wait", "wait_for",
    "run_coroutine_threadsafe", "shield",
})

#: loop-marshalling calls: a callback handed to these runs on the
#: event-loop thread, so loop-affine flips inside count as on-loop.
LOOP_MARSHAL_CALLS = frozenset({"call_soon", "call_soon_threadsafe",
                                "call_later"})

#: method names that flip lock-free hot-swap state readers race on.
#: Calls resolving to one of these on a class that also defines
#: coroutines must come from the loop thread (async caller or a
#: LOOP_MARSHAL_CALLS callback) — ASYNC002's affinity half.
LOOP_AFFINE_METHODS = frozenset({"swap"})

#: module-level mutable initialisers exempt from THR001: these types
#: are the sanctioned cross-thread channels.
THREAD_SAFE_TYPES = frozenset({
    "Queue", "LifoQueue", "PriorityQueue", "SimpleQueue", "Event",
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Barrier", "deque", "local",
})

# -- domain kinds & quantity units (UNIT/KIND families) ---------------------

#: Per-field semantic declarations for the paper's record schemas:
#: ``class name -> field name -> (unit, kind)``, where either slot may
#: be None.  Units are quantity dimensions ("XMR", the generic "coin",
#: "USD", the "usd_per_coin" rate, "hs" hashrate, cumulative "hashes",
#: "shares", simulated "date"); kinds are identifier namespaces
#: ("sha256", "wallet", "domain", "campaign-id", "pool-url", "email").
#: This table is the single source of truth the SCHEMA pass checks for
#: drift against the real dataclasses and the UNIT/KIND pass flattens
#: into its seed maps (:mod:`repro.lint.units`).
RECORD_FIELD_CONTRACTS = {
    # core/records.py — Table I
    "MinerRecord": {
        "sha256": (None, "sha256"),
        "user": (None, "wallet"),
        "url_pool": (None, "pool-url"),
        "first_seen": ("date", None),
        "identifiers": (None, "wallet"),
    },
    # core/records.py — Table II
    "WalletRecord": {
        "user": (None, "wallet"),
        "hashes": ("hashes", None),
        "hashrate": ("hs", None),
        "last_share": ("date", None),
        "balance": ("coin", None),
        "total_paid": ("coin", None),
        "date_query": ("date", None),
        "usd": ("USD", None),
    },
    # pools/pool.py — the public API view and the internal ledger
    "WalletStats": {
        "identifier": (None, "wallet"),
        "hashes": ("hashes", None),
        "last_hashrate": ("hs", None),
        "last_share": ("date", None),
        "balance": ("coin", None),
        "total_paid": ("coin", None),
    },
    "_WalletAccount": {
        "identifier": (None, "wallet"),
        "hashes": ("hashes", None),
        "balance": ("coin", None),
        "total_paid": ("coin", None),
        "last_share": ("date", None),
        "last_hashrate": ("hs", None),
        "banned_on": ("date", None),
    },
    # core/profit.py
    "WalletProfile": {
        "identifier": (None, "wallet"),
    },
    # core/aggregation.py
    "Campaign": {
        "campaign_id": (None, "campaign-id"),
        "sample_hashes": (None, "sha256"),
        "identifiers": (None, "wallet"),
        "total_xmr": ("XMR", None),
        "total_usd": ("USD", None),
        "first_seen": ("date", None),
        "last_seen": ("date", None),
        "last_share": ("date", None),
    },
}

#: Mapping names (``self._attr`` attributes or well-known locals)
#: whose *keys* live in one identifier namespace — the serve-layer
#: IntelIndex tables and the aggregation/index joins.  KIND002 flags a
#: key of a different kind flowing into one of these.
MAPPING_KEY_KINDS = {
    # serve/index.py — IntelIndex tables
    "_hashes": "sha256",
    "_wallets": "wallet",
    "_campaigns": "campaign-id",
    "_domains": "domain",
    # serve/index.py — build_index joins and payload tables
    "campaign_of_sample": "sha256",
    "campaign_of_wallet": "wallet",
    "wallet_samples": "wallet",
    "wallet_coin": "wallet",
    "hashes": "sha256",
    "domains": "domain",
    "campaigns": "campaign-id",
    # pools/pool.py — the per-wallet ledger
    "_accounts": "wallet",
    # core/aggregation.py — per-identifier coin attribution
    "identifier_coins": "wallet",
}

#: Functions (matched on the qualname's last segment, or the full
#: dotted call text) with seeded parameter semantics:
#: ``name -> {param name: (unit, kind)}``.
FUNCTION_PARAM_CONTRACTS = {
    "to_usd": {"amount": ("coin", None)},
    "hash_intel": {"sha256": (None, "sha256")},
    "wallet_intel": {"identifier": (None, "wallet")},
    "campaign_intel": {"campaign_id": (None, "campaign-id")},
    "domain_intel": {"name": (None, "domain")},
    "api_wallet_stats": {"identifier": (None, "wallet")},
    "credit_mining_day": {"hashrate_hs": ("hs", None)},
}

#: Functions whose *return value* has a seeded unit or kind (the
#: conversion witnesses among them make UNIT002's "converted" edge:
#: a value produced by ``to_usd`` *is* USD).
FUNCTION_RETURN_CONTRACTS = {
    "to_usd": ("USD", None),
    "rate": ("usd_per_coin", None),
    "credit_mining_day": ("coin", None),
    "daily_emission": ("coin", None),
    "network_hashrate_hs": ("hs", None),
}

#: Module-level constants with a seeded unit (matched on the bare
#: name or the last dotted segment of a read).
CONSTANT_UNITS = {
    "AVERAGE_XMR_USD": "usd_per_coin",
}

# -- resource lifecycle (RES family) ---------------------------------------

#: acquisition calls that hand back an OS-backed resource needing
#: explicit release.  Same matching split as the blocking sets.
RESOURCE_FACTORY_TEXTS = frozenset({
    "open", "mmap.mmap", "socket.socket", "socket.create_connection",
    "os.pipe",
})
RESOURCE_FACTORY_CALLS = frozenset({
    "NamedTemporaryFile", "TemporaryFile", "SpooledTemporaryFile",
})

#: method names that release a held resource (RES001's close half,
#: and the class-level escape check: storing a resource on ``self`` is
#: fine iff the owning class defines one of these).
RESOURCE_RELEASE_METHODS = frozenset({
    "close", "release", "shutdown", "stop", "terminate",
    "__exit__", "__del__",
})
