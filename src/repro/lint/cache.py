"""Warm-path summary cache for the ``--changed`` fast lane.

The whole-program passes need *facts* for every module, but facts only
change when the file changes.  This cache pickles the per-module
:class:`~repro.lint.facts.ModuleSummary` objects keyed by a
``(mtime_ns, size)`` stamp so an incremental lint re-parses only the
files under focus; everything else feeds the call graph, taint
fixpoint and schema passes straight from the cache.

Only modules *outside* the reporting focus are ever served from the
cache — focus files are always re-parsed, which also keeps their
pragma indexes fresh.  A stamp mismatch, a version mismatch or any
unpickling failure falls back to a normal parse: the cache can only
make lint faster, never change its answer.
"""

import os
import pickle
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.lint.facts import ModuleSummary
from repro.lint.units import seed_fingerprint

#: bump whenever the fact schema or extraction semantics change —
#: a version mismatch silently invalidates the whole cache file.
#: 2: concurrency + resource-lifecycle fact kinds (FORK/ASYNC/THR/RES).
#: 3: unit/kind flow facts (UNIT/KIND) — extraction also filters its
#:    sink and key events through the seed tables, so the cache keys
#:    on their fingerprint too (see ``_cache_key``).
CACHE_VERSION = 3


def _cache_key() -> Tuple[int, str]:
    """What must match for a cache file to be trusted at all.

    The seed fingerprint covers every unit/kind table: editing a
    contract re-extracts the whole tree even though no source file's
    stamp moved.
    """
    return (CACHE_VERSION, seed_fingerprint())

#: (st_mtime_ns, st_size) — cheap staleness check, no content hash.
Stamp = Tuple[int, int]


def cache_stamp(path: Path) -> Optional[Stamp]:
    """The freshness stamp for ``path``, or None if unstattable."""
    try:
        status = path.stat()
    except OSError:
        return None
    return (status.st_mtime_ns, status.st_size)


class SummaryCache:
    """One pickle file of ``{relpath: (stamp, ModuleSummary)}``."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Tuple[Stamp, ModuleSummary]] = {}
        self._loaded = False
        self._dirty = False

    def _load(self) -> Dict[str, Tuple[Stamp, ModuleSummary]]:
        if self._loaded:
            return self._entries
        self._loaded = True
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
            if isinstance(payload, dict) and \
                    payload.get("version") == _cache_key():
                self._entries = payload["modules"]
        except Exception:  # noqa: BLE001 - any corrupt cache is a miss
            self._entries = {}
        return self._entries

    def get(self, relpath: str,
            current: Optional[Stamp]) -> Optional[ModuleSummary]:
        """The cached summary for ``relpath`` iff its stamp matches."""
        if current is None:
            return None
        entry = self._load().get(relpath)
        if entry is None or entry[0] != current:
            return None
        return entry[1]

    def put(self, relpath: str, current: Optional[Stamp],
            summary: ModuleSummary) -> None:
        """Record a freshly-extracted summary under its stamp."""
        if current is None:
            return
        self._load()[relpath] = (current, summary)
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (tmp file + rename)."""
        if not self._dirty:
            return
        payload = {"version": _cache_key(), "modules": self._entries}
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path)
            self._dirty = False
        except OSError:  # read-only checkout: run uncached
            tmp.unlink(missing_ok=True)
