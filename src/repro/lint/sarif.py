"""SARIF 2.1.0 serialization for reprolint reports.

One run, one tool, one result per finding — the minimal valid subset
code-scanning UIs ingest (GitHub code scanning, VS Code SARIF viewer).
Rules are emitted once in the driver's ``rules`` array (index-linked
from each result), findings become ``results`` with a single physical
location, and baseline state is conveyed through SARIF's own
``baselineState`` field: a finding already granted in
``lint_baseline.toml`` is ``unchanged``, a fresh one is ``new``.

Deliberately dependency-free and deterministic: plain dicts, sorted
rule order, stable finding order (the report is already sorted), so
the same tree always serializes byte-identically.
"""

import json
from typing import Dict, List, Optional, Sequence

from repro.lint.findings import Finding, LintReport, RULE_REGISTRY

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: reprolint's stable identity within SARIF tooling.
TOOL_NAME = "reprolint"
TOOL_URI = "docs/static-analysis.md"


def _rule_descriptor(rule_id: str) -> Dict:
    spec = RULE_REGISTRY.get(rule_id)
    descriptor: Dict = {"id": rule_id}
    if spec is not None:
        descriptor["shortDescription"] = {"text": spec.summary}
        descriptor["properties"] = {"family": spec.family}
    return descriptor


def _result(finding: Finding, rule_index: Dict[str, int],
            new_ids: Optional[set]) -> Dict:
    result: Dict = {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index[finding.rule_id],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col},
            },
        }],
    }
    if finding.symbol:
        result["locations"][0]["logicalLocations"] = [
            {"fullyQualifiedName": finding.symbol}]
    if new_ids is not None:
        key = (finding.rule_id, finding.path, finding.line,
               finding.col, finding.message)
        result["baselineState"] = ("new" if key in new_ids
                                   else "unchanged")
    return result


def to_sarif(report: LintReport,
             regressions: Optional[Sequence[Finding]] = None) -> Dict:
    """The SARIF document (as a plain dict) for one lint report.

    ``regressions`` — the subset of findings not covered by the
    baseline — drives ``baselineState``; pass None to omit the field
    entirely (e.g. when linting without a baseline).
    """
    fired = sorted({f.rule_id for f in report.findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    new_ids = None
    if regressions is not None:
        new_ids = {(f.rule_id, f.path, f.line, f.col, f.message)
                   for f in regressions}
    results: List[Dict] = [
        _result(finding, rule_index, new_ids)
        for finding in report.findings]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "informationUri": TOOL_URI,
                "rules": [_rule_descriptor(r) for r in fired],
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def render_sarif(report: LintReport,
                 regressions: Optional[Sequence[Finding]] = None) -> str:
    """``to_sarif`` as stable, indented JSON text."""
    return json.dumps(to_sarif(report, regressions), indent=2,
                      sort_keys=True)
