"""Project-wide call graph over the per-module fact summaries.

:class:`ProjectIndex` joins every module's :class:`ModuleSummary` into
one resolvable namespace: dotted call-site text resolves through import
aliases, package ``__init__`` re-export chains, ``self.`` method
dispatch and locally-constructed instance types to a concrete project
function (or class, or a call into an enrichment module).  Resolution
is *conservative*: anything dynamic resolves to ``None`` and the taint
engine treats it as an opaque pass-through rather than pretending to
know the callee.

The same index answers the dead-symbol question (which module-level
functions are unreachable from the CLI entrypoints) and renders the
human-readable graph for ``repro lint --graph``.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.contracts import TAINTED_MODULES
from repro.lint.facts import CallFact, FunctionFact, ModuleSummary

#: resolution chain depth cap (re-export hops, alias chains).
_MAX_HOPS = 8


@dataclass(frozen=True)
class Resolution:
    """What a call site's callee text resolves to."""

    kind: str                    # "function" | "class" | "tainted"
    module: Optional[str] = None  # ModuleSummary.dotted key
    qualname: Optional[str] = None
    #: fully-qualified display text ("repro.osint.stock_tools.match")
    origin: Optional[str] = None


def _under_tainted(origin: str) -> bool:
    return any(origin == t or origin.startswith(t + ".")
               for t in TAINTED_MODULES)


class ProjectIndex:
    """Every module summary, joined into one resolvable program."""

    def __init__(self, summaries: List[ModuleSummary]) -> None:
        self.summaries = sorted(summaries, key=lambda s: s.relpath)
        self.by_dotted: Dict[str, ModuleSummary] = {}
        for summary in self.summaries:
            self.by_dotted[summary.dotted] = summary
            if summary.parts[-1] == "__init__" and len(summary.parts) > 1:
                # a package's __init__ answers for the package name
                self.by_dotted.setdefault(
                    ".".join(summary.parts[:-1]), summary)
        self._by_stem: Dict[str, List[str]] = {}
        for dotted in self.by_dotted:
            self._by_stem.setdefault(
                dotted.split(".")[-1], []).append(dotted)
        self.has_entrypoint = any(s.is_entrypoint
                                  for s in self.summaries)

    # -- module and symbol lookup ------------------------------------------

    def find_module(self, dotted: str) -> Optional[ModuleSummary]:
        """Module whose dotted path matches ``dotted`` by suffix.

        Lint roots are package directories, so summaries carry paths
        like ``core.aggregation`` while imports say
        ``repro.core.aggregation``; a match requires one dotted path to
        be a part-boundary suffix of the other, and must be unique.
        """
        exact = self.by_dotted.get(dotted)
        if exact is not None:
            return exact
        stem = dotted.split(".")[-1]
        hits = []
        for candidate in self._by_stem.get(stem, ()):
            if dotted.endswith("." + candidate) or \
                    candidate.endswith("." + dotted):
                hits.append(candidate)
        if len(hits) == 1:
            return self.by_dotted[hits[0]]
        return None

    def resolve_qualified(self, origin: str,
                          hops: int = _MAX_HOPS,
                          label_taint: bool = True,
                          ) -> Optional[Resolution]:
        """Resolve fully-qualified ``origin`` text to a symbol.

        Splits ``pkg.mod.sym`` at every boundary, follows re-export
        aliases through package ``__init__`` modules, and labels
        anything under an enrichment module as tainted regardless of
        resolvability — enrichment outputs are tainted by contract.
        ``label_taint=False`` skips that labeling and resolves the
        actual symbol (the liveness pass needs real edges *into*
        enrichment modules; the taint engine needs the label).
        """
        if hops <= 0:
            return None
        if label_taint and _under_tainted(origin):
            return Resolution(kind="tainted", origin=origin)
        parts = origin.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = self.find_module(".".join(parts[:split]))
            if module is None:
                continue
            rest = parts[split:]
            return self._resolve_in_module(module, rest, hops,
                                           label_taint)
        return None

    def _resolve_in_module(self, module: ModuleSummary,
                           rest: List[str],
                           hops: int,
                           label_taint: bool = True,
                           ) -> Optional[Resolution]:
        head = rest[0]
        if head in module.classes:
            if len(rest) == 1:
                return Resolution(
                    kind="class", module=module.dotted, qualname=head,
                    origin=f"{module.dotted}.{head}")
            qual = f"{head}.{rest[1]}"
            if qual in module.functions:
                return Resolution(
                    kind="function", module=module.dotted,
                    qualname=qual, origin=f"{module.dotted}.{qual}")
            return None
        if head in module.functions and len(rest) == 1:
            return Resolution(
                kind="function", module=module.dotted, qualname=head,
                origin=f"{module.dotted}.{head}")
        alias = module.import_aliases.get(head)
        if alias is not None:
            # re-export: from .parallel import Engine in __init__.py
            return self.resolve_qualified(
                ".".join([alias] + rest[1:]), hops - 1, label_taint)
        return None

    # -- call-site resolution ----------------------------------------------

    def resolve_call(self, call: CallFact, fact: FunctionFact,
                     summary: ModuleSummary,
                     hops: int = _MAX_HOPS) -> Optional[Resolution]:
        """Resolve one call site in ``fact`` (in ``summary``)."""
        text = call.callee
        if text is None or hops <= 0:
            return None
        parts = text.split(".")
        head = parts[0]
        if head in ("self", "cls") and len(parts) == 2 and \
                "." in fact.qualname:
            cls = fact.qualname.split(".")[0]
            qual = f"{cls}.{parts[1]}"
            if qual in summary.functions:
                return Resolution(
                    kind="function", module=summary.dotted,
                    qualname=qual,
                    origin=f"{summary.dotted}.{qual}")
            return None
        if len(parts) == 1:
            if text in summary.functions and \
                    text in summary.module_functions:
                return Resolution(
                    kind="function", module=summary.dotted,
                    qualname=text,
                    origin=f"{summary.dotted}.{text}")
            if text in summary.classes:
                return Resolution(
                    kind="class", module=summary.dotted, qualname=text,
                    origin=f"{summary.dotted}.{text}")
            origin = summary.import_aliases.get(text)
            if origin is not None:
                return self.resolve_qualified(origin)
            return None
        # dotted call: instance method on a locally-typed name?
        local_type = fact.local_types.get(head)
        if local_type is not None and len(parts) == 2:
            ctor = self._resolve_text(local_type, summary, fact,
                                      hops - 1)
            if ctor is not None and ctor.kind == "function":
                # the local is bound from a *factory* call — follow the
                # factory's return annotation to the instance class
                # (``engine = self._chunk_engine(...)`` with
                # ``-> ParallelExtractionEngine``).
                owner = self.by_dotted[ctor.module]
                target = owner.functions.get(ctor.qualname)
                annotation = (target.ret_annotation
                              if target is not None else None)
                if annotation:
                    ctor = self._resolve_text(annotation, owner, target,
                                              hops - 1)
                else:
                    ctor = None
            if ctor is not None and ctor.kind == "class":
                owner = self.by_dotted[ctor.module]
                qual = f"{ctor.qualname}.{parts[1]}"
                if qual in owner.functions:
                    return Resolution(
                        kind="function", module=owner.dotted,
                        qualname=qual,
                        origin=f"{owner.dotted}.{qual}")
            return None
        origin = summary.import_aliases.get(head)
        if origin is not None:
            return self.resolve_qualified(
                ".".join([origin] + parts[1:]))
        return None

    def _resolve_text(self, text: str, summary: ModuleSummary,
                      fact: FunctionFact,
                      hops: int = _MAX_HOPS) -> Optional[Resolution]:
        """Resolve arbitrary dotted text seen inside ``summary``."""
        synthetic = CallFact(line=0, col=0, callee=text)
        return self.resolve_call(synthetic, fact, summary, hops)

    # -- call-graph edges ---------------------------------------------------

    def edges(self) -> Dict[Tuple[str, str], List[Resolution]]:
        """``(module, qualname) -> resolved callees``, stable order."""
        out: Dict[Tuple[str, str], List[Resolution]] = {}
        for summary in self.summaries:
            for qualname in sorted(summary.functions):
                fact = summary.functions[qualname]
                seen: Set[str] = set()
                resolved: List[Resolution] = []
                for call in fact.calls:
                    res = self.resolve_call(call, fact, summary)
                    if res is None or res.origin in seen:
                        continue
                    seen.add(res.origin)
                    resolved.append(res)
                out[(summary.dotted, qualname)] = resolved
        return out

    # -- dead-symbol reachability ------------------------------------------

    def reachable_functions(self) -> Set[Tuple[str, str]]:
        """``(module, qualname)`` pairs reachable from the roots.

        Roots are every module body, every method (classes may be
        driven dynamically), every ``__all__`` export, every dunder,
        and everything defined in an entrypoint module.  Edges are any
        name/attribute-chain *reference* — calling, storing, passing:
        a reference is liveness; only the never-mentioned die.
        """
        live: Set[Tuple[str, str]] = set()
        stack: List[Tuple[str, str]] = []

        def mark(module: str, qualname: str) -> None:
            key = (module, qualname)
            if key not in live:
                live.add(key)
                stack.append(key)

        def mark_reads(summary: ModuleSummary, reads) -> None:
            for name in reads:
                for target in self._read_targets(summary, name):
                    mark(*target)

        for summary in self.summaries:
            mark_reads(summary, summary.module_reads)
            for qualname in summary.functions:
                if "." in qualname or summary.is_entrypoint or \
                        qualname in summary.exported or \
                        (qualname.startswith("__")
                         and qualname.endswith("__")):
                    mark(summary.dotted, qualname)
            for name in summary.exported:
                # ``__all__`` re-export: the name is a string, so it
                # never shows up as a Name load — follow the import
                # alias to the defining module explicitly.
                origin = summary.import_aliases.get(name)
                if origin is not None:
                    res = self.resolve_qualified(origin,
                                                 label_taint=False)
                    if res is not None and res.kind == "function" \
                            and "." not in res.qualname:
                        mark(res.module, res.qualname)
                    continue
                if name in summary.functions:
                    continue
                # unaliased export (lazy ``__getattr__`` dispatch):
                # any module this one references that defines the
                # name may be the origin — mark them all; liveness
                # over-approximation only suppresses DEAD001.
                referenced = set(summary.import_aliases.values())
                referenced.update(summary.imported_modules)
                for dotted in referenced:
                    target = self.find_module(dotted)
                    if target is not None and \
                            name in target.module_functions:
                        mark(target.dotted, name)
        while stack:
            module, qualname = stack.pop()
            summary = self.by_dotted.get(module)
            fact = summary.functions.get(qualname) if summary else None
            if fact is not None:
                mark_reads(summary, fact.reads_all)
        return live

    def _read_targets(self, summary: ModuleSummary,
                      name: str) -> List[Tuple[str, str]]:
        """Module-level functions a name/attr-chain read refers to."""
        parts = name.split(".")
        head = parts[0]
        if head in ("self", "cls"):
            return []
        if len(parts) == 1:
            if name in summary.module_functions:
                return [(summary.dotted, name)]
            origin = summary.import_aliases.get(name)
            if origin is None:
                return []
            res = self.resolve_qualified(origin, label_taint=False)
        else:
            origin = summary.import_aliases.get(head)
            dotted = (".".join([origin] + parts[1:])
                      if origin is not None else name)
            res = self.resolve_qualified(dotted, label_taint=False)
        if res is not None and res.kind == "function" and \
                "." not in res.qualname:
            return [(res.module, res.qualname)]
        return []


# --------------------------------------------------------------------------
# --graph rendering
# --------------------------------------------------------------------------


def render_contracts(index: ProjectIndex) -> str:
    """The stage-contract table: dict keys produced/required per
    function (only rows with inferred shape facts)."""
    lines: List[str] = [
        "# stage contracts (inferred dict-key sets)",
        "# produces: constant keys of every returned dict display",
        "# requires: keys a parameter is indexed with (d['k'] "
        "hard, d.get/'k' in d soft)",
    ]
    for summary in index.summaries:
        for qualname in sorted(summary.functions):
            fact = summary.functions[qualname]
            rows: List[str] = []
            if fact.returns_dict_keys:
                keys = ", ".join(sorted(fact.returns_dict_keys))
                rows.append(f"  produces: {{{keys}}}")
            for i, name in enumerate(fact.params):
                use = fact.name_uses.get(name)
                if use is None or use.open_reads:
                    continue
                hard = sorted(use.key_reads)
                soft = sorted(set(use.key_tests) - set(use.key_reads))
                if not hard and not soft:
                    continue
                spec = ", ".join(hard + [f"{k}?" for k in soft])
                rows.append(f"  requires[{name}]: {{{spec}}}")
            if rows:
                lines.append(f"{summary.dotted}.{qualname}")
                lines.extend(rows)
    return "\n".join(lines) + "\n"


def render_concurrency(index: ProjectIndex) -> str:
    """The thread/fork/coroutine fact summary for ``--graph``.

    One line per concurrency-relevant site — thread spawns (with their
    targets), fork points, coroutines, blocking calls and resource
    acquisitions — so the CI artifact shows exactly which surfaces the
    FORK/ASYNC/THR/RES passes reason about.
    """
    lines: List[str] = ["# concurrency facts "
                        "(thread / fork / coroutine / resource sites)"]
    spawns = forks = coroutines = blocking = acquires = 0
    for summary in index.summaries:
        rows: List[str] = []
        for qualname in sorted(summary.functions):
            fact = summary.functions[qualname]
            if fact.is_async:
                coroutines += 1
                rows.append(f"  async {qualname} (line {fact.line})")
            for line in fact.thread_spawns:
                spawns += 1
                target = next((t for t, tl in fact.thread_targets
                               if tl == line), None)
                suffix = f" target={target}" if target else ""
                rows.append(f"  thread-spawn {qualname}:{line}{suffix}")
            for line in fact.fork_points:
                forks += 1
                rows.append(f"  fork-point {qualname}:{line}")
            for line, callee in fact.blocking_calls:
                blocking += 1
                rows.append(f"  blocking {qualname}:{line} {callee}()")
            for acq in fact.acquires:
                acquires += 1
                state = "with" if acq.managed else \
                    ("self" if acq.stored_attr else
                     acq.name or "unbound")
                rows.append(f"  acquire {qualname}:{acq.line} "
                            f"{acq.kind} [{state}]")
        if rows:
            lines.append(summary.dotted)
            lines.extend(rows)
    lines.append(f"# {spawns} thread spawns, {forks} fork points, "
                 f"{coroutines} coroutines, {blocking} blocking sites, "
                 f"{acquires} resource acquisitions")
    return "\n".join(lines) + "\n"


def render_graph(index: ProjectIndex) -> str:
    """The human-readable call graph for ``repro lint --graph``."""
    lines: List[str] = ["# call graph (resolved edges only)"]
    edges = index.edges()
    for (module, qualname), targets in sorted(edges.items()):
        if not targets:
            continue
        lines.append(f"{module}.{qualname}")
        for res in targets:
            tag = {"function": "->", "class": "=>",
                   "tainted": "!>"}[res.kind]
            lines.append(f"  {tag} {res.origin}")
    unresolved = sum(1 for targets in edges.values()
                     if not targets)
    lines.append(f"# {len(edges)} functions, "
                 f"{unresolved} with no resolved edges")
    return "\n".join(lines) + "\n"
