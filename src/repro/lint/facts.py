"""Per-function facts: the whole-program analysis substrate.

The lint engine parses each module exactly once; this module distils
the parsed AST into compact, *picklable* facts — name dataflow, call
sites, dict-key read/write sets, dataclass shapes, references — so the
whole-program passes (call graph, fixpoint interprocedural taint,
schema contracts, dead-symbol analysis) can run over the entire tree
without holding a single AST, and so parallel lint workers can ship
their module's facts back over a process-pool boundary.

Everything here is derived; nothing emits findings.  The project
passes in :mod:`repro.lint.callgraph`, :mod:`repro.lint.interproc` and
the SCHEMA/DEAD rules consume these summaries.
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.contracts import (
    BLOCKING_CALL_PREFIXES,
    BLOCKING_CALL_TEXTS,
    BLOCKING_METHODS,
    CHECKPOINT_SINK_METHODS,
    COROUTINE_SCHEDULE_CALLS,
    ENTRYPOINT_STEMS,
    EXECUTOR_HOP_CALLS,
    FORK_BARRIER_CALLS,
    FORK_POINT_CALLS,
    FORK_POINT_TEXTS,
    GROUPING_FUNCTIONS,
    LOOP_MARSHAL_CALLS,
    RESOURCE_FACTORY_CALLS,
    RESOURCE_FACTORY_TEXTS,
    RESOURCE_RELEASE_METHODS,
    TAINTED_ATTRIBUTES,
    THREAD_RELEASE_CALLS,
    THREAD_SAFE_TYPES,
    THREAD_SPAWN_CALLS,
)
from repro.lint.pragmas import PragmaIndex
from repro.lint.units import KEY_KINDS, SLOT_KINDS, SLOT_UNITS
from repro.lint.symbols import (
    FUNCTION_NODES,
    ModuleInfo,
    dotted_name,
    walk_scope,
)

#: dict methods whose constant first argument is a key *read*.
_KEY_READ_METHODS = frozenset({"get", "pop"})

#: operator spellings for the UNIT/KIND value sketches.
_BINOP_TEXT = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*",
               ast.Div: "/", ast.FloorDiv: "//", ast.Mod: "%"}
_CMP_TEXT = {ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<",
             ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
             ast.In: "in", ast.NotIn: "in"}

#: mapping methods whose first argument is a key (KIND002 flow).
_KEYED_METHODS = frozenset({"get", "pop", "setdefault",
                            "__contains__"})

#: value-sketch recursion cap — deep expressions go opaque.
_VALUE_DEPTH = 6

#: dict methods that erase key precision (full-shape reads).
_SHAPE_READ_METHODS = frozenset({"keys", "values", "items", "copy"})


@dataclass(frozen=True)
class ValueFact:
    """Structural sketch of one expression for the UNIT/KIND pass.

    A small recursive tree over the forms the unit algebra can
    evaluate — names, ``base.attr`` loads, constant-key subscripts,
    calls (by index into the function's call list), numeric literals,
    binary arithmetic and single comparisons.  ``merge`` covers
    conditional expressions (both branches), ``elt`` a comprehension's
    element (what ``sum(...)`` aggregates); anything else is
    ``opaque``.  Depth-capped at extraction so pickled summaries stay
    compact.
    """

    line: int
    form: str                     # "name"|"attr"|"key"|"call"|"num"|
    #                               "const"|"binop"|"compare"|"merge"|
    #                               "elt"|"opaque"
    name: Optional[str] = None    # the name, or the base's dotted text
    attr: Optional[str] = None    # attribute / constant key text
    call: Optional[int] = None    # index into FunctionFact.calls
    op: Optional[str] = None      # "+", "-", "*", "/", "==", "in" ...
    left: Optional["ValueFact"] = None
    right: Optional["ValueFact"] = None


#: interned leaf sketches — the unit algebra never reads ``line`` off
#: these forms (leaves carry no emit site; witnesses come from attr /
#: key / call facts), so every occurrence shares one instance and the
#: pickled summary cache stays close to its pre-units size.
_OPAQUE_FACT = ValueFact(line=0, form="opaque")
_CONST_FACT = ValueFact(line=0, form="const")
_NUM_FACT = ValueFact(line=0, form="num")
_NAME_FACTS: Dict[str, ValueFact] = {}


def _name_fact(name: str) -> ValueFact:
    fact = _NAME_FACTS.get(name)
    if fact is None:
        fact = _NAME_FACTS.setdefault(
            name, ValueFact(line=0, form="name", name=name))
    return fact


@dataclass(frozen=True)
class SinkWriteFact:
    """One store into a unit/kind-seeded field or record slot."""

    line: int
    col: int
    field: str                    # the seeded attr / key / slot name
    value: ValueFact
    aug: bool = False             # ``+=`` family
    target: str = "attr"          # "attr" | "key" | "slot" (dict display)


@dataclass(frozen=True)
class KeyFlowFact:
    """One non-constant key flowing into a kind-seeded mapping."""

    line: int
    col: int
    base: str                     # the mapping's seeded name
    key: ValueFact


@dataclass(frozen=True)
class ArgFact:
    """One positional (or keyword) argument at a call site."""

    reads: FrozenSet[str] = frozenset()
    #: human description of a taint source inside the expression
    #: (".packer@12"), or None when the expression is source-free.
    direct: Optional[str] = None
    #: indices (into the function's call list) nested in this arg.
    calls: Tuple[int, ...] = ()
    #: the argument is exactly a bare name (dict-flow tracking).
    is_name: Optional[str] = None
    #: the argument is exactly one call (index into the call list).
    is_call: Optional[int] = None
    #: structural sketch for the UNIT/KIND pass.
    value: Optional[ValueFact] = None


@dataclass(frozen=True)
class CallFact:
    """One call site, pre-digested for the project passes."""

    line: int
    col: int
    #: dotted source text of the callee ("helpers.classify",
    #: "self._snapshot_state"), or None for unresolvable expressions.
    callee: Optional[str]
    args: Tuple[ArgFact, ...] = ()
    kwargs: Tuple[Tuple[Optional[str], ArgFact], ...] = ()
    #: names read by the base of an attribute call (``enricher`` for
    #: ``enricher.enrich_all(...)``); empty for plain-name calls.
    base_reads: FrozenSet[str] = frozenset()
    base_direct: Optional[str] = None
    #: the call's method name is a CheckpointStore write API.
    is_sink: bool = False
    #: rewritten from ``pool.submit(f, ...)`` — ``callee`` is the
    #: submitted callable and ``args`` the forwarded arguments, so the
    #: taint engine treats the submission as a direct call.
    submitted: bool = False


@dataclass(frozen=True)
class BindFact:
    """Merged dataflow for one local name (or the return value)."""

    reads: FrozenSet[str] = frozenset()
    calls: Tuple[int, ...] = ()
    direct: Optional[str] = None
    #: the name's one assignment is exactly one call (its index); the
    #: schema pass may then treat the name as that call's result.
    is_call: Optional[int] = None


@dataclass
class NameUse:
    """How one function uses one name as a keyed record/dict."""

    #: hard requirements: ``d["k"]`` loads, ``d.pop("k")`` — a missing
    #: key raises, so the producer *must* write it.
    key_reads: Dict[str, int] = field(default_factory=dict)
    #: soft probes: ``"k" in d``, ``d.get("k")`` — tolerant of absence,
    #: so they count as uses (SCHEMA001) but not requirements
    #: (SCHEMA002).
    key_tests: Dict[str, int] = field(default_factory=dict)
    key_writes: Dict[str, int] = field(default_factory=dict)
    #: (call index, positional arg index) the name is passed whole to.
    forwards: List[Tuple[int, int]] = field(default_factory=list)
    #: unknown writes may exist (update(expr), non-constant key ...).
    open_writes: bool = False
    #: unknown reads may exist (iteration, aliasing, ** expansion ...).
    open_reads: bool = False
    returned: bool = False
    #: the name was initialised from dict displays only.
    dict_inits: int = 0
    other_inits: int = 0

    @property
    def closed_writes(self) -> bool:
        """Every key ever written is known."""
        return (self.dict_inits > 0 and self.other_inits == 0
                and not self.open_writes)


@dataclass(frozen=True)
class AcquireFact:
    """One resource-acquisition site (``open``, ``mmap`` ...)."""

    line: int
    col: int
    kind: str                    # "open", "mmap.mmap", "socket.socket" ...
    #: local name the resource is bound to, or None when unbound.
    name: Optional[str] = None
    #: acquired directly as a ``with`` context expression.
    managed: bool = False
    #: the acquisition is the value of a ``self.attr = ...`` store.
    stored_attr: bool = False
    #: index into the function's call list (interprocedural matching).
    call_index: Optional[int] = None


@dataclass
class FunctionFact:
    """Everything the project passes know about one function."""

    qualname: str                     # "func" or "Class.meth"
    line: int
    params: Tuple[str, ...] = ()      # excludes self/cls
    param_annotations: Tuple[Optional[str], ...] = ()
    binds: Dict[str, BindFact] = field(default_factory=dict)
    calls: List[CallFact] = field(default_factory=list)
    ret: BindFact = field(default_factory=BindFact)
    returned_names: FrozenSet[str] = frozenset()
    #: constant keys of every returned dict display, line-stamped;
    #: None when some return value is not a closed dict shape.
    returns_dict_keys: Optional[Dict[str, int]] = None
    has_return_value: bool = False
    name_uses: Dict[str, NameUse] = field(default_factory=dict)
    #: local name -> dotted constructor text ("CheckpointStore").
    local_types: Dict[str, str] = field(default_factory=dict)
    #: ``Cls(**data)`` sites: (callee text, data name, line).
    starstar_calls: Tuple[Tuple[str, str, int], ...] = ()
    #: ``param.attr`` loads, per param index: (attr, line).
    param_attr_reads: Dict[int, List[Tuple[str, int]]] = \
        field(default_factory=dict)
    #: every Name load + dotted chain read in scope (reachability).
    reads_all: FrozenSet[str] = frozenset()
    #: resolved text of the return annotation, for instance typing of
    #: locals bound from factory calls ("ParallelExtractionEngine").
    ret_annotation: Optional[str] = None
    # -- concurrency facts (FORK/ASYNC/THR rule families) ------------------
    is_async: bool = False
    #: names declared ``global`` inside the body.
    global_names: FrozenSet[str] = frozenset()
    #: call indices appearing directly under an ``await``.
    awaited_calls: FrozenSet[int] = frozenset()
    #: call indices nested in arguments of a scheduling/marshalling
    #: call (``asyncio.run(main())``, ``call_soon(lambda: f())``).
    sched_arg_calls: FrozenSet[int] = frozenset()
    #: call indices nested in arguments of an executor hop
    #: (``run_in_executor``/``to_thread``) — they run *off* the loop,
    #: so ASYNC001 must not follow them.
    hop_arg_calls: FrozenSet[int] = frozenset()
    #: lines of direct thread constructions (``threading.Thread``).
    thread_spawns: Tuple[int, ...] = ()
    #: (target callee text, line) per thread construction with a
    #: ``target=`` keyword.
    thread_targets: Tuple[Tuple[str, int], ...] = ()
    #: lines of direct fork points (``ProcessPoolExecutor``/``os.fork``).
    fork_points: Tuple[int, ...] = ()
    #: lines of fork-barrier calls (``.quiesced()``/``fork_barrier()``).
    barrier_lines: Tuple[int, ...] = ()
    #: lines of thread-release calls (``.close``/``.join``/``.stop``).
    release_lines: Tuple[int, ...] = ()
    #: (line, description) of syntactically blocking, non-awaited calls.
    blocking_calls: Tuple[Tuple[int, str], ...] = ()
    #: (name, line, assigned-None) per simple local assignment, in
    #: source order — the FORK002 set-before-fork ordering substrate.
    assign_events: Tuple[Tuple[str, int, bool], ...] = ()
    # -- kind/unit facts (UNIT/KIND rule families) -------------------------
    #: outermost arithmetic / comparison expressions in the body.
    arith_events: Tuple[ValueFact, ...] = ()
    #: (name, RHS sketch) per simple single-name assignment;
    #: ``x += v`` is recorded as ``x = x <op> v``.
    unit_binds: Tuple[Tuple[str, ValueFact], ...] = ()
    #: stores into seeded fields / record slots (UNIT002/003 sinks).
    sink_writes: Tuple[SinkWriteFact, ...] = ()
    #: non-constant keys into kind-seeded mappings (KIND002).
    key_flows: Tuple[KeyFlowFact, ...] = ()
    #: sketch of every ``return`` expression (interprocedural units).
    ret_values: Tuple[ValueFact, ...] = ()
    # -- resource-lifecycle facts (RES family) -----------------------------
    acquires: Tuple[AcquireFact, ...] = ()
    #: names a release method is called on anywhere in the body.
    closed_names: FrozenSet[str] = frozenset()
    #: subset of closed_names whose release sits in a ``finally``.
    finally_closed_names: FrozenSet[str] = frozenset()
    #: names later used as ``with name:`` context expressions.
    with_names: FrozenSet[str] = frozenset()
    #: call indices used directly as ``with`` context expressions.
    with_call_indices: FrozenSet[int] = frozenset()
    #: call indices whose value is stored onto an attribute
    #: (``self.sock = make_socket()``) — ownership moves to the object.
    attr_store_call_indices: FrozenSet[int] = frozenset()
    #: names whose value escapes the function: returned, yielded,
    #: stored on an attribute, or passed whole to another call.
    escaping_names: FrozenSet[str] = frozenset()

    def param_index(self, name: str) -> Optional[int]:
        """Positional index of parameter ``name``, or None."""
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassFact:
    """Shape of one class: fields, attributes, bases."""

    name: str
    line: int
    is_dataclass: bool = False
    fields: Tuple[str, ...] = ()
    #: fields + methods + properties + class/self-assigned attributes.
    attrs: FrozenSet[str] = frozenset()
    bases: Tuple[str, ...] = ()


@dataclass
class ModuleSummary:
    """The picklable whole-program view of one parsed module."""

    relpath: str
    parts: Tuple[str, ...]
    dotted: str
    pragmas: PragmaIndex
    import_aliases: Dict[str, str] = field(default_factory=dict)
    imported_modules: FrozenSet[str] = frozenset()
    module_functions: Dict[str, int] = field(default_factory=dict)
    classes: Dict[str, ClassFact] = field(default_factory=dict)
    functions: Dict[str, FunctionFact] = field(default_factory=dict)
    #: names read at module/class level, outside any function body.
    module_reads: FrozenSet[str] = frozenset()
    #: strings listed in ``__all__`` (declared public API).
    exported: FrozenSet[str] = frozenset()
    is_grouping: bool = False
    is_entrypoint: bool = False
    #: module-level simple assignments: name -> first line.
    module_assigns: Dict[str, int] = field(default_factory=dict)
    #: module-level names initialised to a *mutable* value (dict/list/
    #: set displays or constructors) that is not a sanctioned
    #: cross-thread type — the THR001 candidate set.
    module_mutables: Dict[str, int] = field(default_factory=dict)


# --------------------------------------------------------------------------
# Expression helpers
# --------------------------------------------------------------------------


def _expr_reads(expr: ast.AST) -> FrozenSet[str]:
    """Every Name read (Load context) anywhere under ``expr``."""
    return frozenset(
        n.id for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load))


def _const_str(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


def _dict_display_keys(expr: ast.AST) -> Optional[Dict[str, int]]:
    """``{key: line}`` for an all-constant-key dict display, else None."""
    if not isinstance(expr, ast.Dict):
        return None
    out: Dict[str, int] = {}
    for key in expr.keys:
        text = _const_str(key) if key is not None else None
        if text is None:
            return None  # ** expansion or computed key
        out[text] = key.lineno
    return out


def _annotation_text(expr: Optional[ast.AST]) -> Optional[str]:
    if expr is None:
        return None
    text = _const_str(expr)
    if text is not None:
        return text.strip("'\"")
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return dotted_name(expr)
    return None


# --------------------------------------------------------------------------
# Per-function extraction
# --------------------------------------------------------------------------


def _assignment_pairs(nodes) -> List[Tuple[List[str], ast.expr]]:
    """(target names, value expr) pairs from one scope's nodes."""
    pairs: List[Tuple[List[str], ast.expr]] = []

    def names_of(target: ast.expr) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: List[str] = []
            for element in target.elts:
                out.extend(names_of(element))
            return out
        return []

    for node in nodes:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                pairs.append((names_of(target), node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            pairs.append((names_of(node.target), node.value))
        elif isinstance(node, ast.AugAssign):
            pairs.append((names_of(node.target), node.value))
        elif isinstance(node, ast.NamedExpr):
            pairs.append((names_of(node.target), node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            pairs.append((names_of(node.target), node.iter))
        elif isinstance(node, ast.withitem) and \
                node.optional_vars is not None:
            pairs.append((names_of(node.optional_vars),
                          node.context_expr))
    return pairs


def _call_shape(call: ast.Call) -> Tuple[Optional[str], List[ast.expr],
                                         List[Tuple[Optional[str],
                                                    ast.expr]],
                                         Optional[ast.expr], bool]:
    """(callee text, positional args, kwargs, base expr, submitted)."""
    func = call.func
    submitted = False
    args = list(call.args)
    if isinstance(func, ast.Attribute) and func.attr == "submit" and args:
        # pool.submit(f, ...) — model as a direct call to f.
        submitted = True
        callee = dotted_name(args[0])
        return (callee, args[1:],
                [(kw.arg, kw.value) for kw in call.keywords],
                func.value, submitted)
    callee = dotted_name(func)
    base = func.value if isinstance(func, ast.Attribute) else None
    return (callee, args,
            [(kw.arg, kw.value) for kw in call.keywords], base,
            submitted)


class _FunctionSummarizer:
    """Builds one :class:`FunctionFact` from one function node."""

    def __init__(self, func, qualname: str) -> None:
        self.func = func
        self.qualname = qualname
        #: one cached traversal of the function's own scope —
        #: every sub-extractor iterates this list instead of
        #: re-walking the AST (the summarizer's hot path).
        self.scope_nodes = list(walk_scope(func))
        self.call_nodes = [n for n in self.scope_nodes
                           if isinstance(n, ast.Call)]
        self.call_index = {id(n): i
                           for i, n in enumerate(self.call_nodes)}
        self.assign_pairs = _assignment_pairs(self.scope_nodes)
        args = func.args
        ordered = [a for a in (args.posonlyargs + args.args
                               + args.kwonlyargs)]
        if ordered and ordered[0].arg in ("self", "cls"):
            ordered = ordered[1:]
        self.params = tuple(a.arg for a in ordered)
        self.annotations = tuple(_annotation_text(a.annotation)
                                 for a in ordered)
        #: Name nodes consumed by a recognised structured use; any
        #: *other* Load of a tracked name makes its shape open.
        self.recognized: Set[int] = set()

    # -- shared sub-extractors --------------------------------------------

    def _expr_facts(self, expr: ast.AST) -> Tuple[FrozenSet[str],
                                                  Optional[str],
                                                  Tuple[int, ...]]:
        """One walk of ``expr``: (name reads, taint source, call indices).

        The taint source is the first enrichment-owned attribute load
        or constant subscript read of the same keys (the
        field-sensitive half of the taint lattice).  Fusing the three
        extractions into a single walk matters: expressions are
        visited many times per function, and this is the summarizer's
        hot path.
        """
        reads: Set[str] = set()
        direct: Optional[str] = None
        calls: List[int] = []
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    reads.add(node.id)
            elif isinstance(node, ast.Call):
                ci = self.call_index.get(id(node))
                if ci is not None:
                    calls.append(ci)
            elif direct is None and isinstance(node, ast.Attribute):
                if isinstance(node.ctx, ast.Load) and \
                        node.attr in TAINTED_ATTRIBUTES:
                    direct = f".{node.attr} read at line {node.lineno}"
            elif direct is None and isinstance(node, ast.Subscript):
                if isinstance(node.ctx, ast.Load):
                    key = _const_str(node.slice)
                    if key in TAINTED_ATTRIBUTES:
                        direct = f"['{key}'] read at line {node.lineno}"
        return frozenset(reads), direct, tuple(calls)

    def _arg_fact(self, expr: ast.expr) -> ArgFact:
        is_name = expr.id if isinstance(expr, ast.Name) else None
        is_call = (self.call_index.get(id(expr))
                   if isinstance(expr, ast.Call) else None)
        if is_name is not None:
            self.recognized.add(id(expr))
        reads, direct, calls = self._expr_facts(expr)
        return ArgFact(
            reads=reads, direct=direct,
            calls=calls, is_name=is_name,
            is_call=is_call, value=self._value_fact(expr))

    def _value_fact(self, expr: ast.AST,
                    depth: int = 0) -> ValueFact:
        """Structural sketch of ``expr`` for the unit algebra."""
        line = getattr(expr, "lineno", 0)
        if depth > _VALUE_DEPTH:
            return _OPAQUE_FACT
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float)) and \
                    not isinstance(expr.value, bool):
                return _NUM_FACT
            return _CONST_FACT
        if isinstance(expr, ast.Name):
            return _name_fact(expr.id)
        if isinstance(expr, ast.Attribute):
            return ValueFact(line=line, form="attr",
                             name=dotted_name(expr.value),
                             attr=expr.attr)
        if isinstance(expr, ast.Subscript):
            key = _const_str(expr.slice)
            if key is not None:
                return ValueFact(line=line, form="key",
                                 name=dotted_name(expr.value),
                                 attr=key)
            return _OPAQUE_FACT
        if isinstance(expr, ast.Call):
            return ValueFact(line=line, form="call",
                             call=self.call_index.get(id(expr)),
                             name=dotted_name(expr.func))
        if isinstance(expr, ast.BinOp):
            op = _BINOP_TEXT.get(type(expr.op))
            if op is None:
                return _OPAQUE_FACT
            return ValueFact(
                line=line, form="binop", op=op,
                left=self._value_fact(expr.left, depth + 1),
                right=self._value_fact(expr.right, depth + 1))
        if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
            op = _CMP_TEXT.get(type(expr.ops[0]))
            if op is None:
                return _OPAQUE_FACT
            return ValueFact(
                line=line, form="compare", op=op,
                left=self._value_fact(expr.left, depth + 1),
                right=self._value_fact(expr.comparators[0],
                                       depth + 1))
        if isinstance(expr, ast.UnaryOp):
            return self._value_fact(expr.operand, depth + 1)
        if isinstance(expr, ast.IfExp):
            return ValueFact(
                line=line, form="merge",
                left=self._value_fact(expr.body, depth + 1),
                right=self._value_fact(expr.orelse, depth + 1))
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp,
                             ast.SetComp)):
            return ValueFact(
                line=line, form="elt",
                left=self._value_fact(expr.elt, depth + 1))
        if isinstance(expr, ast.Starred):
            return self._value_fact(expr.value, depth + 1)
        return _OPAQUE_FACT

    # -- the pass ----------------------------------------------------------

    def summarize(self) -> FunctionFact:
        fact = FunctionFact(
            qualname=self.qualname, line=self.func.lineno,
            params=self.params, param_annotations=self.annotations)
        self._collect_calls(fact)
        self._collect_binds(fact)
        self._collect_returns(fact)
        self._collect_name_uses(fact)
        self._collect_attr_reads(fact)
        self._collect_concurrency(fact)
        self._collect_resources(fact)
        self._collect_units(fact)
        # liveness references made inside nested defs and lambdas
        # count for the enclosing function, so after the (cached)
        # own-scope nodes we descend into each nested scope too.
        reads: Set[str] = set()

        def note(node: ast.AST) -> None:
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    reads.add(node.id)
            elif isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain is not None:
                    reads.add(chain)

        for node in self.scope_nodes:
            note(node)
            if isinstance(node, FUNCTION_NODES + (ast.Lambda,)):
                for sub in ast.walk(node):
                    note(sub)
        fact.reads_all = frozenset(reads)
        return fact

    def _collect_calls(self, fact: FunctionFact) -> None:
        starstar: List[Tuple[str, str, int]] = []
        for node in self.call_nodes:
            callee, args, kwargs, base, submitted = _call_shape(node)
            base_facts = (self._expr_facts(base)
                          if base is not None else None)
            for kw_name, kw_value in kwargs:
                if kw_name is None and \
                        isinstance(kw_value, ast.Name) and \
                        callee is not None:
                    starstar.append((callee, kw_value.id, node.lineno))
            fact.calls.append(CallFact(
                line=node.lineno, col=node.col_offset + 1,
                callee=callee,
                args=tuple(self._arg_fact(a) for a in args),
                kwargs=tuple((name, self._arg_fact(value))
                             for name, value in kwargs),
                base_reads=(base_facts[0] if base is not None
                            else frozenset()),
                base_direct=(base_facts[1]
                             if base is not None else None),
                is_sink=(isinstance(node.func, ast.Attribute)
                         and node.func.attr in CHECKPOINT_SINK_METHODS),
                submitted=submitted))
        fact.starstar_calls = tuple(starstar)

    def _collect_binds(self, fact: FunctionFact) -> None:
        merged: Dict[str, Dict] = {}
        for names, value in self.assign_pairs:
            reads, direct, calls = self._expr_facts(value)
            exact_call = (self.call_index.get(id(value))
                          if isinstance(value, ast.Call) else None)
            ctor = (dotted_name(value.func)
                    if isinstance(value, ast.Call) else None)
            for name in names:
                slot = merged.setdefault(
                    name, {"reads": set(), "calls": set(),
                           "direct": None, "exact": [], "assigns": 0})
                slot["reads"] |= reads
                slot["calls"] |= set(calls)
                slot["assigns"] += 1
                if exact_call is not None and len(names) == 1:
                    slot["exact"].append(exact_call)
                if direct is not None and slot["direct"] is None:
                    slot["direct"] = direct
                if ctor is not None and len(names) == 1:
                    fact.local_types[name] = ctor
        fact.binds = {
            name: BindFact(
                reads=frozenset(slot["reads"]),
                calls=tuple(sorted(slot["calls"])),
                direct=slot["direct"],
                is_call=(slot["exact"][0]
                         if slot["assigns"] == 1
                         and len(slot["exact"]) == 1 else None))
            for name, slot in merged.items()}

    def _collect_returns(self, fact: FunctionFact) -> None:
        reads: Set[str] = set()
        calls: Set[int] = set()
        direct: Optional[str] = None
        returned_names: Set[str] = set()
        dict_keys: Dict[str, int] = {}
        closed = True
        saw_value = False
        for node in self.scope_nodes:
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            saw_value = True
            value = node.value
            value_reads, value_direct, value_calls = \
                self._expr_facts(value)
            reads |= value_reads
            calls |= set(value_calls)
            if direct is None:
                direct = value_direct
            if isinstance(value, ast.Name):
                returned_names.add(value.id)
                closed = False  # resolved later from the name's use
            else:
                keys = _dict_display_keys(value)
                if keys is None:
                    closed = False
                else:
                    dict_keys.update(keys)
        fact.ret = BindFact(reads=frozenset(reads),
                            calls=tuple(sorted(calls)), direct=direct)
        fact.returned_names = frozenset(returned_names)
        fact.has_return_value = saw_value
        fact.returns_dict_keys = (dict_keys
                                  if saw_value and closed else None)

    # -- dict-shape uses ---------------------------------------------------

    def _use(self, fact: FunctionFact, name: str) -> NameUse:
        return fact.name_uses.setdefault(name, NameUse())

    def _collect_name_uses(self, fact: FunctionFact) -> None:
        for name in self.params:
            self._use(fact, name)
        self._scan_inits(fact)
        self._scan_subscripts(fact)
        self._scan_methods(fact)
        self._scan_flows(fact)
        self._scan_loose_reads(fact)

    def _scan_inits(self, fact: FunctionFact) -> None:
        for names, value in self.assign_pairs:
            keys = _dict_display_keys(value)
            for name in names:
                use = self._use(fact, name)
                if keys is not None and len(names) == 1:
                    use.dict_inits += 1
                    for key, line in keys.items():
                        use.key_writes.setdefault(key, line)
                else:
                    use.other_inits += 1

    def _scan_subscripts(self, fact: FunctionFact) -> None:
        for node in self.scope_nodes:
            if not isinstance(node, ast.Subscript) or \
                    not isinstance(node.value, ast.Name):
                continue
            name = node.value.id
            self.recognized.add(id(node.value))
            use = self._use(fact, name)
            key = _const_str(node.slice)
            if key is None:
                if isinstance(node.ctx, ast.Store):
                    use.open_writes = True
                else:
                    use.open_reads = True
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                use.key_writes.setdefault(key, node.lineno)
            else:
                use.key_reads.setdefault(key, node.lineno)

    def _scan_methods(self, fact: FunctionFact) -> None:
        for node in self.call_nodes:
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)):
                continue
            name, method = func.value.id, func.attr
            use = self._use(fact, name)
            self.recognized.add(id(func.value))
            if method in _KEY_READ_METHODS and node.args:
                key = _const_str(node.args[0])
                if key is None:
                    use.open_reads = True
                elif method == "pop" and len(node.args) == 1:
                    use.key_reads.setdefault(key, node.lineno)
                else:  # get / pop-with-default tolerate absence
                    use.key_tests.setdefault(key, node.lineno)
            elif method == "setdefault" and node.args:
                key = _const_str(node.args[0])
                if key is None:
                    use.open_writes = True
                else:
                    use.key_writes.setdefault(key, node.lineno)
                    use.key_tests.setdefault(key, node.lineno)
            elif method == "update":
                keys = (_dict_display_keys(node.args[0])
                        if len(node.args) == 1 else None)
                if keys is None:
                    use.open_writes = True
                else:
                    for key, line in keys.items():
                        use.key_writes.setdefault(key, line)
            elif method in _SHAPE_READ_METHODS:
                use.open_reads = True
            else:
                # unknown method: assume it can read and write anything
                use.open_reads = True
                use.open_writes = True

    def _scan_flows(self, fact: FunctionFact) -> None:
        # whole-name forwarding into calls, `in` tests, returns,
        # iteration, ** expansion.
        for index, call in enumerate(fact.calls):
            for pos, arg in enumerate(call.args):
                if arg.is_name is not None:
                    self._use(fact, arg.is_name).forwards.append(
                        (index, pos))
            for kw_name, arg in call.kwargs:
                if arg.is_name is not None:
                    use = self._use(fact, arg.is_name)
                    if kw_name is None:       # **name expansion
                        use.open_reads = True
                    else:                     # kw forwarding: opaque
                        use.open_reads = True
        for node in self.scope_nodes:
            if isinstance(node, ast.Compare):
                for op, comp in zip(node.ops, node.comparators):
                    if isinstance(op, (ast.In, ast.NotIn)) and \
                            isinstance(comp, ast.Name):
                        self.recognized.add(id(comp))
                        key = _const_str(node.left)
                        use = self._use(fact, comp.id)
                        if key is None:
                            use.open_reads = True
                        else:
                            use.key_tests.setdefault(key, node.lineno)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and \
                    isinstance(node.iter, ast.Name):
                self.recognized.add(id(node.iter))
                self._use(fact, node.iter.id).open_reads = True
            elif isinstance(node, ast.Return) and \
                    isinstance(node.value, ast.Name):
                self.recognized.add(id(node.value))
                self._use(fact, node.value.id).returned = True
            elif isinstance(node, ast.comprehension) and \
                    isinstance(node.iter, ast.Name):
                self.recognized.add(id(node.iter))
                self._use(fact, node.iter.id).open_reads = True

    def _scan_loose_reads(self, fact: FunctionFact) -> None:
        """Any unrecognised Load of a tracked name opens its shape."""
        for node in self.scope_nodes:
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load) and \
                    node.id in fact.name_uses and \
                    id(node) not in self.recognized:
                use = fact.name_uses[node.id]
                use.open_reads = True
                use.open_writes = True

    def _collect_attr_reads(self, fact: FunctionFact) -> None:
        for node in self.scope_nodes:
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load) and \
                    isinstance(node.value, ast.Name):
                index = fact.param_index(node.value.id)
                if index is not None:
                    fact.param_attr_reads.setdefault(index, []).append(
                        (node.attr, node.lineno))

    # -- kind/unit facts ---------------------------------------------------

    @staticmethod
    def _seeded_slot(name: Optional[str]) -> bool:
        return name is not None and (name in SLOT_UNITS
                                     or name in SLOT_KINDS)

    @staticmethod
    def _mapping_base(expr: ast.AST) -> Optional[str]:
        """Seeded-mapping name of a subscript/method base, or None."""
        if isinstance(expr, ast.Name) and expr.id in KEY_KINDS:
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr in KEY_KINDS:
            return expr.attr
        return None

    def _collect_units(self, fact: FunctionFact) -> None:
        """Arithmetic events, seeded-sink writes and key flows.

        Sink and key events are filtered through the seed tables
        (:mod:`repro.lint.units`) at extraction time, which is why the
        summary cache keys on the seed fingerprint.
        """
        arith: List[ValueFact] = []
        nested: Set[int] = set()
        unit_binds: List[Tuple[str, ValueFact]] = []
        sinks: List[SinkWriteFact] = []
        flows: List[KeyFlowFact] = []
        rets: List[ValueFact] = []
        for node in self.scope_nodes:
            if isinstance(node, (ast.BinOp, ast.Compare)) and \
                    id(node) not in nested:
                sketch = self._value_fact(node)
                if sketch.form in ("binop", "compare"):
                    arith.append(sketch)
                for sub in ast.walk(node):
                    if sub is not node and \
                            isinstance(sub, (ast.BinOp, ast.Compare)):
                        nested.add(id(sub))
            elif isinstance(node, ast.Return) and \
                    node.value is not None:
                rets.append(self._value_fact(node.value))
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    text = (_const_str(key)
                            if key is not None else None)
                    if text is not None and self._seeded_slot(text):
                        sinks.append(SinkWriteFact(
                            line=value.lineno,
                            col=value.col_offset + 1, field=text,
                            value=self._value_fact(value),
                            target="slot"))
            elif isinstance(node, ast.Subscript):
                base = self._mapping_base(node.value)
                if base is not None and \
                        not isinstance(node.slice,
                                       (ast.Constant, ast.Slice,
                                        ast.Tuple)):
                    flows.append(KeyFlowFact(
                        line=node.lineno, col=node.col_offset + 1,
                        base=base,
                        key=self._value_fact(node.slice)))

        for node in self.scope_nodes:
            if isinstance(node, ast.Assign):
                targets, value, op = node.targets, node.value, None
            elif isinstance(node, ast.AnnAssign) and \
                    node.value is not None:
                targets, value, op = [node.target], node.value, None
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
                value = node.value
                op = _BINOP_TEXT.get(type(node.op))
            else:
                continue
            sketch: Optional[ValueFact] = None
            for target in targets:
                if isinstance(target, ast.Name):
                    if sketch is None:
                        sketch = self._value_fact(value)
                    rhs = sketch
                    if op is not None:
                        rhs = ValueFact(
                            line=node.lineno, form="binop", op=op,
                            left=ValueFact(line=node.lineno,
                                           form="name",
                                           name=target.id),
                            right=sketch)
                    unit_binds.append((target.id, rhs))
                elif isinstance(target, ast.Attribute) and \
                        self._seeded_slot(target.attr):
                    if sketch is None:
                        sketch = self._value_fact(value)
                    sinks.append(SinkWriteFact(
                        line=node.lineno,
                        col=target.col_offset + 1,
                        field=target.attr, value=sketch,
                        aug=op is not None))
                elif isinstance(target, ast.Subscript):
                    key = _const_str(target.slice)
                    if key is not None and self._seeded_slot(key):
                        if sketch is None:
                            sketch = self._value_fact(value)
                        sinks.append(SinkWriteFact(
                            line=node.lineno,
                            col=target.col_offset + 1,
                            field=key, value=sketch,
                            aug=op is not None, target="key"))

        for node in self.call_nodes:
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in _KEYED_METHODS and node.args:
                base = self._mapping_base(func.value)
                if base is not None and not isinstance(
                        node.args[0], ast.Constant):
                    flows.append(KeyFlowFact(
                        line=node.lineno,
                        col=node.col_offset + 1, base=base,
                        key=self._value_fact(node.args[0])))

        fact.arith_events = tuple(arith)
        fact.unit_binds = tuple(unit_binds)
        fact.sink_writes = tuple(sinks)
        fact.key_flows = tuple(flows)
        fact.ret_values = tuple(rets)

    # -- concurrency facts -------------------------------------------------

    def _collect_concurrency(self, fact: FunctionFact) -> None:
        fact.is_async = isinstance(self.func, ast.AsyncFunctionDef)
        fact.ret_annotation = _annotation_text(self.func.returns)
        global_names: Set[str] = set()
        awaited: Set[int] = set()
        assign_events: List[Tuple[str, int, bool]] = []
        for node in self.scope_nodes:
            if isinstance(node, ast.Global):
                global_names.update(node.names)
            elif isinstance(node, ast.Await) and \
                    isinstance(node.value, ast.Call):
                ci = self.call_index.get(id(node.value))
                if ci is not None:
                    awaited.add(ci)
            elif isinstance(node, (ast.Assign, ast.AnnAssign,
                                   ast.AugAssign)):
                value = node.value
                if value is None:
                    continue
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                is_none = (isinstance(value, ast.Constant)
                           and value.value is None)
                for target in targets:
                    if isinstance(target, ast.Name):
                        assign_events.append(
                            (target.id, node.lineno, is_none))
        fact.global_names = frozenset(global_names)
        fact.awaited_calls = frozenset(awaited)
        fact.assign_events = tuple(
            sorted(assign_events, key=lambda e: e[1]))

        spawns: List[int] = []
        targets: List[Tuple[str, int]] = []
        for node in self.call_nodes:
            callee = dotted_name(node.func)
            if callee is None or \
                    callee.split(".")[-1] not in THREAD_SPAWN_CALLS:
                continue
            spawns.append(node.lineno)
            for kw in node.keywords:
                if kw.arg == "target":
                    text = dotted_name(kw.value)
                    if text is not None:
                        targets.append((text, node.lineno))
        fact.thread_spawns = tuple(spawns)
        fact.thread_targets = tuple(targets)

        forks: List[int] = []
        barriers: List[int] = []
        releases: List[int] = []
        blocking: List[Tuple[int, str]] = []
        sched_args: Set[int] = set()
        hop_args: Set[int] = set()
        # first pass: scheduling/hop argument membership, which the
        # blocking-call pass below needs for *every* call, including
        # ones indexed before their scheduler
        # (``await wait_for(reader.read(n), ...)``).
        for call in fact.calls:
            callee = call.callee
            if callee is None:
                continue
            last = callee.split(".")[-1]
            if last in COROUTINE_SCHEDULE_CALLS or \
                    last in LOOP_MARSHAL_CALLS:
                target = sched_args
            elif last in EXECUTOR_HOP_CALLS:
                target = hop_args
            else:
                continue
            for arg in call.args:
                target.update(arg.calls)
                if arg.is_call is not None:
                    target.add(arg.is_call)
            for _, arg in call.kwargs:
                target.update(arg.calls)
                if arg.is_call is not None:
                    target.add(arg.is_call)
        for ci, call in enumerate(fact.calls):
            callee = call.callee
            if callee is None:
                continue
            last = callee.split(".")[-1]
            if not call.submitted and (last in FORK_POINT_CALLS
                                       or callee in FORK_POINT_TEXTS):
                forks.append(call.line)
            if last in FORK_BARRIER_CALLS:
                barriers.append(call.line)
            if "." in callee and last in THREAD_RELEASE_CALLS and \
                    not call.submitted:
                releases.append(call.line)
            if ci in awaited or call.submitted or \
                    ci in sched_args or ci in hop_args:
                # awaited, pool-submitted, scheduler-wrapped and
                # executor-hopped calls never block the loop
                continue
            if callee in BLOCKING_CALL_TEXTS or \
                    callee.split(".")[0] in BLOCKING_CALL_PREFIXES or \
                    ("." in callee and last in BLOCKING_METHODS):
                blocking.append((call.line, callee))
        fact.fork_points = tuple(forks)
        fact.barrier_lines = tuple(sorted(barriers))
        fact.release_lines = tuple(sorted(releases))
        fact.blocking_calls = tuple(blocking)
        fact.sched_arg_calls = frozenset(sched_args)
        fact.hop_arg_calls = frozenset(hop_args)

    # -- resource-lifecycle facts ------------------------------------------

    def _collect_resources(self, fact: FunctionFact) -> None:
        with_call_ids: Set[int] = set()
        with_names: Set[str] = set()
        attr_store_ids: Set[int] = set()
        escaping: Set[str] = set(fact.returned_names)
        bound_name: Dict[int, str] = {}
        for names, value in self.assign_pairs:
            if isinstance(value, ast.Call) and len(names) == 1:
                bound_name[id(value)] = names[0]
        for node in self.scope_nodes:
            if isinstance(node, ast.withitem):
                ctx = node.context_expr
                if isinstance(ctx, ast.Call):
                    with_call_ids.add(id(ctx))
                elif isinstance(ctx, ast.Name):
                    with_names.add(ctx.id)
                elif isinstance(ctx, ast.Attribute):
                    chain = dotted_name(ctx)
                    if chain is not None:  # "self._lock" guard texts
                        with_names.add(chain)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Attribute):
                if isinstance(node.value, ast.Call):
                    attr_store_ids.add(id(node.value))
                elif isinstance(node.value, ast.Name):
                    escaping.add(node.value.id)
            elif isinstance(node, (ast.Yield, ast.YieldFrom)) and \
                    isinstance(node.value, ast.Name):
                escaping.add(node.value.id)
        for call in fact.calls:
            for arg in call.args:
                if arg.is_name is not None:
                    escaping.add(arg.is_name)
            for _, arg in call.kwargs:
                if arg.is_name is not None:
                    escaping.add(arg.is_name)

        closed: Set[str] = set()
        for node in self.call_nodes:
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name) and \
                    func.attr in RESOURCE_RELEASE_METHODS:
                closed.add(func.value.id)
        finally_closed: Set[str] = set()
        for node in self.scope_nodes:
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) and \
                            isinstance(sub.func, ast.Attribute) and \
                            isinstance(sub.func.value, ast.Name) and \
                            sub.func.attr in RESOURCE_RELEASE_METHODS:
                        finally_closed.add(sub.func.value.id)

        acquires: List[AcquireFact] = []
        for node in self.call_nodes:
            callee = dotted_name(node.func)
            if callee is None:
                continue
            last = callee.split(".")[-1]
            if callee in RESOURCE_FACTORY_TEXTS:
                kind = callee
            elif last in RESOURCE_FACTORY_CALLS:
                kind = last
            else:
                continue
            acquires.append(AcquireFact(
                line=node.lineno, col=node.col_offset + 1, kind=kind,
                name=bound_name.get(id(node)),
                managed=id(node) in with_call_ids,
                stored_attr=id(node) in attr_store_ids,
                call_index=self.call_index.get(id(node))))
        fact.acquires = tuple(acquires)
        fact.closed_names = frozenset(closed)
        fact.finally_closed_names = frozenset(finally_closed)
        fact.with_names = frozenset(with_names)
        fact.with_call_indices = frozenset(
            ci for ci in (self.call_index.get(i)
                          for i in with_call_ids) if ci is not None)
        fact.attr_store_call_indices = frozenset(
            ci for ci in (self.call_index.get(i)
                          for i in attr_store_ids) if ci is not None)
        fact.escaping_names = frozenset(escaping)


# --------------------------------------------------------------------------
# Per-class and per-module extraction
# --------------------------------------------------------------------------


def _summarize_class(cls: ast.ClassDef) -> ClassFact:
    is_dataclass = any(
        (isinstance(d, ast.Name) and d.id == "dataclass")
        or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
        or (isinstance(d, ast.Call) and dotted_name(d.func) is not None
            and dotted_name(d.func).split(".")[-1] == "dataclass")
        for d in cls.decorator_list)
    fields: List[str] = []
    attrs: Set[str] = set()
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            fields.append(node.target.id)
            attrs.add(node.target.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    attrs.add(target.id)
        elif isinstance(node, FUNCTION_NODES):
            attrs.add(node.name)
            for sub in walk_scope(node):
                if isinstance(sub, ast.Attribute) and \
                        isinstance(sub.ctx, ast.Store) and \
                        isinstance(sub.value, ast.Name) and \
                        sub.value.id == "self":
                    attrs.add(sub.attr)
    bases = tuple(b for b in (dotted_name(base) for base in cls.bases)
                  if b is not None)
    return ClassFact(name=cls.name, line=cls.lineno,
                     is_dataclass=is_dataclass, fields=tuple(fields),
                     attrs=frozenset(attrs), bases=bases)


def _module_level_reads(tree: ast.Module) -> FrozenSet[str]:
    """Names read outside function bodies (decorators included)."""
    reads: Set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, FUNCTION_NODES):
                for dec in child.decorator_list:
                    reads.update(_expr_reads(dec))
                for default in (child.args.defaults
                                + child.args.kw_defaults):
                    if default is not None:
                        reads.update(_expr_reads(default))
                continue  # body reads belong to the function fact
            if isinstance(child, ast.Name) and \
                    isinstance(child.ctx, ast.Load):
                reads.add(child.id)
            if isinstance(child, ast.Attribute):
                chain = dotted_name(child)
                if chain is not None:
                    reads.add(chain)
            visit(child)

    visit(tree)
    return frozenset(reads)


def _exported_names(tree: ast.Module) -> FrozenSet[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "__all__" and \
                        isinstance(node.value, (ast.List, ast.Tuple)):
                    return frozenset(
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str))
    return frozenset()


#: constructor names whose results are ordinary mutable containers.
_MUTABLE_CTORS = frozenset({"dict", "list", "set", "defaultdict",
                            "OrderedDict", "Counter"})

_MUTABLE_DISPLAYS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                     ast.ListComp, ast.SetComp)


def _module_assignments(tree: ast.Module) -> Tuple[Dict[str, int],
                                                   Dict[str, int]]:
    """(all module-level simple assigns, the mutable subset) by name.

    The mutable subset feeds THR001: names initialised to a plain
    dict/list/set (display or constructor) are unsafe to share between
    a thread target and the main path; the sanctioned channel types
    (:data:`THREAD_SAFE_TYPES`) are excluded.
    """
    assigns: Dict[str, int] = {}
    mutables: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets
                       if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        mutable = isinstance(value, _MUTABLE_DISPLAYS)
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None:
                last = callee.split(".")[-1]
                mutable = (last in _MUTABLE_CTORS
                           and last not in THREAD_SAFE_TYPES)
        for target in targets:
            assigns.setdefault(target.id, node.lineno)
            if mutable:
                mutables.setdefault(target.id, node.lineno)
    return assigns, mutables


def _is_grouping(module: ModuleInfo) -> bool:
    """Mirror of the TAINT applicability test, without the rule import."""
    if GROUPING_FUNCTIONS.intersection(module.module_functions):
        return True
    return any(
        (origin := module.origin_of(name)) is not None
        and origin.endswith("." + name)
        for name in GROUPING_FUNCTIONS)


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Distil one parsed module into its picklable project summary."""
    summary = ModuleSummary(
        relpath=module.relpath,
        parts=module.parts,
        dotted=".".join(module.parts),
        pragmas=module.pragmas,
        import_aliases=dict(module.import_aliases),
        imported_modules=frozenset(module.imported_modules),
        module_functions={name: node.lineno for name, node
                          in module.module_functions.items()},
        module_reads=_module_level_reads(module.tree),
        exported=_exported_names(module.tree),
        is_grouping=_is_grouping(module),
        is_entrypoint=module.parts[-1] in ENTRYPOINT_STEMS,
    )
    summary.module_assigns, summary.module_mutables = \
        _module_assignments(module.tree)
    for name, func in module.module_functions.items():
        summary.functions[name] = _FunctionSummarizer(
            func, name).summarize()
    for cls_name, cls in module.module_classes.items():
        summary.classes[cls_name] = _summarize_class(cls)
        for node in cls.body:
            if isinstance(node, FUNCTION_NODES):
                qualname = f"{cls_name}.{node.name}"
                summary.functions[qualname] = _FunctionSummarizer(
                    node, qualname).summarize()
    return summary
