"""PRAGMA — suppressions must keep earning their keep.

* **PRAGMA001** — a ``# reprolint: disable`` pragma names a rule that
  no longer matches any finding on its line (or anywhere in the file,
  for ``disable-file``).  A stale suppression is worse than none: the
  next genuine violation on that line arrives pre-silenced.

The detection itself lives in the engine
(:meth:`repro.lint.engine.LintEngine._check_stale_pragmas`) because it
must run *after* every per-module and project pass has produced its
findings; this module only contributes the rule's registry identity.
"""

from repro.lint.findings import register_rule

PRAGMA001 = register_rule(
    "PRAGMA001", "pragma-hygiene",
    "stale pragma: the suppression no longer matches any finding")
