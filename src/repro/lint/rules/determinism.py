"""DET — measurement code must be a pure function of (corpus, seed).

The batch/streamed equivalence guarantee (``ingest --verify``, the
hypothesis equivalence suite) only holds if nothing in the measurement
path reads wall clocks or ambient entropy, and nothing lets hash-order
leak into ordered output.  Scope: modules under ``core/``, ``ingest/``
and ``reporting/`` — simulation time lives in
:mod:`repro.common.simtime`, seeded randomness in
:mod:`repro.common.rng`.

* **DET001** — wall-clock / entropy call: ``time.time()``,
  ``datetime.now()`` / ``utcnow()`` / ``today()``, module-level
  ``random.*``, ``os.urandom``, ``uuid.uuid4``, ``secrets.*``.
* **DET002** — iteration over a ``set`` (or ``dict.values()``) whose
  elements feed an ordered output path (a returned/yielded list) with
  no ``sorted(...)`` in between.
"""

import ast
from typing import Dict, List, Optional, Set

from repro.lint.engine import Emitter, Rule
from repro.lint.findings import register_rule
from repro.lint.symbols import (
    FUNCTION_NODES,
    ModuleInfo,
    dotted_name,
    local_assignments,
    walk_scope,
)

DET001 = register_rule(
    "DET001", "determinism",
    "wall-clock or ambient-entropy call in measurement code")
DET002 = register_rule(
    "DET002", "determinism",
    "unordered iteration feeds an ordered output path")

#: the directories the determinism contract covers.
SCOPE_DIRS = frozenset({"core", "ingest", "reporting"})

#: dotted call chains that are banned outright.
_BANNED_CALLS = {
    "time.time": "use repro.common.simtime dates instead",
    "time.time_ns": "use repro.common.simtime dates instead",
    "os.urandom": "use repro.common.rng.SeededRng",
    "uuid.uuid4": "use repro.common.rng.SeededRng",
}

#: unseeded module-level random functions (random.<fn>).
_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "getrandbits", "triangular",
})

#: datetime methods that read the wall clock.
_CLOCK_METHODS = frozenset({"now", "utcnow", "today"})

#: wrapping one of these erases iteration order — the sink is safe.
_ORDER_ERASERS = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all",
    "len", "dict", "Counter", "collections.Counter",
})


def _is_unordered_iterable(expr: ast.expr,
                           assigns: Dict[str, List[ast.expr]],
                           depth: int = 4) -> Optional[str]:
    """Why ``expr`` iterates in hash/arbitrary order, or None.

    Recognises set displays/comprehensions, ``set()``/``frozenset()``
    calls, ``.values()`` calls, and local names whose every assignment
    is one of those (resolved through the function's assignment map).
    """
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(expr, ast.Call):
        callee = dotted_name(expr.func)
        if callee in ("set", "frozenset"):
            return f"a {callee}()"
        if isinstance(expr.func, ast.Attribute) and \
                expr.func.attr == "values":
            return "dict.values()"
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
                "intersection", "union", "difference",
                "symmetric_difference"):
            return f"a set .{expr.func.attr}()"
    if isinstance(expr, ast.Name) and depth > 0:
        sources = assigns.get(expr.id)
        if sources:
            reasons = [_is_unordered_iterable(s, assigns, depth - 1)
                       for s in sources]
            if reasons and all(reasons):
                return reasons[0]
    return None


class DeterminismRule(Rule):
    """DET001 everywhere in scope; DET002 per function."""

    def applies(self, module: ModuleInfo) -> bool:
        return module.in_directory(SCOPE_DIRS)

    # -- DET001 ------------------------------------------------------------

    def visit(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter) -> None:
        if isinstance(node, ast.Call):
            self._check_call(node, module, emitter)
        elif isinstance(node, FUNCTION_NODES):
            self._check_ordering(node, emitter)

    def _check_call(self, node: ast.Call, module: ModuleInfo,
                    emitter: Emitter) -> None:
        callee = dotted_name(node.func)
        if callee is None:
            return
        hint = _BANNED_CALLS.get(callee)
        if hint is not None:
            emitter.emit(DET001.rule_id, node,
                         f"'{callee}()' is nondeterministic — {hint}")
            return
        head, _, tail = callee.rpartition(".")
        if head == "random" and tail in _RANDOM_FUNCS and \
                module.origin_of("random") == "random":
            emitter.emit(
                DET001.rule_id, node,
                f"unseeded 'random.{tail}()' — route randomness "
                "through repro.common.rng.SeededRng")
            return
        if head == "secrets" and module.origin_of("secrets") == "secrets":
            emitter.emit(
                DET001.rule_id, node,
                f"'{callee}()' reads ambient entropy — use "
                "repro.common.rng.SeededRng")
            return
        if tail in _CLOCK_METHODS and self._is_datetime_chain(
                head, module):
            emitter.emit(
                DET001.rule_id, node,
                f"'{callee}()' reads the wall clock — pass explicit "
                "repro.common.simtime dates instead")

    @staticmethod
    def _is_datetime_chain(head: str, module: ModuleInfo) -> bool:
        if not head:
            return False
        root = head.split(".")[0]
        origin = module.origin_of(root)
        return origin is not None and (
            origin == "datetime" or origin.startswith("datetime."))

    # -- DET002 ------------------------------------------------------------

    def _check_ordering(self, func: ast.AST, emitter: Emitter) -> None:
        assigns = local_assignments(func)
        returned = self._returned_names(func)
        is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in walk_scope(func))
        for node in walk_scope(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_for(node, assigns, returned, is_generator,
                                emitter)
            elif isinstance(node, ast.ListComp):
                self._check_comprehension(node, func, assigns, emitter)

    def _check_for(self, loop: ast.AST, assigns, returned: Set[str],
                   is_generator: bool, emitter: Emitter) -> None:
        reason = _is_unordered_iterable(loop.iter, assigns)
        if reason is None:
            return
        feeds_output = is_generator and any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in ast.walk(loop))
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("append", "extend", "insert") and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.value.id in returned:
                feeds_output = True
        if feeds_output:
            emitter.emit(
                DET002.rule_id, loop,
                f"iterating {reason} in unordered fashion feeds an "
                "ordered output — wrap the iterable in sorted(...)")

    def _check_comprehension(self, comp: ast.ListComp, func,
                             assigns, emitter: Emitter) -> None:
        reason = _is_unordered_iterable(comp.generators[0].iter, assigns)
        if reason is None:
            return
        if self._wrapped_in_order_eraser(comp, func):
            return
        emitter.emit(
            DET002.rule_id, comp,
            f"list built from {reason} inherits hash order — wrap the "
            "iterable in sorted(...) or build an unordered container")

    @staticmethod
    def _wrapped_in_order_eraser(comp: ast.ListComp, func) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and comp in node.args:
                callee = dotted_name(node.func)
                if callee in _ORDER_ERASERS:
                    return True
        return False

    @staticmethod
    def _returned_names(func) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        return names
