"""UNIT/KIND — domain units and identifier kinds, whole-program.

The thin rule wrapper over :mod:`repro.lint.unitflow`: registers the
five rule IDs and replays the solved engine's findings through the
project emitter.  See the engine module for the semantics and
:mod:`repro.lint.units` for the seed tables.
"""

from repro.lint.engine import ProjectEmitter, ProjectRule
from repro.lint.findings import register_rule
from repro.lint.interproc import resolved_program
from repro.lint.unitflow import run_unit_analysis

UNIT001 = register_rule(
    "UNIT001", "units",
    "mixed-unit arithmetic (e.g. XMR + USD) without a conversion")
UNIT002 = register_rule(
    "UNIT002", "units",
    "coin amount reaches a USD-labelled field without a conversion "
    "witness")
UNIT003 = register_rule(
    "UNIT003", "units",
    "rate-vs-cumulative confusion (hashrate used as a total)")
KIND001 = register_rule(
    "KIND001", "units",
    "cross-kind identifier equality/membership/join")
KIND002 = register_rule(
    "KIND002", "units",
    "wrong-kind key into a kind-typed mapping")


class UnitKindRule(ProjectRule):
    """Solve the unit/kind fixpoint and emit every violation."""

    def run(self, index, emitter: ProjectEmitter) -> None:
        for finding in run_unit_analysis(resolved_program(index)):
            emitter.emit(finding.rule_id, finding.module,
                         finding.line, finding.col, finding.message,
                         symbol=finding.symbol)
