"""TAINT — enrichment data must never become campaign-grouping edges.

The paper (§III-E) is explicit that enrichment annotations — PPI botnet
membership, stock-tool CTPH attribution, packer/entropy findings — are
*informative*, not grouping features: third-party PPI infrastructure
and off-the-shelf tool binaries are shared by unrelated operators, so
an edge drawn from them would merge unrelated campaigns.  The code
keeps this by convention (enrichment runs after aggregation); these
rules keep it mechanically.

Applicability: a module participates in grouping iff it defines or
imports :func:`record_attachments` / :func:`build_campaign` — exactly
the batch aggregator (``core/aggregation.py``) and the streaming one
(``ingest/aggregator.py``) today, and automatically any future module
that takes on edge construction.

* **TAINT001** — a grouping module imports an enrichment module.
* **TAINT002** — a grouping module *reads* an enrichment-owned
  attribute (``uses_ppi``, ``stock_tools``, ``packer`` ...).  Writes
  and dataclass field declarations are fine — campaigns carry the
  annotations; they must not be grouped by them.
"""

import ast
from typing import Set

from repro.lint.contracts import (
    GROUPING_FUNCTIONS,
    TAINTED_ATTRIBUTES,
    TAINTED_MODULES,
)
from repro.lint.engine import Emitter, ProjectEmitter, ProjectRule, Rule
from repro.lint.findings import register_rule
from repro.lint.symbols import FUNCTION_NODES, ModuleInfo

__all__ = [
    "GROUPING_FUNCTIONS", "TAINTED_ATTRIBUTES", "TAINTED_MODULES",
    "TaintSeparationRule", "InterproceduralTaintRule",
    "is_grouping_module",
]

TAINT001 = register_rule(
    "TAINT001", "taint",
    "grouping module imports an enrichment module")
TAINT002 = register_rule(
    "TAINT002", "taint",
    "grouping code reads an enrichment-owned attribute")
TAINT003 = register_rule(
    "TAINT003", "taint",
    "enrichment-tainted value reaches the checkpoint store")


def is_grouping_module(module: ModuleInfo) -> bool:
    """Whether ``module`` defines or imports the edge-building core."""
    if GROUPING_FUNCTIONS.intersection(module.module_functions):
        return True
    for name in GROUPING_FUNCTIONS:
        origin = module.origin_of(name)
        if origin is not None and origin.endswith("." + name):
            return True
    return False


class TaintSeparationRule(Rule):
    """TAINT001/TAINT002 over grouping modules."""

    def applies(self, module: ModuleInfo) -> bool:
        return is_grouping_module(module)

    def visit(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._check_import(node, emitter)
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load) and \
                node.attr in TAINTED_ATTRIBUTES:
            emitter.emit(
                TAINT002.rule_id, node,
                f"enrichment attribute '.{node.attr}' read inside a "
                "grouping module — enrichment must stay informative, "
                "never a grouping edge (paper §III-E)")
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Load) and \
                isinstance(node.slice, ast.Constant) and \
                node.slice.value in TAINTED_ATTRIBUTES:
            # field sensitivity for record-shaped dicts: the key is
            # the same enrichment-owned name, the container differs.
            emitter.emit(
                TAINT002.rule_id, node,
                f"enrichment key '[{node.slice.value!r}]' read inside "
                "a grouping module — enrichment must stay "
                "informative, never a grouping edge (paper §III-E)")

    def _check_import(self, node: ast.AST, emitter: Emitter) -> None:
        names: Set[str] = set()
        if isinstance(node, ast.Import):
            names = {alias.name for alias in node.names}
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = {node.module}
            names |= {f"{node.module}.{alias.name}"
                      for alias in node.names}
        for name in names:
            if any(name == t or name.startswith(t + ".")
                   for t in TAINTED_MODULES):
                emitter.emit(
                    TAINT001.rule_id, node,
                    f"grouping module imports '{name}' — enrichment "
                    "outputs must not feed edge construction")
                return


class InterproceduralTaintRule(ProjectRule):
    """TAINT002 (any call depth) + TAINT003 via the fixpoint engine.

    The per-module rule above catches *direct* enrichment reads in
    grouping code; this pass catches the laundered ones — a helper
    chain (possibly crossing a ``pool.submit`` boundary) whose return
    value carries enrichment taint into a grouping module, and any
    path by which a tainted value reaches the checkpoint store
    (:mod:`repro.lint.interproc` documents the lattice and the
    deliberate mutation-tracking gap).
    """

    def run(self, index, emitter: ProjectEmitter) -> None:
        from repro.lint.interproc import run_taint_analysis
        for finding in run_taint_analysis(index):
            emitter.emit(
                finding.rule_id, finding.module, finding.line,
                finding.col, finding.message, symbol=finding.symbol)
