"""TAINT — enrichment data must never become campaign-grouping edges.

The paper (§III-E) is explicit that enrichment annotations — PPI botnet
membership, stock-tool CTPH attribution, packer/entropy findings — are
*informative*, not grouping features: third-party PPI infrastructure
and off-the-shelf tool binaries are shared by unrelated operators, so
an edge drawn from them would merge unrelated campaigns.  The code
keeps this by convention (enrichment runs after aggregation); these
rules keep it mechanically.

Applicability: a module participates in grouping iff it defines or
imports :func:`record_attachments` / :func:`build_campaign` — exactly
the batch aggregator (``core/aggregation.py``) and the streaming one
(``ingest/aggregator.py``) today, and automatically any future module
that takes on edge construction.

* **TAINT001** — a grouping module imports an enrichment module.
* **TAINT002** — a grouping module *reads* an enrichment-owned
  attribute (``uses_ppi``, ``stock_tools``, ``packer`` ...).  Writes
  and dataclass field declarations are fine — campaigns carry the
  annotations; they must not be grouped by them.
"""

import ast
from typing import Set

from repro.lint.engine import Emitter, Rule
from repro.lint.findings import register_rule
from repro.lint.symbols import FUNCTION_NODES, ModuleInfo

TAINT001 = register_rule(
    "TAINT001", "taint",
    "grouping module imports an enrichment module")
TAINT002 = register_rule(
    "TAINT002", "taint",
    "grouping code reads an enrichment-owned attribute")

#: defining or importing either of these marks a grouping module.
GROUPING_FUNCTIONS = frozenset({"record_attachments", "build_campaign"})

#: modules whose outputs are enrichment-only (prefix matched).
TAINTED_MODULES = frozenset({
    "repro.core.enrichment",
    "repro.osint.stock_tools",
    "repro.binfmt.packers",
    "repro.binfmt.entropy",
    "repro.botnet",
    "repro.intel.labels",
})

#: attributes owned by the enrichment stage (on records or campaigns).
TAINTED_ATTRIBUTES = frozenset({
    "uses_ppi", "ppi_botnets", "stock_tools", "stock_tool_matches",
    "obfuscated", "packers", "packer", "entropy",
})


def is_grouping_module(module: ModuleInfo) -> bool:
    """Whether ``module`` defines or imports the edge-building core."""
    if GROUPING_FUNCTIONS.intersection(module.module_functions):
        return True
    for name in GROUPING_FUNCTIONS:
        origin = module.origin_of(name)
        if origin is not None and origin.endswith("." + name):
            return True
    return False


class TaintSeparationRule(Rule):
    """TAINT001/TAINT002 over grouping modules."""

    def applies(self, module: ModuleInfo) -> bool:
        return is_grouping_module(module)

    def visit(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._check_import(node, emitter)
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load) and \
                node.attr in TAINTED_ATTRIBUTES:
            emitter.emit(
                TAINT002.rule_id, node,
                f"enrichment attribute '.{node.attr}' read inside a "
                "grouping module — enrichment must stay informative, "
                "never a grouping edge (paper §III-E)")

    def _check_import(self, node: ast.AST, emitter: Emitter) -> None:
        names: Set[str] = set()
        if isinstance(node, ast.Import):
            names = {alias.name for alias in node.names}
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = {node.module}
            names |= {f"{node.module}.{alias.name}"
                      for alias in node.names}
        for name in names:
            if any(name == t or name.startswith(t + ".")
                   for t in TAINTED_MODULES):
                emitter.emit(
                    TAINT001.rule_id, node,
                    f"grouping module imports '{name}' — enrichment "
                    "outputs must not feed edge construction")
                return
