"""FORK/ASYNC/THR — concurrency discipline over the multi-core code.

PRs 6-8 made the pipeline genuinely parallel: a fork pool for
extraction, a bounded prefetcher thread, an asyncio serving loop with
lock-free hot swap, and a forked server fleet.  Each of those is only
correct under an ordering discipline the code keeps by convention;
this whole-program pass keeps it mechanically, on top of the shared
:class:`~repro.lint.interproc.ResolvedProgram` substrate.

* **FORK001** — no live threads at a fork point.  A forked child
  inherits only the forking thread; any other thread's locks (the
  prefetcher queue's, a logging handler's) are frozen mid-state in
  the child, which then deadlocks at first touch.  The pass finds,
  per function, a thread-spawning call (direct ``Thread(...)`` or a
  call into a function that *returns* with a live thread) followed by
  an unguarded fork-ward call (direct pool/``os.fork`` or a call
  whose callee transitively forks) with no release (``close``/
  ``join``/``stop``/``shutdown``) in between.  A fork-barrier call
  (:data:`~repro.lint.contracts.FORK_BARRIER_CALLS` — the
  ``with prefetcher.quiesced():`` pattern) before the fork-ward line
  sanctions it.
* **FORK002** — forked-worker state follows the ``_POOL_STATE``
  pattern: a module global the submitted worker reads must be
  assigned (non-None) *before* the fork line and never re-assigned
  after it — children hold the pre-fork snapshot, so a later mutation
  silently diverges parent and workers.  Clearing to ``None`` in a
  ``finally`` is sanctioned.
* **ASYNC001** — no blocking call (``time.sleep``, raw socket I/O,
  ``open``, ``subprocess``) reachable from a coroutine body through
  sync calls without an executor hop; one blocked coroutine stalls
  every connection the loop serves.  ``await``-ed calls and
  ``run_in_executor``/``to_thread`` arguments are exempt at fact
  extraction, so the async stream APIs sharing these method names
  never fire.
* **ASYNC002** — a call that resolves to a coroutine function must be
  awaited, scheduled (``create_task``/``gather``/``asyncio.run`` ...)
  or bound/forwarded for a later await; a bare call just builds a
  coroutine object and silently does nothing.  Second half: calls to
  loop-affine flip methods (:data:`LOOP_AFFINE_METHODS`, the index
  hot-swap) on a class that owns coroutines must come from the loop
  thread — an async caller, a ``call_soon``-marshalled callback, or
  the class's own methods.
* **THR001** — module-level mutable state (plain dict/list/set)
  touched from both a thread target's call tree and the main path,
  with at least one side mutating, must be a ``queue.Queue``/
  ``Event`` (:data:`THREAD_SAFE_TYPES`) or lock-guarded (every
  mutator holds a ``with ...lock:`` block).
"""

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.contracts import LOOP_AFFINE_METHODS
from repro.lint.engine import ProjectEmitter, ProjectRule
from repro.lint.findings import register_rule
from repro.lint.interproc import FnKey, ResolvedProgram, resolved_program

FORK001 = register_rule(
    "FORK001", "concurrency",
    "live thread at a fork point (quiesce or release it first)")
FORK002 = register_rule(
    "FORK002", "concurrency",
    "forked-worker state set or mutated after the fork point")
ASYNC001 = register_rule(
    "ASYNC001", "concurrency",
    "blocking call reachable inside a coroutine without an executor hop")
ASYNC002 = register_rule(
    "ASYNC002", "concurrency",
    "coroutine never awaited/scheduled, or loop-affine call off-loop")
THR001 = register_rule(
    "THR001", "concurrency",
    "module-level mutable state shared between a thread and the main path")


def _guarded(line: int, barriers: Tuple[int, ...]) -> bool:
    """A fork-ward call is sanctioned by any barrier at/above it."""
    return any(b <= line for b in barriers)


def _propagate(program: ResolvedProgram,
               seeded: Dict[FnKey, str],
               step) -> Dict[FnKey, str]:
    """Generic reverse-edge fixpoint: ``step(caller, line, witness)``
    returns the caller's witness when the property propagates through
    a call at ``line`` to a member function, else None."""
    queue = deque(sorted(seeded))
    while queue:
        key = queue.popleft()
        for caller in program.callers(key):
            if caller in seeded:
                continue
            for _ci, line, callee in program.edges(caller):
                if callee != key:
                    continue
                witness = step(caller, line, seeded[key])
                if witness is not None:
                    seeded[caller] = witness
                    queue.append(caller)
                    break
    return seeded


class ConcurrencyRule(ProjectRule):
    """FORK001/FORK002/ASYNC001/ASYNC002/THR001 over the program."""

    def run(self, index, emitter: ProjectEmitter) -> None:
        program = resolved_program(index)
        self._check_fork_ordering(program, emitter)
        self._check_fork_state(program, emitter)
        self._check_async(program, emitter)
        self._check_shared_state(program, emitter)

    # -- FORK001 -----------------------------------------------------------

    def _fork_reachers(self, program: ResolvedProgram) -> Dict[FnKey, str]:
        """FnKey -> witness for functions that may fork, unguarded."""
        seeded: Dict[FnKey, str] = {}
        for key, (summary, fact) in program.facts.items():
            for line in fact.fork_points:
                if not _guarded(line, fact.barrier_lines):
                    seeded[key] = f"{summary.dotted}.{fact.qualname}" \
                                  f" (fork at line {line})"
                    break

        def step(caller: FnKey, line: int, witness: str) -> Optional[str]:
            _, fact = program.facts[caller]
            if _guarded(line, fact.barrier_lines):
                return None
            return witness

        return _propagate(program, seeded, step)

    def _live_spawners(self, program: ResolvedProgram) -> Dict[FnKey, str]:
        """FnKey -> witness for functions that may *return* with a
        thread they started still running."""
        seeded: Dict[FnKey, str] = {}
        for key, (summary, fact) in program.facts.items():
            for line in fact.thread_spawns:
                if not any(r > line for r in fact.release_lines):
                    seeded[key] = f"{summary.dotted}.{fact.qualname}" \
                                  f" (thread spawned at line {line})"
                    break

        def step(caller: FnKey, line: int, witness: str) -> Optional[str]:
            _, fact = program.facts[caller]
            if any(r > line for r in fact.release_lines):
                return None
            return witness

        return _propagate(program, seeded, step)

    def _check_fork_ordering(self, program: ResolvedProgram,
                             emitter: ProjectEmitter) -> None:
        forkers = self._fork_reachers(program)
        spawners = self._live_spawners(program)
        for key, (summary, fact) in program.facts.items():
            spawn_events: List[Tuple[int, str]] = [
                (line, f"thread spawned at line {line}")
                for line in fact.thread_spawns]
            fork_events: List[Tuple[int, str]] = [
                (line, "fork point")
                for line in fact.fork_points
                if not _guarded(line, fact.barrier_lines)]
            for _ci, line, callee in program.edges(key):
                if callee in spawners and callee != key:
                    spawn_events.append(
                        (line, f"call into {spawners[callee]}"))
                if callee in forkers and callee != key and \
                        not _guarded(line, fact.barrier_lines):
                    fork_events.append(
                        (line, f"call into {forkers[callee]}"))
            if not spawn_events or not fork_events:
                continue
            for fork_line, fork_desc in sorted(fork_events):
                live = [
                    desc for line, desc in spawn_events
                    if line < fork_line and not any(
                        line < r <= fork_line
                        for r in fact.release_lines)]
                if live:
                    emitter.emit(
                        FORK001.rule_id, summary.dotted, fork_line, 1,
                        f"fork-ward call ({fork_desc}) with a live "
                        f"thread ({live[0]}) — a forked child inherits "
                        f"the thread's locks mid-state; release the "
                        f"thread first or quiesce it "
                        f"(`with prefetcher.quiesced():`)",
                        symbol=fact.qualname)

    # -- FORK002 -----------------------------------------------------------

    def _check_fork_state(self, program: ResolvedProgram,
                          emitter: ProjectEmitter) -> None:
        for key, (summary, fact) in program.facts.items():
            if not fact.fork_points:
                continue
            fork_line = min(fact.fork_points)
            worker_reads: Dict[str, str] = {}
            for ci, call in enumerate(fact.calls):
                if not call.submitted:
                    continue
                callee = program.callee_key(program.resolve(key, ci))
                if callee is None:
                    continue
                wsummary, wfact = program.facts[callee]
                for name in sorted(wfact.reads_all
                                   & set(wsummary.module_assigns)):
                    if name not in fact.global_names:
                        continue  # the forker never assigns it
                    worker_reads.setdefault(name, wfact.qualname)
            for name, worker in sorted(worker_reads.items()):
                events = [(line, is_none)
                          for n, line, is_none in fact.assign_events
                          if n == name]
                before = any(line <= fork_line and not is_none
                             for line, is_none in events)
                after = sorted(line for line, is_none in events
                               if line > fork_line and not is_none)
                if not after:
                    continue
                what = ("mutated" if before else "first set")
                emitter.emit(
                    FORK002.rule_id, summary.dotted, after[0], 1,
                    f"worker state '{name}' (read by forked "
                    f"{worker}()) is {what} after the fork point at "
                    f"line {fork_line} — children hold the pre-fork "
                    f"snapshot; set it before forking and only clear "
                    f"it to None afterwards",
                    symbol=fact.qualname)

    # -- ASYNC001 + ASYNC002 -----------------------------------------------

    def _check_async(self, program: ResolvedProgram,
                     emitter: ProjectEmitter) -> None:
        roots = [key for key, (_s, fact) in program.facts.items()
                 if fact.is_async]
        reported: Set[Tuple[str, int, str]] = set()
        for root in sorted(roots):
            root_summary, root_fact = program.facts[root]
            root_name = f"{root_summary.dotted}.{root_fact.qualname}"
            seen = {root}
            queue = deque([root])
            while queue:
                key = queue.popleft()
                summary, fact = program.facts[key]
                for line, callee_text in fact.blocking_calls:
                    mark = (summary.dotted, line, callee_text)
                    if mark in reported:
                        continue
                    reported.add(mark)
                    emitter.emit(
                        ASYNC001.rule_id, summary.dotted, line, 1,
                        f"blocking call '{callee_text}()' reachable "
                        f"from coroutine {root_name}() — it stalls "
                        f"every connection on the loop; hop through "
                        f"loop.run_in_executor / asyncio.to_thread",
                        symbol=fact.qualname)
                for ci, _line, callee in program.edges(key):
                    if callee in seen:
                        continue
                    if ci in fact.hop_arg_calls or \
                            fact.calls[ci].submitted:
                        continue  # runs off the loop
                    if program.facts[callee][1].is_async:
                        continue  # its own root
                    seen.add(callee)
                    queue.append(callee)
        self._check_await_discipline(program, emitter)

    def _check_await_discipline(self, program: ResolvedProgram,
                                emitter: ProjectEmitter) -> None:
        affine = self._loop_affine_targets(program)
        for key, (summary, fact) in program.facts.items():
            consumed: Set[int] = set(fact.ret.calls)
            for bind in fact.binds.values():
                consumed.update(bind.calls)
            for call in fact.calls:
                for arg in call.args:
                    consumed.update(arg.calls)
                for _kw, arg in call.kwargs:
                    consumed.update(arg.calls)
            for ci, line, callee in program.edges(key):
                _, callee_fact = program.facts[callee]
                if callee_fact.is_async:
                    if ci in fact.awaited_calls or \
                            ci in fact.sched_arg_calls or \
                            ci in fact.hop_arg_calls or \
                            ci in consumed:
                        continue
                    emitter.emit(
                        ASYNC002.rule_id, summary.dotted, line, 1,
                        f"coroutine '{callee_fact.qualname}()' is "
                        f"called but never awaited or scheduled — the "
                        f"call only builds a coroutine object; await "
                        f"it or hand it to asyncio.create_task/run",
                        symbol=fact.qualname)
                    continue
                if callee in affine and not fact.is_async and \
                        ci not in fact.sched_arg_calls:
                    owner_cls = callee[1].split(".")[0]
                    if fact.qualname.split(".")[0] == owner_cls and \
                            summary.dotted == callee[0]:
                        continue  # the class manages its own affinity
                    emitter.emit(
                        ASYNC002.rule_id, summary.dotted, line, 1,
                        f"loop-affine call '{callee[1]}()' from sync "
                        f"code — the hot-swap flip must run on the "
                        f"event-loop thread (await path, or marshal "
                        f"via loop.call_soon_threadsafe)",
                        symbol=fact.qualname)

    @staticmethod
    def _loop_affine_targets(program: ResolvedProgram) -> Set[FnKey]:
        """Methods in LOOP_AFFINE_METHODS on classes owning coroutines."""
        async_classes: Set[Tuple[str, str]] = set()
        for (dotted, qualname), (_s, fact) in program.facts.items():
            if fact.is_async and "." in qualname:
                async_classes.add((dotted, qualname.split(".")[0]))
        out: Set[FnKey] = set()
        for key in program.facts:
            dotted, qualname = key
            if "." not in qualname:
                continue
            cls, method = qualname.split(".", 1)
            if method in LOOP_AFFINE_METHODS and \
                    (dotted, cls) in async_classes:
                out.add(key)
        return out

    # -- THR001 ------------------------------------------------------------

    def _check_shared_state(self, program: ResolvedProgram,
                            emitter: ProjectEmitter) -> None:
        thread_reachable = self._thread_reachable(program)
        if not thread_reachable:
            return
        for summary in program.index.summaries:
            for name, line in sorted(summary.module_mutables.items()):
                self._check_one_global(program, summary, name, line,
                                       thread_reachable, emitter)

    def _thread_reachable(self, program: ResolvedProgram
                          ) -> Dict[FnKey, str]:
        """Functions reachable from any thread target, with the
        spawning root as witness."""
        roots: Dict[FnKey, str] = {}
        for key, (summary, fact) in program.facts.items():
            for text, _line in fact.thread_targets:
                res = program.index._resolve_text(text, summary, fact)
                target = program.callee_key(res)
                if target is not None:
                    roots.setdefault(
                        target, f"{summary.dotted}.{fact.qualname}")
        reached: Dict[FnKey, str] = {}
        queue = deque(sorted(roots))
        for key in queue:
            reached[key] = roots[key]
        while queue:
            key = queue.popleft()
            for _ci, _line, callee in program.edges(key):
                if callee not in reached:
                    reached[callee] = reached[key]
                    queue.append(callee)
        return reached

    @staticmethod
    def _touches(fact, name: str) -> Tuple[bool, bool]:
        """(reads, mutates) for one module global in one function."""
        shadowed = name in fact.binds and name not in fact.global_names
        if shadowed:
            return (False, False)
        reads = name in fact.reads_all
        use = fact.name_uses.get(name)
        mutates = bool(
            (name in fact.binds and name in fact.global_names)
            or (use is not None
                and (use.key_writes or use.open_writes)))
        return (reads or mutates, mutates)

    @staticmethod
    def _lock_guarded(fact) -> bool:
        return any("lock" in w.split(".")[-1].lower()
                   or "mutex" in w.split(".")[-1].lower()
                   for w in fact.with_names)

    def _check_one_global(self, program: ResolvedProgram, summary,
                          name: str, line: int,
                          thread_reachable: Dict[FnKey, str],
                          emitter: ProjectEmitter) -> None:
        thread_touch: Optional[str] = None
        main_touch = False
        mutators = []
        for qualname in sorted(summary.functions):
            fact = summary.functions[qualname]
            touches, mutates = self._touches(fact, name)
            if not touches:
                continue
            key = (summary.dotted, qualname)
            if key in thread_reachable:
                if thread_touch is None:
                    thread_touch = thread_reachable[key]
            else:
                main_touch = True
            if mutates:
                mutators.append(fact)
        if thread_touch is None or not main_touch:
            return
        if not mutators:
            return  # read-only sharing on both sides
        if all(self._lock_guarded(f) for f in mutators):
            return
        emitter.emit(
            THR001.rule_id, summary.dotted, line, 1,
            f"module-level mutable '{name}' is shared between the "
            f"thread spawned by {thread_touch}() and the main path — "
            f"use a queue.Queue/Event, or guard every mutation with "
            f"a lock",
            symbol=name)
