"""CKEY — a memo's key must cover everything the computation reads.

The :mod:`repro.perf.cache` memos are content-keyed: a cache entry is
only sound if the key expression captures *every* input the computed
value depends on.  A parameter the compute callable reads but the key
omits means two calls with different behaviour share one cache slot —
the classic stale-memo bug, invisible until a second configuration
runs in the same process.

Applicability: any module calling ``<cache>.get_or_compute(key, fn)``.
For each call site, the rule resolves the parameters of the enclosing
function that the compute callable's body transitively reads (through
local single assignments: ``key = bytes(raw)`` makes ``key`` read
``raw``) and checks each appears — transitively again — in the key
expression.

* **CKEY001** — a parameter read by the memoised computation is absent
  from the cache key.
"""

import ast
from typing import Optional, Set

from repro.lint.engine import Emitter, Rule
from repro.lint.findings import register_rule
from repro.lint.symbols import (
    FUNCTION_NODES,
    ModuleInfo,
    expand_names,
    local_assignments,
    name_loads,
    parameter_names,
    walk_scope,
)

CKEY001 = register_rule(
    "CKEY001", "cache-keys",
    "memoised computation reads a parameter missing from its cache key")


class CacheKeyRule(Rule):
    """CKEY001 at every ``get_or_compute`` call site."""

    def applies(self, module: ModuleInfo) -> bool:
        return "get_or_compute" in module.source

    def visit(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter) -> None:
        if not isinstance(node, FUNCTION_NODES):
            return
        assigns = local_assignments(node)
        params = parameter_names(node)
        if not params:
            return
        for sub in walk_scope(node):
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Attribute) and \
                    sub.func.attr == "get_or_compute" and \
                    len(sub.args) >= 2:
                self._check_site(sub, node, params, assigns, emitter)

    def _check_site(self, call: ast.Call, func, params: Set[str],
                    assigns, emitter: Emitter) -> None:
        key_expr, fn_expr = call.args[0], call.args[1]
        compute_body = self._compute_body(fn_expr, func)
        if compute_body is None:
            return  # opaque callable: nothing to compare against
        key_reads = expand_names(name_loads(key_expr), assigns) & params
        compute_reads = expand_names(name_loads(compute_body),
                                     assigns) & params
        for missing in sorted(compute_reads - key_reads):
            emitter.emit(
                CKEY001.rule_id, call,
                f"parameter '{missing}' is read by the memoised "
                "computation but absent from the cache key — entries "
                "would be reused across different "
                f"'{missing}' values")

    @staticmethod
    def _compute_body(fn_expr: ast.expr, func) -> Optional[ast.AST]:
        """The AST whose reads define the computation, if resolvable."""
        if isinstance(fn_expr, ast.Lambda):
            return fn_expr.body
        if isinstance(fn_expr, ast.Name):
            for node in walk_scope(func):
                if isinstance(node, FUNCTION_NODES) and \
                        node.name == fn_expr.id:
                    return node
        return None
