"""The shipped reprolint rule families.

Importing this package registers every rule ID in
:data:`repro.lint.findings.RULE_REGISTRY`; :func:`default_rules`
instantiates the full set the CLI and the pytest gate run.
"""

from typing import List

from repro.lint.engine import Rule
from repro.lint.rules.cache_keys import CacheKeyRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.durability import DurabilityRule
from repro.lint.rules.exception_hygiene import ExceptionHygieneRule
from repro.lint.rules.parallel_safety import ParallelSafetyRule
from repro.lint.rules.taint import TaintSeparationRule

__all__ = [
    "CacheKeyRule",
    "DeterminismRule",
    "DurabilityRule",
    "ExceptionHygieneRule",
    "ParallelSafetyRule",
    "TaintSeparationRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """One instance of every shipped rule family."""
    return [
        TaintSeparationRule(),
        DeterminismRule(),
        ParallelSafetyRule(),
        DurabilityRule(),
        CacheKeyRule(),
        ExceptionHygieneRule(),
    ]
