"""The shipped reprolint rule families.

Importing this package registers every rule ID in
:data:`repro.lint.findings.RULE_REGISTRY`; :func:`default_rules`
instantiates the per-module set and :func:`default_project_rules` the
whole-program set — together they are what the CLI and the pytest
gate run.
"""

from typing import List

from repro.lint.engine import ProjectRule, Rule
from repro.lint.rules.cache_keys import CacheKeyRule
from repro.lint.rules.concurrency import ConcurrencyRule
from repro.lint.rules.deadcode import DeadCodeRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.durability import DurabilityRule
from repro.lint.rules.exception_hygiene import ExceptionHygieneRule
from repro.lint.rules.parallel_safety import ParallelSafetyRule
from repro.lint.rules.pragma_hygiene import PRAGMA001  # noqa: F401
from repro.lint.rules.resources import ResourceLifecycleRule
from repro.lint.rules.schema import SchemaContractRule
from repro.lint.rules.taint import (
    InterproceduralTaintRule,
    TaintSeparationRule,
)
from repro.lint.rules.units import UnitKindRule

__all__ = [
    "CacheKeyRule",
    "ConcurrencyRule",
    "DeadCodeRule",
    "DeterminismRule",
    "DurabilityRule",
    "ExceptionHygieneRule",
    "InterproceduralTaintRule",
    "ParallelSafetyRule",
    "ResourceLifecycleRule",
    "SchemaContractRule",
    "TaintSeparationRule",
    "UnitKindRule",
    "default_project_rules",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """One instance of every shipped per-module rule family."""
    return [
        TaintSeparationRule(),
        DeterminismRule(),
        ParallelSafetyRule(),
        DurabilityRule(),
        CacheKeyRule(),
        ExceptionHygieneRule(),
    ]


def default_project_rules() -> List[ProjectRule]:
    """One instance of every shipped whole-program pass."""
    return [
        InterproceduralTaintRule(),
        SchemaContractRule(),
        DeadCodeRule(),
        ConcurrencyRule(),
        ResourceLifecycleRule(),
        UnitKindRule(),
    ]
