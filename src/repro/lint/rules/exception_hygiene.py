"""EXC — pipeline stages may not swallow failures blindly.

A measurement that silently drops a sample on an unexpected exception
skews every downstream table without a trace.  Stages must catch the
*specific* failure they can handle (``BinaryFormatError``, torn-tail
``JSONDecodeError`` ...) and let everything else propagate.

Applicability: every module under the lint root.

* **EXC001** — a bare ``except:`` clause.
* **EXC002** — ``except Exception`` / ``BaseException`` whose entire
  body is ``pass`` (or ``...``): the catch-all that erases failures.
"""

import ast

from repro.lint.engine import Emitter, Rule
from repro.lint.findings import register_rule
from repro.lint.symbols import ModuleInfo

EXC001 = register_rule(
    "EXC001", "exception-hygiene", "bare except clause")
EXC002 = register_rule(
    "EXC002", "exception-hygiene",
    "catch-all exception handler silently passes")

_CATCH_ALL = frozenset({"Exception", "BaseException"})


def _is_noop_body(body) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in body)


class ExceptionHygieneRule(Rule):
    """EXC001/EXC002 on every except handler."""

    def visit(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter) -> None:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            emitter.emit(
                EXC001.rule_id, node,
                "bare 'except:' swallows SystemExit/KeyboardInterrupt "
                "too — name the exception the stage can actually "
                "handle")
            return
        if isinstance(node.type, ast.Name) and \
                node.type.id in _CATCH_ALL and _is_noop_body(node.body):
            emitter.emit(
                EXC002.rule_id, node,
                f"'except {node.type.id}: pass' erases failures — "
                "handle the specific error or let it propagate")
