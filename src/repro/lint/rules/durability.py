"""DUR — checkpoint writes must follow the crash-safe discipline.

:class:`repro.ingest.checkpoint.CheckpointStore` promises that *every*
crash point is safe; that only holds if every write under the
checkpoint directory keeps the write → flush → fsync → atomic-rename
ordering.  A direct ``open(target, "w")`` tears the previous state the
moment it truncates; a rename of un-fsync'd bytes can surface an empty
file after power loss.

Applicability: modules under an ``ingest/`` directory (the durable
subsystem).  Append-mode opens are exempt from DUR001 — the journal is
an append-only WAL whose sync point is the commit marker.

* **DUR001** — a truncating (``"w"``/``"wb"``) open, ``write_text`` or
  ``write_bytes`` in a function with no ``os.replace``/``os.rename``:
  the write lands on the final path non-atomically.
* **DUR002** — a function renames a file it wrote without both
  flushing and fsyncing it first.
"""

import ast
from typing import List, Optional

from repro.lint.engine import Emitter, Rule
from repro.lint.findings import register_rule
from repro.lint.symbols import (
    FUNCTION_NODES,
    ModuleInfo,
    dotted_name,
    walk_scope,
)

DUR001 = register_rule(
    "DUR001", "durability",
    "non-atomic write in a durable path")
DUR002 = register_rule(
    "DUR002", "durability",
    "atomic rename of un-fsynced data")

SCOPE_DIRS = frozenset({"ingest"})

_RENAME_CALLS = frozenset({"os.replace", "os.rename"})
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _open_write_mode(call: ast.Call) -> Optional[str]:
    """The truncating mode of an ``open``/``.open`` call, or None."""
    callee = dotted_name(call.func)
    is_method = (isinstance(call.func, ast.Attribute)
                 and call.func.attr == "open")
    if callee != "open" and not is_method:
        return None
    # builtin open(path, mode) vs Path.open(mode): position differs
    mode_index = 0 if is_method else 1
    mode_expr: Optional[ast.expr] = None
    if len(call.args) > mode_index:
        mode_expr = call.args[mode_index]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_expr = keyword.value
    if isinstance(mode_expr, ast.Constant) and \
            isinstance(mode_expr.value, str) and "w" in mode_expr.value:
        return mode_expr.value
    return None


class DurabilityRule(Rule):
    """DUR001/DUR002, analysed one function at a time."""

    def applies(self, module: ModuleInfo) -> bool:
        return module.in_directory(SCOPE_DIRS)

    def visit(self, node: ast.AST, module: ModuleInfo,
              emitter: Emitter) -> None:
        if isinstance(node, FUNCTION_NODES):
            self._check_function(node, emitter)

    def _check_function(self, func, emitter: Emitter) -> None:
        writes: List[ast.Call] = []
        renames: List[ast.Call] = []
        has_flush = has_fsync = False
        for node in walk_scope(func):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if _open_write_mode(node) is not None:
                writes.append(node)
            elif isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _WRITE_METHODS:
                writes.append(node)
            elif callee in _RENAME_CALLS:
                renames.append(node)
            elif isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "flush":
                has_flush = True
            elif callee == "os.fsync" or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fsync"):
                has_fsync = True
        if writes and not renames:
            for write in writes:
                emitter.emit(
                    DUR001.rule_id, write,
                    "truncating write without an atomic rename — write "
                    "to a temp file, flush, fsync, then os.replace() "
                    "(see CheckpointStore.write_snapshot)")
        if writes and renames and not (has_flush and has_fsync):
            missing = []
            if not has_flush:
                missing.append("flush()")
            if not has_fsync:
                missing.append("os.fsync()")
            for rename in renames:
                emitter.emit(
                    DUR002.rule_id, rename,
                    "rename of data never "
                    f"{' / '.join(missing)}-ed — a crash can surface "
                    "an empty or torn file despite the atomic rename")
