"""PAR — everything crossing a process-pool boundary must be safe.

``ProcessPoolExecutor`` pickles the submitted callable by qualified
name and runs it in a forked worker: lambdas and nested closures fail
(or worse, capture state that silently diverges), and a task that
mutates module globals mutates the *worker's* copy — the parent never
sees it, which is exactly the silent-divergence bug class the
serial-vs-parallel equivalence suite exists to catch.

Applicability: modules importing :mod:`concurrent.futures`.

* **PAR001** — the callable submitted to an executor (or passed as
  ``initializer=``) is not a module-level function: lambda, nested
  def, bound method, or unresolvable expression.
* **PAR002** — a submitted task function declares ``global`` or stores
  into a module-level name (workers would each mutate their own copy).
  The pool ``initializer`` is exempt: priming per-process state is its
  job.

The one-level indirection the real engine uses
(``self._map_chunks(_stage1_chunk, ...)`` forwarding to
``pool.submit(fn, ...)``) is traced through the intra-module call
graph: when the submitted expression is a parameter of the enclosing
function, every call site's argument at that position is resolved and
checked instead.
"""

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.engine import Emitter, Rule
from repro.lint.findings import register_rule
from repro.lint.symbols import (
    FUNCTION_NODES,
    ModuleInfo,
    dotted_name,
    parameter_names,
    walk_scope,
)

PAR001 = register_rule(
    "PAR001", "parallel-safety",
    "callable crossing the process-pool boundary is not a "
    "module-level function")
PAR002 = register_rule(
    "PAR002", "parallel-safety",
    "submitted task mutates module globals")

_EXECUTOR_MODULES = frozenset({"concurrent.futures"})


class ParallelSafetyRule(Rule):
    """PAR001/PAR002; whole-module analysis at ``finish``."""

    def applies(self, module: ModuleInfo) -> bool:
        return module.imports_any(_EXECUTOR_MODULES)

    def finish(self, module: ModuleInfo, emitter: Emitter) -> None:
        functions = self._all_functions(module)
        task_names: Set[str] = set()
        for func, qualname in functions:
            for node in walk_scope(func):
                if isinstance(node, ast.Call):
                    self._check_call(node, func, qualname, functions,
                                     module, emitter, task_names)
        for name in sorted(task_names):
            task = module.module_functions.get(name)
            if task is not None:
                self._check_task_body(task, module, emitter)

    @staticmethod
    def _all_functions(module: ModuleInfo) -> List[Tuple[ast.AST, str]]:
        """Every function in the module with its display qualname."""
        out: List[Tuple[ast.AST, str]] = []
        for name, func in module.module_functions.items():
            out.append((func, name))
        for cls_name, cls in module.module_classes.items():
            for node in cls.body:
                if isinstance(node, FUNCTION_NODES):
                    out.append((node, f"{cls_name}.{node.name}"))
        return out

    # -- submission sites --------------------------------------------------

    def _check_call(self, call: ast.Call, func, qualname: str,
                    functions, module: ModuleInfo, emitter: Emitter,
                    task_names: Set[str]) -> None:
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr == "submit" and call.args:
            self._check_callable(call.args[0], func, qualname,
                                 functions, module, emitter, task_names)
        callee = dotted_name(call.func)
        if callee is not None and \
                callee.split(".")[-1] == "ProcessPoolExecutor":
            for keyword in call.keywords:
                if keyword.arg == "initializer":
                    # module-level check only; initializers may set
                    # per-process globals by design.
                    self._check_callable(keyword.value, func, qualname,
                                         functions, module, emitter,
                                         set())

    def _check_callable(self, expr: ast.expr, func, qualname: str,
                        functions, module: ModuleInfo,
                        emitter: Emitter,
                        task_names: Set[str]) -> None:
        if isinstance(expr, ast.Lambda):
            emitter.emit(
                PAR001.rule_id, expr,
                "lambda submitted to a process pool — workers cannot "
                "pickle it; hoist it to a module-level function",
                symbol=qualname)
            return
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in module.module_functions:
                task_names.add(name)
                return
            if self._is_nested_def(name, func):
                emitter.emit(
                    PAR001.rule_id, expr,
                    f"nested function '{name}' submitted to a process "
                    "pool — closures do not survive pickling; hoist it "
                    "to module level", symbol=qualname)
                return
            if name in parameter_names(func, skip_self=False):
                self._trace_parameter(name, func, qualname, functions,
                                      module, emitter, task_names)
                return
        emitter.emit(
            PAR001.rule_id, expr,
            "cannot resolve the submitted callable to a module-level "
            "function — only picklable top-level functions may cross "
            "the pool boundary", symbol=qualname)

    @staticmethod
    def _is_nested_def(name: str, func) -> bool:
        return any(isinstance(n, FUNCTION_NODES) and n.name == name
                   for n in walk_scope(func))

    # -- one-level indirection via the intra-module call graph -------------

    def _trace_parameter(self, param: str, func, qualname: str,
                         functions, module: ModuleInfo,
                         emitter: Emitter,
                         task_names: Set[str]) -> None:
        position = self._param_position(param, func)
        if position is None:
            return
        for caller, caller_qualname in functions:
            if caller is func:
                continue
            for node in walk_scope(caller):
                if not isinstance(node, ast.Call):
                    continue
                if not self._calls_function(node, func):
                    continue
                if position >= len(node.args):
                    continue
                argument = node.args[position]
                if isinstance(argument, ast.Name) and \
                        argument.id in module.module_functions:
                    task_names.add(argument.id)
                elif isinstance(argument, (ast.Lambda, ast.Name)):
                    self._check_callable(argument, caller,
                                         caller_qualname, functions,
                                         module, emitter, task_names)

    @staticmethod
    def _param_position(param: str, func) -> Optional[int]:
        names = [a.arg for a in func.args.posonlyargs + func.args.args]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        try:
            return names.index(param)
        except ValueError:
            return None

    @staticmethod
    def _calls_function(call: ast.Call, func) -> bool:
        if isinstance(call.func, ast.Name):
            return call.func.id == func.name
        if isinstance(call.func, ast.Attribute):
            return call.func.attr == func.name
        return False

    # -- task-body hygiene -------------------------------------------------

    def _check_task_body(self, task, module: ModuleInfo,
                         emitter: Emitter) -> None:
        for node in walk_scope(task):
            if isinstance(node, ast.Global):
                emitter.emit(
                    PAR002.rule_id, node,
                    f"task '{task.name}' declares "
                    f"global {', '.join(node.names)} — worker-side "
                    "global mutation never reaches the parent process",
                    symbol=task.name)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                for target in ([node.target]
                               if isinstance(node, ast.AugAssign)
                               else node.targets):
                    self._check_store(target, task, module, emitter)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("append", "update", "add",
                                       "put", "setdefault", "extend"):
                base = node.func.value
                if isinstance(base, ast.Name) and \
                        base.id in module.module_names and \
                        base.id not in module.module_functions:
                    emitter.emit(
                        PAR002.rule_id, node,
                        f"task '{task.name}' mutates module-level "
                        f"'{base.id}' via .{node.func.attr}() — "
                        "worker-side cache/global writes are lost on "
                        "the parent", symbol=task.name)

    def _check_store(self, target: ast.expr, task, module: ModuleInfo,
                     emitter: Emitter) -> None:
        if isinstance(target, ast.Subscript) and \
                isinstance(target.value, ast.Name) and \
                target.value.id in module.module_names and \
                target.value.id not in module.module_functions:
            emitter.emit(
                PAR002.rule_id, target,
                f"task '{task.name}' stores into module-level "
                f"'{target.value.id}' — worker-side writes never "
                "reach the parent process", symbol=task.name)
