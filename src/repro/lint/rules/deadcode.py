"""DEAD — module-level functions unreachable from the CLI entrypoints.

A measurement pipeline accretes helpers; the ones nothing reaches any
more are API drift waiting to mislead the next reader.  This pass
walks the project call graph from its roots — every module body, every
method (classes may be driven dynamically), every ``__all__`` export,
every dunder, and everything defined in an entrypoint module (stem
``cli``/``__main__``) — following *references* (calls, stores,
argument passing, re-exports), and flags the top-level functions no
root ever mentions.

The pass only runs when the analyzed project actually contains an
entrypoint module: linting a lone module, a fixture, or a library
subtree stays silent rather than declaring everything dead.  Public
API that is intentionally test-only or external-facing belongs in
``__all__`` — that both documents the intent and exempts it here.
"""

from repro.lint.callgraph import ProjectIndex
from repro.lint.engine import ProjectEmitter, ProjectRule
from repro.lint.findings import register_rule

DEAD001 = register_rule(
    "DEAD001", "dead-code",
    "module-level function unreachable from any CLI entrypoint")


class DeadCodeRule(ProjectRule):
    """DEAD001 over the project call graph."""

    def applies(self, index: ProjectIndex) -> bool:
        return index.has_entrypoint

    def run(self, index: ProjectIndex,
            emitter: ProjectEmitter) -> None:
        live = index.reachable_functions()
        for summary in index.summaries:
            if summary.is_entrypoint:
                continue
            for name in sorted(summary.module_functions):
                if name in summary.exported:
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue
                if (summary.dotted, name) in live:
                    continue
                emitter.emit(
                    DEAD001.rule_id, summary.dotted,
                    summary.module_functions[name], 1,
                    f"module-level function '{name}' is unreachable "
                    f"from any CLI entrypoint — delete it, or declare "
                    f"it public API via __all__", symbol=name)
