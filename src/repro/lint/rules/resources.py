"""RES — acquire/release pair tracking over the whole program.

The out-of-core pipeline leans on OS-backed handles everywhere:
``mmap``-ed segment readers in ``scale.store``, spill files in the
sharded aggregator, listen/reservation sockets in the server fleet.
Every one of those must reach a release on *every* path out of its
owner, or a long ingest run leaks file descriptors until the kernel
says no.  This pass tracks acquisition sites
(:data:`~repro.lint.contracts.RESOURCE_FACTORY_TEXTS` /
:data:`RESOURCE_FACTORY_CALLS`) and their releases as interprocedural
facts on the shared :class:`~repro.lint.interproc.ResolvedProgram`.

**RES001** fires when an acquisition path can exit without release:

* the handle is bound but no ``close``/``release``/``stop`` ever
  touches it ("never released"),
* the only release is outside any ``finally`` ("released only on the
  happy path" — an exception between acquire and close leaks),
* the result is stored on ``self`` but the owning class defines no
  release method at all,
* the result is acquired and immediately dropped.

Sanctioned ownership transfers stay silent: ``with`` management,
returning the handle (the *caller* inherits the obligation — calls to
such factory functions are themselves acquisition sites, found by a
returns-resource fixpoint), yielding it, passing it whole to another
call, or storing it on a class that has a release method.  Classes
that wrap a raw acquire in ``__init__`` and expose a release method
("resource classes": segment readers, clients) make their *call
sites* acquisition sites too, under the same ownership rules.
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.contracts import RESOURCE_RELEASE_METHODS
from repro.lint.engine import ProjectEmitter, ProjectRule
from repro.lint.facts import AcquireFact, FunctionFact, ModuleSummary
from repro.lint.findings import register_rule
from repro.lint.interproc import FnKey, ResolvedProgram, resolved_program

RES001 = register_rule(
    "RES001", "resource-lifecycle",
    "resource acquisition can exit without release")

#: the subsystems that own OS-backed handles — emission is scoped here
#: (the returner/resource-class fixpoints stay whole-program so an
#: in-scope caller of an out-of-scope factory is still checked).
SCOPE_DIRS = frozenset({"scale", "serve", "stratum", "perf", "ingest"})


def _in_scope(dotted: str) -> bool:
    return not SCOPE_DIRS.isdisjoint(dotted.split("."))


def _has_release(summary: ModuleSummary, cls_name: str) -> bool:
    cls = summary.classes.get(cls_name)
    return cls is not None and \
        bool(cls.attrs & RESOURCE_RELEASE_METHODS)


def _bound_names(fact: FunctionFact) -> Dict[int, str]:
    """call index -> the single local name its result is bound to."""
    out: Dict[int, str] = {}
    for name, bind in fact.binds.items():
        if bind.is_call is not None:
            out[bind.is_call] = name
    return out


def _candidate_names(fact: FunctionFact, ci: Optional[int]
                     ) -> FrozenSet[str]:
    """Every local name whose binding involves call ``ci`` — the
    tuple-unpack (``r, w = os.pipe()``) and reassigned-name
    (``sock = make() ... sock = other``) fallback when the acquire has
    no unique single-name binding."""
    if ci is None:
        return frozenset()
    return frozenset(name for name, bind in fact.binds.items()
                     if ci in bind.calls)


def _consumed_calls(fact: FunctionFact) -> Set[int]:
    """Call indices whose value flows onward: returned, or nested in
    another call's arguments (ownership transferred)."""
    consumed: Set[int] = set(fact.ret.calls)
    for call in fact.calls:
        for arg in call.args:
            consumed.update(arg.calls)
        for _kw, arg in call.kwargs:
            consumed.update(arg.calls)
    return consumed


class ResourceLifecycleRule(ProjectRule):
    """RES001 over direct, factory-returned and class-wrapped handles."""

    def run(self, index, emitter: ProjectEmitter) -> None:
        program = resolved_program(index)
        returners = self._resource_returners(program)
        resource_classes = self._resource_classes(program, returners)
        for key in sorted(program.facts):
            if not _in_scope(key[0]):
                continue
            self._check_function(program, key, returners,
                                 resource_classes, emitter)

    # -- interprocedural substrate -----------------------------------------

    @staticmethod
    def _escapes_with(fact: FunctionFact, acq: AcquireFact) -> bool:
        """The acquired handle leaves this function's ownership."""
        if acq.name is not None and acq.name in fact.returned_names:
            return True
        return acq.call_index is not None and \
            acq.call_index in fact.ret.calls

    def _resource_returners(self, program: ResolvedProgram
                            ) -> Dict[FnKey, str]:
        """Functions whose return value is an unreleased handle."""
        returners: Dict[FnKey, str] = {}
        for key, (_summary, fact) in program.facts.items():
            for acq in fact.acquires:
                if not acq.managed and self._escapes_with(fact, acq):
                    returners[key] = acq.kind
                    break
        # transitive: returning another returner's result.
        changed = True
        while changed:
            changed = False
            for key, (_summary, fact) in program.facts.items():
                if key in returners:
                    continue
                bound = _bound_names(fact)
                for ci, _line, callee in program.edges(key):
                    if callee not in returners:
                        continue
                    name = bound.get(ci)
                    if ci in fact.ret.calls or (
                            name is not None
                            and name in fact.returned_names):
                        returners[key] = returners[callee]
                        changed = True
                        break
        return returners

    @staticmethod
    def _resource_classes(program: ResolvedProgram,
                          returners: Dict[FnKey, str]
                          ) -> Dict[FnKey, str]:
        """``(module, "Cls.__init__")`` keys whose class wraps a raw
        handle and exposes a release method; value is the kind."""
        out: Dict[FnKey, str] = {}
        for key, (summary, fact) in program.facts.items():
            if not key[1].endswith(".__init__"):
                continue
            cls_name = key[1].split(".")[0]
            if not _has_release(summary, cls_name):
                continue
            kind: Optional[str] = None
            if fact.acquires:
                kind = fact.acquires[0].kind
            else:
                for _ci, _line, callee in program.edges(key):
                    if callee in returners:
                        kind = returners[callee]
                        break
            if kind is not None:
                out[key] = f"{cls_name}({kind})"
        return out

    # -- per-function ownership check --------------------------------------

    def _check_function(self, program: ResolvedProgram, key: FnKey,
                        returners: Dict[FnKey, str],
                        resource_classes: Dict[FnKey, str],
                        emitter: ProjectEmitter) -> None:
        summary, fact = program.facts[key]
        bound = _bound_names(fact)
        consumed = _consumed_calls(fact)
        events: List[Tuple[int, int, str, Optional[str], bool,
                           Optional[int]]] = []
        for acq in fact.acquires:
            if acq.managed:
                continue
            events.append((acq.line, acq.col, acq.kind, acq.name,
                           acq.stored_attr, acq.call_index))
        for ci, line, callee in program.edges(key):
            kind = returners.get(callee) or resource_classes.get(callee)
            if kind is None or callee == key:
                continue
            if ci in fact.with_call_indices:
                continue
            events.append((line, 1, kind, bound.get(ci),
                           ci in fact.attr_store_call_indices, ci))
        for line, col, kind, name, stored_attr, ci in sorted(events):
            message = self._verdict(summary, fact, kind, name,
                                    stored_attr, ci, consumed)
            if message is not None:
                emitter.emit(RES001.rule_id, summary.dotted, line,
                             col, message, symbol=fact.qualname)

    @staticmethod
    def _verdict(summary: ModuleSummary, fact: FunctionFact, kind: str,
                 name: Optional[str], stored_attr: bool,
                 ci: Optional[int], consumed: Set[int]
                 ) -> Optional[str]:
        """None when ownership is sound, else the RES001 message."""
        names = (frozenset({name}) if name is not None
                 else _candidate_names(fact, ci))
        if names:
            happy: List[str] = []
            for candidate in sorted(names):
                if candidate in fact.escaping_names or \
                        candidate in fact.with_names or \
                        candidate in fact.finally_closed_names:
                    continue  # transferred, managed, or finally-closed
                if candidate in fact.closed_names:
                    happy.append(candidate)
                    continue
                return (f"'{candidate}' ({kind}) is never released on "
                        f"any path — close it in a finally or use "
                        f"`with`")
            if happy:
                return (f"'{happy[0]}' ({kind}) is released only on "
                        f"the happy path — an exception between "
                        f"acquire and close leaks the handle; move "
                        f"the close into a finally or use `with`")
            return None
        if stored_attr:
            cls_name = fact.qualname.split(".")[0] \
                if "." in fact.qualname else None
            if cls_name is not None and _has_release(summary, cls_name):
                return None  # the owning object carries the obligation
            owner = cls_name or "the module"
            return (f"{kind} handle stored on an attribute, but "
                    f"{owner} defines no release method "
                    f"(close/stop/shutdown/__exit__)")
        if ci is not None and ci in consumed:
            return None  # returned or passed whole to another call
        return (f"{kind} handle is acquired and immediately dropped — "
                f"bind and release it, or use `with`")
