"""SCHEMA — record shapes must agree across stage boundaries.

The pipeline passes record-shaped dicts between stages (pipeline →
codecs → checkpoint snapshots → report renderers); nothing but
convention keeps a producer's keys and a consumer's reads in sync.
This whole-program pass infers, from the fact summaries, the dict-key
*write* set of every closed producer and the *effective read* set of
every function parameter (a fixpoint over whole-dict forwarding), then
checks every resolvable boundary:

* **SCHEMA001** — a key is written but no reachable consumer ever
  reads it (reported only when *every* consumer resolved: one opaque
  escape — json.dumps, an unresolved callee, iteration — silences the
  check rather than guessing).
* **SCHEMA002** — a consumer *requires* a key (``d["k"]``,
  ``d.pop("k")``) that the producer at some resolved call site never
  writes.  Soft probes (``d.get``, ``"k" in d``) are uses, not
  requirements.
* **SCHEMA003** — a constructed shape drifts from a dataclass: unknown
  keyword/`**` fields into a dataclass constructor, or an
  attribute read on a dataclass-annotated parameter that the class
  (fields + methods + ``self.X`` stores, bases resolved) never defines
  — the codec/snapshot drift class of bug.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.lint.callgraph import ProjectIndex, Resolution
from repro.lint.contracts import RECORD_FIELD_CONTRACTS
from repro.lint.engine import ProjectEmitter, ProjectRule
from repro.lint.facts import ClassFact, FunctionFact, ModuleSummary
from repro.lint.findings import register_rule

SCHEMA001 = register_rule(
    "SCHEMA001", "schema",
    "record key written but never read by any resolved consumer")
SCHEMA002 = register_rule(
    "SCHEMA002", "schema",
    "record key required by a consumer but never written by its "
    "producer")
SCHEMA003 = register_rule(
    "SCHEMA003", "schema",
    "constructed shape drifts from the dataclass record shape")

FnKey = Tuple[str, str]
#: key -> (relpath, line, hard requirement?); None means TOP (opaque).
ReadSet = Optional[Dict[str, Tuple[str, int, bool]]]


class SchemaContractRule(ProjectRule):
    """SCHEMA001/002/003 over the joined project index."""

    def run(self, index: ProjectIndex,
            emitter: ProjectEmitter) -> None:
        self._res_cache: Dict[Tuple[str, str, int],
                              Optional[Resolution]] = {}
        eff = self._effective_reads(index)
        self._check_local_unread(index, eff, emitter)
        self._check_returned_shapes(index, eff, emitter)
        self._check_boundaries(index, eff, emitter)
        self._check_dataclass_drift(index, emitter)
        self._check_contract_drift(index, emitter)

    # -- shared plumbing ----------------------------------------------------

    def _resolve(self, index: ProjectIndex, summary: ModuleSummary,
                 fact: FunctionFact, ci: int) -> Optional[Resolution]:
        key = (summary.dotted, fact.qualname, ci)
        if key not in self._res_cache:
            self._res_cache[key] = index.resolve_call(
                fact.calls[ci], fact, summary)
        return self._res_cache[key]

    @staticmethod
    def _own_reads(summary: ModuleSummary,
                   fact: FunctionFact, name: str) -> ReadSet:
        """A name's direct key reads in its own function, or TOP."""
        use = fact.name_uses.get(name)
        if use is None:
            return {}
        if use.open_reads or use.returned:
            return None
        out: Dict[str, Tuple[str, int, bool]] = {}
        for key, line in use.key_tests.items():
            out[key] = (summary.relpath, line, False)
        for key, line in use.key_reads.items():
            out[key] = (summary.relpath, line, True)
        return out

    def _effective_reads(
            self, index: ProjectIndex,
    ) -> Dict[FnKey, List[ReadSet]]:
        """Per-parameter key-read sets, closed over whole-dict
        forwarding between resolved functions (TOP on any escape)."""
        eff: Dict[FnKey, List[ReadSet]] = {}
        for summary in index.summaries:
            for qualname, fact in summary.functions.items():
                eff[(summary.dotted, qualname)] = [
                    self._own_reads(summary, fact, name)
                    for name in fact.params]
        for _ in range(len(eff) + 1):
            changed = False
            for summary in index.summaries:
                for qualname, fact in summary.functions.items():
                    row = eff[(summary.dotted, qualname)]
                    for i, name in enumerate(fact.params):
                        use = fact.name_uses.get(name)
                        if use is None or row[i] is None:
                            continue
                        for ci, pos in use.forwards:
                            grown = self._forwarded(
                                index, summary, fact, ci, pos, eff)
                            if grown is None:
                                row[i] = None
                                changed = True
                                break
                            for key, where in grown.items():
                                if key not in row[i]:
                                    row[i][key] = where
                                    changed = True
                                elif where[2] and not row[i][key][2]:
                                    row[i][key] = where
                                    changed = True
                        else:
                            continue
            if not changed:
                break
        return eff

    def _forwarded(self, index: ProjectIndex, summary: ModuleSummary,
                   fact: FunctionFact, ci: int, pos: int,
                   eff: Dict[FnKey, List[ReadSet]]) -> ReadSet:
        """Reads implied by forwarding a dict whole into call ``ci``."""
        res = self._resolve(index, summary, fact, ci)
        if res is None or res.kind != "function":
            return None
        row = eff.get((res.module, res.qualname))
        target = index.by_dotted[res.module].functions[res.qualname]
        if row is None or pos >= len(target.params):
            return None
        return row[pos]

    # -- SCHEMA001: written-never-read --------------------------------------

    def _check_local_unread(self, index: ProjectIndex,
                            eff: Dict[FnKey, List[ReadSet]],
                            emitter: ProjectEmitter) -> None:
        for summary in index.summaries:
            for qualname in sorted(summary.functions):
                fact = summary.functions[qualname]
                for name in sorted(fact.name_uses):
                    if name in fact.params:
                        continue
                    use = fact.name_uses[name]
                    if not (use.dict_inits > 0 and use.other_inits == 0
                            and not use.open_reads
                            and not use.returned):
                        continue
                    consumed: Set[str] = (set(use.key_reads)
                                          | set(use.key_tests))
                    opaque = False
                    for ci, pos in use.forwards:
                        grown = self._forwarded(
                            index, summary, fact, ci, pos, eff)
                        if grown is None:
                            opaque = True
                            break
                        consumed |= set(grown)
                    if opaque:
                        continue
                    for key, line in sorted(use.key_writes.items()):
                        if key in consumed:
                            continue
                        emitter.emit(
                            SCHEMA001.rule_id, summary.dotted, line, 1,
                            f"key '{key}' written to '{name}' is "
                            f"never read by any consumer (every "
                            f"consumer resolved) — dead schema field",
                            symbol=qualname)

    def _call_sites(self, index: ProjectIndex,
                    ) -> Dict[FnKey, List[Tuple[ModuleSummary,
                                                FunctionFact, int]]]:
        sites: Dict[FnKey, List] = {}
        for summary in index.summaries:
            for qualname in sorted(summary.functions):
                fact = summary.functions[qualname]
                for ci in range(len(fact.calls)):
                    res = self._resolve(index, summary, fact, ci)
                    if res is not None and res.kind == "function":
                        sites.setdefault(
                            (res.module, res.qualname), []).append(
                                (summary, fact, ci))
        return sites

    def _check_returned_shapes(self, index: ProjectIndex,
                               eff: Dict[FnKey, List[ReadSet]],
                               emitter: ProjectEmitter) -> None:
        """SCHEMA001 for closed dict shapes returned to callers."""
        sites = self._call_sites(index)
        for summary in index.summaries:
            for qualname in sorted(summary.functions):
                fact = summary.functions[qualname]
                keys = fact.returns_dict_keys
                if not keys:
                    continue
                callers = sites.get((summary.dotted, qualname), [])
                if not callers:
                    continue  # public API; external consumers unknown
                consumed: Set[str] = set()
                opaque = False
                for c_summary, c_fact, ci in callers:
                    cons = self._consumption(
                        index, c_summary, c_fact, ci, eff)
                    if cons is None:
                        opaque = True
                        break
                    consumed |= cons
                if opaque:
                    continue
                for key, line in sorted(keys.items()):
                    if key in consumed:
                        continue
                    emitter.emit(
                        SCHEMA001.rule_id, summary.dotted, line, 1,
                        f"result key '{key}' of {qualname}() is never "
                        f"read by any caller (all "
                        f"{len(callers)} call sites resolved) — dead "
                        f"schema field", symbol=qualname)

    def _consumption(self, index: ProjectIndex,
                     summary: ModuleSummary, fact: FunctionFact,
                     ci: int,
                     eff: Dict[FnKey, List[ReadSet]]) -> Optional[Set[str]]:
        """Keys call ``ci``'s result has read from it; None = opaque."""
        if fact.ret.is_call == ci:
            # returned whole: the caller's own callers may read it.
            # (a call merely nested in the return expression is still
            # tracked through the arg.is_call branch below.)
            return None
        consumed: Set[str] = set()
        recognised = False
        for name, bind in fact.binds.items():
            if ci not in bind.calls:
                continue
            if bind.is_call != ci:
                return None  # result embedded in a larger expression
            recognised = True
            own = self._own_reads(summary, fact, name)
            if own is None:
                return None
            consumed |= set(own)
            use = fact.name_uses.get(name)
            for cj, pos in (use.forwards if use is not None else ()):
                grown = self._forwarded(
                    index, summary, fact, cj, pos, eff)
                if grown is None:
                    return None
                consumed |= set(grown)
        for cj, call in enumerate(fact.calls):
            for pos, arg in enumerate(call.args):
                if arg.is_call == ci:
                    recognised = True
                    grown = self._forwarded(
                        index, summary, fact, cj, pos, eff)
                    if grown is None:
                        return None
                    consumed |= set(grown)
                elif ci in arg.calls:
                    return None
            for _, arg in call.kwargs:
                if ci in arg.calls:
                    return None
        if not recognised:
            return None  # discarded or used in an untracked context
        return consumed

    # -- SCHEMA002: read-never-written --------------------------------------

    def _check_boundaries(self, index: ProjectIndex,
                          eff: Dict[FnKey, List[ReadSet]],
                          emitter: ProjectEmitter) -> None:
        reported: Set[Tuple[str, int, str]] = set()
        for summary in index.summaries:
            for qualname in sorted(summary.functions):
                fact = summary.functions[qualname]
                for ci, call in enumerate(fact.calls):
                    res = self._resolve(index, summary, fact, ci)
                    if res is None or res.kind != "function":
                        continue
                    target = index.by_dotted[
                        res.module].functions[res.qualname]
                    row = eff[(res.module, res.qualname)]
                    for pos, arg in enumerate(call.args):
                        provided = self._provided_keys(
                            index, summary, fact, arg)
                        if provided is None or pos >= len(row):
                            continue
                        needed = row[pos]
                        if needed is None:
                            continue
                        for key in sorted(needed):
                            path, line, hard = needed[key]
                            if not hard or key in provided:
                                continue
                            mark = (path, line, key)
                            if mark in reported:
                                continue
                            reported.add(mark)
                            emitter.emit(
                                SCHEMA002.rule_id, res.module, line, 1,
                                f"key '{key}' is required here but "
                                f"never written by the record built "
                                f"at {summary.relpath}:{call.line} "
                                f"({summary.dotted}.{qualname} -> "
                                f"{res.origin})",
                                symbol=res.qualname)

    def _provided_keys(self, index: ProjectIndex,
                       summary: ModuleSummary, fact: FunctionFact,
                       arg) -> Optional[Set[str]]:
        """The closed key set an argument provides, or None."""
        if arg.is_name is not None:
            use = fact.name_uses.get(arg.is_name)
            if use is not None and use.dict_inits > 0 and \
                    use.other_inits == 0 and not use.open_writes:
                return set(use.key_writes)
            return None
        if arg.is_call is not None:
            res = self._resolve(index, summary, fact, arg.is_call)
            if res is not None and res.kind == "function":
                keys = index.by_dotted[res.module].functions[
                    res.qualname].returns_dict_keys
                if keys:
                    return set(keys)
        return None

    # -- SCHEMA003: dataclass shape drift -----------------------------------

    def _class_closure(self, index: ProjectIndex,
                       cls_res: Resolution, depth: int = 8,
                       ) -> Optional[Tuple[ClassFact, Set[str],
                                           Set[str]]]:
        """(class, all fields, all attrs) with bases resolved, or
        None when any base is external (attrs unknowable)."""
        if depth <= 0:
            return None
        owner = index.by_dotted[cls_res.module]
        cls = owner.classes.get(cls_res.qualname)
        if cls is None:
            return None
        fields: Set[str] = set(cls.fields)
        attrs: Set[str] = set(cls.attrs)
        for base_text in cls.bases:
            head, *rest = base_text.split(".")
            if not rest and head in owner.classes:
                candidate = f"{owner.dotted}.{head}"
            else:
                origin = owner.import_aliases.get(head)
                if origin is None:
                    return None
                candidate = ".".join([origin] + rest)
            base_res = index.resolve_qualified(candidate)
            if base_res is None or base_res.kind != "class":
                return None
            deeper = self._class_closure(index, base_res, depth - 1)
            if deeper is None:
                return None
            _, base_fields, base_attrs = deeper
            fields |= base_fields
            attrs |= base_attrs
        return cls, fields, attrs

    def _check_dataclass_drift(self, index: ProjectIndex,
                               emitter: ProjectEmitter) -> None:
        for summary in index.summaries:
            for qualname in sorted(summary.functions):
                fact = summary.functions[qualname]
                self._check_ctor_kwargs(index, summary, fact, emitter)
                self._check_starstar(index, summary, fact, emitter)
                self._check_annotated_params(
                    index, summary, fact, emitter)

    def _resolve_class(self, index: ProjectIndex,
                       summary: ModuleSummary, fact: FunctionFact,
                       text: str) -> Optional[Resolution]:
        res = index._resolve_text(text, summary, fact)
        if res is not None and res.kind == "class":
            return res
        return None

    def _check_ctor_kwargs(self, index: ProjectIndex,
                           summary: ModuleSummary, fact: FunctionFact,
                           emitter: ProjectEmitter) -> None:
        for ci, call in enumerate(fact.calls):
            if not call.kwargs or call.callee is None:
                continue
            res = self._resolve_class(index, summary, fact,
                                      call.callee)
            if res is None:
                continue
            closure = self._class_closure(index, res)
            if closure is None:
                continue
            cls, fields, attrs = closure
            if not cls.is_dataclass or "__init__" in cls.attrs:
                continue
            for kw_name, _ in call.kwargs:
                if kw_name is None or kw_name in fields:
                    continue
                emitter.emit(
                    SCHEMA003.rule_id, summary.dotted, call.line,
                    call.col,
                    f"keyword '{kw_name}' is not a field of "
                    f"dataclass {res.origin} — constructed shape "
                    f"drifts from the record shape",
                    symbol=fact.qualname)

    def _check_starstar(self, index: ProjectIndex,
                        summary: ModuleSummary, fact: FunctionFact,
                        emitter: ProjectEmitter) -> None:
        for callee, data_name, line in fact.starstar_calls:
            res = self._resolve_class(index, summary, fact, callee)
            if res is None:
                continue
            closure = self._class_closure(index, res)
            if closure is None:
                continue
            cls, fields, attrs = closure
            if not cls.is_dataclass or "__init__" in cls.attrs:
                continue
            use = fact.name_uses.get(data_name)
            if use is None or not (use.dict_inits > 0
                                   and use.other_inits == 0
                                   and not use.open_writes):
                continue
            for key in sorted(use.key_writes):
                if key in fields:
                    continue
                emitter.emit(
                    SCHEMA003.rule_id, summary.dotted, line, 1,
                    f"'{data_name}' carries key '{key}' into "
                    f"{res.origin}(**{data_name}) but the dataclass "
                    f"has no such field — snapshot/codec drift",
                    symbol=fact.qualname)

    def _check_contract_drift(self, index: ProjectIndex,
                              emitter: ProjectEmitter) -> None:
        """The unit/kind contract table may not outlive the schema.

        Every field :data:`RECORD_FIELD_CONTRACTS` declares a unit or
        kind for must still exist on the real class (fields, methods
        or ``self.X`` stores) — otherwise the UNIT/KIND seeds silently
        stop matching anything and the contract is dead weight.
        Classes absent from the analysed tree are skipped, so linting
        a partial tree stays quiet.
        """
        for summary in index.summaries:
            for qualname in sorted(summary.classes):
                cls = summary.classes[qualname]
                contract = RECORD_FIELD_CONTRACTS.get(
                    qualname.rsplit(".", 1)[-1])
                if contract is None:
                    continue
                for name in sorted(contract):
                    if name in cls.attrs or name in cls.fields:
                        continue
                    emitter.emit(
                        SCHEMA003.rule_id, summary.dotted, cls.line, 1,
                        f"unit/kind contract declares field '{name}' "
                        f"on {qualname} but the class defines no such "
                        f"field — update RECORD_FIELD_CONTRACTS",
                        symbol=qualname)

    def _check_annotated_params(self, index: ProjectIndex,
                                summary: ModuleSummary,
                                fact: FunctionFact,
                                emitter: ProjectEmitter) -> None:
        for i, annotation in enumerate(fact.param_annotations):
            if annotation is None or \
                    i not in fact.param_attr_reads:
                continue
            res = self._resolve_class(index, summary, fact, annotation)
            if res is None:
                continue
            closure = self._class_closure(index, res)
            if closure is None:
                continue
            cls, fields, attrs = closure
            if not cls.is_dataclass:
                continue
            for attr, line in sorted(fact.param_attr_reads[i]):
                if attr in attrs or attr.startswith("__"):
                    continue
                emitter.emit(
                    SCHEMA003.rule_id, summary.dotted, line, 1,
                    f"attribute '.{attr}' read on parameter "
                    f"'{fact.params[i]}: {annotation}' but dataclass "
                    f"{res.origin} defines no such field or method — "
                    f"record-shape drift", symbol=fact.qualname)
