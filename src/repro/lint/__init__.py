"""reprolint — AST/dataflow invariant checking for the pipeline.

The measurement's correctness contracts (enrichment never groups,
grouping ignores donation wallets, streamed == batch, checkpoints are
crash-safe, memo keys are complete, failures are loud) are enforced
mechanically: per-module rule families over a single compile-once
pass of each module, plus whole-program passes (call graph +
interprocedural taint, record-schema contracts, dead-symbol
reachability) over the per-module fact summaries.  See
``docs/static-analysis.md`` for the rule catalogue, pragma syntax and
the baseline workflow.

High-level entry points:

* :func:`lint_source_tree` — lint a tree and diff against a baseline;
  what the ``repro lint`` CLI, the pytest gate and the overhead bench
  all call.  ``workers=N`` parallelises the per-module work;
  ``changed_only=True`` narrows reporting to files differing from the
  git merge base.
* :class:`repro.lint.engine.LintEngine` — the underlying engine, for
  custom rule sets (the fixture tests drive it directly).
* :func:`repro.lint.callgraph.render_graph` /
  :func:`build_project_index` — the ``repro lint --graph`` dump.
"""

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint.baseline import Baseline, find_baseline
from repro.lint.callgraph import (
    ProjectIndex,
    render_concurrency,
    render_graph,
)
from repro.lint.engine import LintEngine, ProjectRule, Rule, lint_tree
from repro.lint.findings import (
    Finding,
    LintReport,
    RULE_REGISTRY,
    known_rule,
)
import repro.lint.rules  # noqa: F401  (registers every rule ID)

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "LintReport",
    "LintRun",
    "ProjectIndex",
    "ProjectRule",
    "RULE_REGISTRY",
    "Rule",
    "build_project_index",
    "changed_files",
    "default_source_root",
    "find_baseline",
    "known_rule",
    "lint_source_tree",
    "lint_tree",
    "render_concurrency",
    "render_graph",
]


def default_source_root() -> Path:
    """The installed ``repro`` package directory — what HEAD lints."""
    return Path(__file__).resolve().parent.parent


def changed_files(root: Path,
                  base_refs: Tuple[str, ...] = ("origin/main", "main"),
                  ) -> Optional[List[str]]:
    """Files under ``root`` differing from the git merge base.

    Tries ``git merge-base HEAD <ref>`` for each ref in order, then
    diffs (committed *and* working-tree changes).  Returns relpaths
    under ``root``; ``None`` means "couldn't tell" (outside a git
    checkout, or no usable base ref) and callers should fall back to
    a full scan.
    """
    root = Path(root).resolve()

    def git(*argv: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", *argv], cwd=root, capture_output=True,
                text=True, timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    top = git("rev-parse", "--show-toplevel")
    if top is None:
        return None
    for ref in base_refs:
        base = git("merge-base", "HEAD", ref)
        if base is None:
            continue
        diff = git("diff", "--name-only", base.strip(), "--", ".")
        if diff is None:
            continue
        repo_top = Path(top.strip())
        out: List[str] = []
        for line in diff.splitlines():
            if not line.endswith(".py"):
                continue
            absolute = repo_top / line
            try:
                out.append(absolute.relative_to(root).as_posix())
            except ValueError:
                continue  # changed file outside the lint root
        return sorted(set(out))
    return None


@dataclass
class LintRun:
    """One lint-plus-baseline evaluation, ready for gating."""

    report: LintReport
    baseline: Baseline
    regressions: List[Finding] = field(default_factory=list)
    expired: List[Tuple[Tuple[str, str], int, int]] = \
        field(default_factory=list)
    #: relpaths reporting was narrowed to (``--changed``), or None.
    focus: Optional[List[str]] = None

    def ok(self, strict: bool = False) -> bool:
        """Gate verdict: no regressions (and, in strict, no expiry)."""
        if self.report.parse_errors or self.regressions:
            return False
        if strict and self.expired:
            return False
        return True


def lint_source_tree(root: Optional[Path] = None,
                     baseline_path: Optional[Path] = None,
                     workers: Optional[int] = None,
                     changed_only: bool = False,
                     cache_path: Optional[Path] = None) -> LintRun:
    """Lint ``root`` (default: the repro package) against a baseline.

    When ``baseline_path`` is None the nearest ``lint_baseline.toml``
    above ``root`` is used; no file at all means an empty baseline, so
    every finding is a regression.  ``changed_only`` narrows the
    *reported* files to those differing from the git merge base (the
    whole tree is still summarized so cross-module passes stay
    sound); when git can't answer, the full tree is reported.
    Changed-only runs keep a fact cache (``.reprolint-cache`` next to
    the baseline file, or ``cache_path``) so unchanged modules feed
    the whole-program passes without re-parsing.
    """
    root = Path(root) if root is not None else default_source_root()
    focus: Optional[List[str]] = None
    if changed_only:
        focus = changed_files(root)
        if focus is not None and not focus:
            # clean diff: nothing to lint, nothing to gate.
            baseline = _load_baseline(root, baseline_path)
            return LintRun(report=LintReport(), baseline=baseline,
                           focus=[])
        if focus is not None and cache_path is None:
            located = baseline_path or find_baseline(root)
            if located is not None:
                cache_path = located.parent / ".reprolint-cache"
    report = LintEngine(workers=workers,
                        cache_path=cache_path).run(root, focus=focus)
    baseline = _load_baseline(root, baseline_path)
    expired = baseline.expired(report)
    if focus is not None:
        focus_set = set(focus)
        expired = [entry for entry in expired
                   if entry[0][1] in focus_set]
    return LintRun(
        report=report,
        baseline=baseline,
        regressions=baseline.regressions(report),
        expired=expired,
        focus=focus,
    )


def _load_baseline(root: Path,
                   baseline_path: Optional[Path]) -> Baseline:
    if baseline_path is None:
        baseline_path = find_baseline(root)
    return (Baseline.load(baseline_path)
            if baseline_path is not None else Baseline())


def build_project_index(root: Optional[Path] = None) -> ProjectIndex:
    """Summarize ``root`` into the whole-program index (``--graph``)."""
    from repro.lint.facts import summarize_module
    from repro.lint.symbols import build_module_info
    root = Path(root) if root is not None else default_source_root()
    root = root.resolve()
    base = root.parent if root.is_file() else root
    summaries = []
    for path in LintEngine.discover(root):
        try:
            summaries.append(
                summarize_module(build_module_info(path, base)))
        except (SyntaxError, UnicodeDecodeError):
            continue
    return ProjectIndex(summaries)
