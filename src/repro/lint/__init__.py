"""reprolint — AST/dataflow invariant checking for the pipeline.

The measurement's correctness contracts (enrichment never groups,
grouping ignores donation wallets, streamed == batch, checkpoints are
crash-safe, memo keys are complete, failures are loud) are enforced
mechanically by six rule families over a single compile-once pass of
the source tree.  See ``docs/static-analysis.md`` for the rule
catalogue, pragma syntax and the baseline workflow.

High-level entry points:

* :func:`lint_source_tree` — lint a tree and diff against a baseline;
  what the ``repro lint`` CLI, the pytest gate and the overhead bench
  all call.
* :class:`repro.lint.engine.LintEngine` — the underlying engine, for
  custom rule sets (the fixture tests drive it directly).
"""

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint.baseline import Baseline, find_baseline
from repro.lint.engine import LintEngine, Rule, lint_tree
from repro.lint.findings import (
    Finding,
    LintReport,
    RULE_REGISTRY,
    known_rule,
)
import repro.lint.rules  # noqa: F401  (registers every rule ID)

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "LintReport",
    "LintRun",
    "RULE_REGISTRY",
    "Rule",
    "default_source_root",
    "find_baseline",
    "known_rule",
    "lint_source_tree",
    "lint_tree",
]


def default_source_root() -> Path:
    """The installed ``repro`` package directory — what HEAD lints."""
    return Path(__file__).resolve().parent.parent


@dataclass
class LintRun:
    """One lint-plus-baseline evaluation, ready for gating."""

    report: LintReport
    baseline: Baseline
    regressions: List[Finding] = field(default_factory=list)
    expired: List[Tuple[Tuple[str, str], int, int]] = \
        field(default_factory=list)

    def ok(self, strict: bool = False) -> bool:
        """Gate verdict: no regressions (and, in strict, no expiry)."""
        if self.report.parse_errors or self.regressions:
            return False
        if strict and self.expired:
            return False
        return True


def lint_source_tree(root: Optional[Path] = None,
                     baseline_path: Optional[Path] = None) -> LintRun:
    """Lint ``root`` (default: the repro package) against a baseline.

    When ``baseline_path`` is None the nearest ``lint_baseline.toml``
    above ``root`` is used; no file at all means an empty baseline, so
    every finding is a regression.
    """
    root = Path(root) if root is not None else default_source_root()
    report = LintEngine().run(root)
    if baseline_path is None:
        baseline_path = find_baseline(root)
    baseline = (Baseline.load(baseline_path)
                if baseline_path is not None else Baseline())
    return LintRun(
        report=report,
        baseline=baseline,
        regressions=baseline.regressions(report),
        expired=baseline.expired(report),
    )
