"""Blockchain substrate: emission, PoW eras, and a transparent ledger.

Three things the paper needs from "the blockchain":

* the Monero **emission schedule**, to state that illicit campaigns mined
  >= 4.37% of circulating XMR (§IV-D);
* the **PoW fork calendar** (2018-04-06, 2018-10-18, 2019-03-09) whose
  algorithm changes strand outdated miners (§VI);
* a **transparent BTC-style ledger** used to reimplement the Huang et
  al. 2014 baseline — and to demonstrate why that approach cannot work
  for Monero, whose ledger is opaque.
"""

from repro.chain.emission import (
    EmissionSchedule,
    MONERO_EMISSION,
    network_hashrate_hs,
)
from repro.chain.pow import (
    ALGO_BY_ERA,
    PowAlgorithm,
    algo_at,
    algos,
)
from repro.chain.btc_ledger import BtcLedger, Transaction

__all__ = [
    "EmissionSchedule",
    "MONERO_EMISSION",
    "network_hashrate_hs",
    "ALGO_BY_ERA",
    "PowAlgorithm",
    "algo_at",
    "algos",
    "BtcLedger",
    "Transaction",
]
