"""Transparent BTC-style transaction ledger.

Implements the substrate for the Huang et al. (NDSS 2014) baseline the
paper compares against: Bitcoin's public ledger lets an analyst follow
pool payouts to wallets and cluster wallets via the common-input-
ownership heuristic.  Monero's ledger hides amounts and addresses, which
is precisely why that methodology fails there — modelled here by the
:class:`OpaqueLedger` stub whose queries raise.
"""

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.common.errors import ReproError
from repro.common.simtime import Date


@dataclass(frozen=True)
class Transaction:
    """One ledger transaction: inputs are spent, outputs credited."""

    txid: str
    when: Date
    inputs: tuple            # wallet addresses whose coins are spent
    outputs: tuple           # (wallet, amount) pairs


class BtcLedger:
    """Append-only transparent ledger with analysis queries."""

    def __init__(self) -> None:
        self._transactions: List[Transaction] = []
        self._by_output: Dict[str, List[Transaction]] = {}
        self._by_input: Dict[str, List[Transaction]] = {}

    def append(self, tx: Transaction) -> None:
        """Append a transaction and index its inputs/outputs."""
        self._transactions.append(tx)
        for wallet, _amount in tx.outputs:
            self._by_output.setdefault(wallet, []).append(tx)
        for wallet in tx.inputs:
            self._by_input.setdefault(wallet, []).append(tx)

    def payout(self, txid: str, when: Date, source: str, wallet: str,
               amount: float) -> Transaction:
        """Record a pool payout (coinbase-style: one input, one output)."""
        tx = Transaction(txid, when, (source,), ((wallet, amount),))
        self.append(tx)
        return tx

    def balance_received(self, wallet: str) -> float:
        """Total ever received by a wallet (public on a BTC-style chain)."""
        total = 0.0
        for tx in self._by_output.get(wallet, []):
            for out_wallet, amount in tx.outputs:
                if out_wallet == wallet:
                    total += amount
        return total

    def transactions_of(self, wallet: str) -> List[Transaction]:
        """Every transaction touching ``wallet`` (inputs or outputs)."""
        seen: Set[str] = set()
        out: List[Transaction] = []
        for tx in self._by_output.get(wallet, []) + self._by_input.get(wallet, []):
            if tx.txid not in seen:
                seen.add(tx.txid)
                out.append(tx)
        return out

    def cluster_by_cospend(self) -> List[Set[str]]:
        """Common-input-ownership clustering (the Huang et al. heuristic).

        Wallets that appear together as inputs of one transaction are
        assumed to share an owner; clusters are the transitive closure.
        """
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for tx in self._transactions:
            wallets = [w for w in tx.inputs if not w.startswith("pool:")]
            for other in wallets[1:]:
                union(wallets[0], other)
            for w in wallets:
                find(w)
        clusters: Dict[str, Set[str]] = {}
        for wallet in parent:
            clusters.setdefault(find(wallet), set()).add(wallet)
        return list(clusters.values())


class OpaqueLedger:
    """Monero-style ledger: every analyst query fails.

    Ring signatures and stealth addresses make receiver, sender and
    amount invisible; the paper's methodology therefore pivots to pool-
    side statistics instead of chain analysis.
    """

    def balance_received(self, wallet: str) -> float:
        """Always raises: amounts are invisible on a CryptoNote chain."""
        raise ReproError(
            "ledger is opaque: per-wallet amounts are not observable on a "
            "CryptoNote chain; query the mining pools instead"
        )

    def transactions_of(self, wallet: str) -> List[Transaction]:
        """Always raises: transactions are unlinkable to wallets."""
        raise ReproError("ledger is opaque: transactions are unlinkable")

    def cluster_by_cospend(self) -> List[Set[str]]:
        """Always raises: ring signatures hide transaction inputs."""
        raise ReproError("ledger is opaque: inputs are ring signatures")
