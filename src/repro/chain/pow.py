"""Proof-of-Work algorithm eras and the fork calendar.

Monero hard-forks its PoW to stay ASIC-resistant; the paper monitors the
three forks in its window and finds that 72% / 89% / 96% of campaigns
stop providing valid shares after each one, because outdated bots hash
with the wrong algorithm (§IV-E, §VI).
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.common.simtime import Date, POW_FORK_DATES, pow_era


__all__ = [
    "PowAlgorithm",
    "algo_at",
    "algos",
    "max_era_for_software",
]


@dataclass(frozen=True)
class PowAlgorithm:
    """One PoW era."""

    era: int
    name: str          # algorithm identifier as spoken on Stratum
    activated: Optional[Date]  # None = genesis algorithm


#: Era table: index = value returned by :func:`repro.common.simtime.pow_era`.
ALGO_BY_ERA: List[PowAlgorithm] = [
    PowAlgorithm(0, "cn/0", None),
    PowAlgorithm(1, "cn/1", POW_FORK_DATES[0]),   # 2018-04-06 (v7)
    PowAlgorithm(2, "cn/2", POW_FORK_DATES[1]),   # 2018-10-18 (v8)
    PowAlgorithm(3, "cn/r", POW_FORK_DATES[2]),   # 2019-03-09 (CryptoNight-R)
]


def algo_at(when: Date) -> PowAlgorithm:
    """The network's PoW algorithm on a given date."""
    return ALGO_BY_ERA[pow_era(when)]


def algos() -> List[str]:
    """Algorithm identifiers of every era, genesis first."""
    return [a.name for a in ALGO_BY_ERA]


def max_era_for_software(release_date: Date) -> int:
    """Highest era a miner released on ``release_date`` can mine.

    Miner software supports every algorithm known at its release: a bot
    deployed in 2017 speaks only ``cn/0`` and strands at the first fork
    unless its operator pushes an update.
    """
    return pow_era(release_date)
