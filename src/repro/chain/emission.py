"""CryptoNote emission schedule and network hashrate model.

Monero's base block reward follows the CryptoNote recurrence

    reward_atomic = (M - S) >> 19        (minimum 0.6 XMR tail emission)

with ``M = 2^64 - 1`` atomic units (1 XMR = 1e12 atomic) and ``S`` the
already-generated supply.  Integrated at 720 blocks/day from the 2014
launch this yields ~16.9M XMR circulating by April 2019, matching the
denominator behind the paper's "4.37% of all Monero" headline figure.
"""

import bisect
import datetime
import math
from typing import List

from repro.common.simtime import Date

ATOMIC_PER_XMR = 10 ** 12
_TOTAL_ATOMIC = 2 ** 64 - 1
_EMISSION_SPEED = 19
_BLOCKS_PER_DAY = 720
_TAIL_REWARD_XMR = 0.6

MONERO_GENESIS = datetime.date(2014, 4, 18)


class EmissionSchedule:
    """Daily-resolution emission curve for a CryptoNote coin.

    The per-day supply is precomputed lazily and cached; lookups by date
    are O(log n) bisects over the cached curve.
    """

    def __init__(self, genesis: Date = MONERO_GENESIS,
                 total_atomic: int = _TOTAL_ATOMIC,
                 emission_speed: int = _EMISSION_SPEED,
                 blocks_per_day: int = _BLOCKS_PER_DAY) -> None:
        self.genesis = genesis
        self._total = total_atomic
        self._speed = emission_speed
        self._blocks_per_day = blocks_per_day
        self._supply_by_day: List[int] = [0]  # atomic units, index = day #

    def _extend_to(self, day_index: int) -> None:
        supply = self._supply_by_day[-1]
        while len(self._supply_by_day) <= day_index:
            for _ in range(self._blocks_per_day):
                reward = (self._total - supply) >> self._speed
                reward = max(reward, int(_TAIL_REWARD_XMR * ATOMIC_PER_XMR))
                supply += reward
            self._supply_by_day.append(supply)

    def _day_index(self, when: Date) -> int:
        return max(0, (when - self.genesis).days)

    def circulating_supply(self, when: Date) -> float:
        """Circulating coins (XMR units) at ``when``."""
        idx = self._day_index(when)
        self._extend_to(idx)
        return self._supply_by_day[idx] / ATOMIC_PER_XMR

    def block_reward(self, when: Date) -> float:
        """Base block reward (XMR) on a given day."""
        idx = self._day_index(when)
        self._extend_to(idx + 1)
        daily = self._supply_by_day[idx + 1] - self._supply_by_day[idx]
        return daily / self._blocks_per_day / ATOMIC_PER_XMR

    def daily_emission(self, when: Date) -> float:
        """Coins emitted on a given day (XMR units)."""
        return self.block_reward(when) * self._blocks_per_day

    def fraction_of_supply(self, amount_xmr: float, when: Date) -> float:
        """What fraction of circulating supply ``amount_xmr`` represents."""
        supply = self.circulating_supply(when)
        if supply <= 0:
            return 0.0
        return amount_xmr / supply


#: Shared Monero schedule instance used across the library.
MONERO_EMISSION = EmissionSchedule()


# -- network hashrate ------------------------------------------------------

#: Piecewise-linear anchor points (date -> network hashrate in H/s),
#: shaped like the public Monero hashrate series: tens of MH/s through
#: 2016, a steep 2017 ramp, ~1 GH/s around the 2018 peak, and a step drop
#: at the April 2018 fork when ASICs were expelled.
_HASHRATE_ANCHORS: List = [
    (datetime.date(2014, 4, 18), 5e6),
    (datetime.date(2015, 1, 1), 2e7),
    (datetime.date(2016, 1, 1), 4e7),
    (datetime.date(2017, 1, 1), 9e7),
    (datetime.date(2017, 9, 1), 2.5e8),
    (datetime.date(2018, 1, 1), 8e8),
    (datetime.date(2018, 4, 5), 1.0e9),
    (datetime.date(2018, 4, 7), 4.5e8),   # ASICs expelled at the fork
    (datetime.date(2018, 10, 17), 6.0e8),
    (datetime.date(2018, 10, 19), 4.0e8),
    (datetime.date(2019, 3, 8), 8.0e8),
    (datetime.date(2019, 3, 10), 3.0e8),  # CryptoNight-R fork
    (datetime.date(2019, 12, 31), 4.0e8),
]


def network_hashrate_hs(when: Date) -> float:
    """Total network hashrate (H/s) at ``when``, log-interpolated."""
    dates = [d for d, _ in _HASHRATE_ANCHORS]
    if when <= dates[0]:
        return _HASHRATE_ANCHORS[0][1]
    if when >= dates[-1]:
        return _HASHRATE_ANCHORS[-1][1]
    idx = bisect.bisect_right(dates, when)
    d0, h0 = _HASHRATE_ANCHORS[idx - 1]
    d1, h1 = _HASHRATE_ANCHORS[idx]
    span = (d1 - d0).days or 1
    frac = (when - d0).days / span
    return math.exp(math.log(h0) + frac * (math.log(h1) - math.log(h0)))
