"""Registry of well-known mining pools (Table VII, Table XV).

The directory plays two roles in the pipeline: (1) mapping contacted
domains to known pools — the "is this a known pool?" check of §III-C —
and (2) holding the live pool instances whose APIs the profit analysis
queries.  Pool fees/thresholds are plausible defaults; transparency and
ban behaviour follow what the paper reports per pool.
"""

from typing import Dict, Iterable, List, Optional

from repro.perf.cache import LruCache
from repro.pools.pool import BanPolicy, MiningPool, PoolConfig, Transparency

#: Configurations for the pools named in the paper, ranked roughly by the
#: popularity Table VII reports.  minexmr exposes historical hashrates
#: (the paper notes this explicitly) and is 'remarkably cooperative';
#: minergate is the opaque pool with 4,980 e-mail miners.
KNOWN_POOLS: List[PoolConfig] = [
    PoolConfig("crypto-pool", domains=("crypto-pool.fr", "xmr.crypto-pool.fr"),
               fee=0.02, transparency=Transparency.FULL_HISTORY,
               ban_policy=BanPolicy(cooperative=True, min_connections_to_ban=120)),
    PoolConfig("dwarfpool", domains=("dwarfpool.com", "xmr-eu.dwarfpool.com",
                                     "xmr-usa.dwarfpool.com"),
               fee=0.015, transparency=Transparency.FULL_HISTORY,
               ban_policy=BanPolicy(cooperative=False)),
    PoolConfig("minexmr", domains=("minexmr.com", "pool.minexmr.com"),
               fee=0.01, transparency=Transparency.FULL_HISTORY,
               exposes_hashrate_history=True,
               ban_policy=BanPolicy(cooperative=True, min_connections_to_ban=100)),
    PoolConfig("poolto", domains=("poolto.be", "xmr.poolto.be"),
               fee=0.01, transparency=Transparency.RECENT_WINDOW),
    PoolConfig("prohash", domains=("prohash.net", "xmr.prohash.net"),
               fee=0.01, transparency=Transparency.RECENT_WINDOW),
    PoolConfig("nanopool", domains=("nanopool.org", "xmr-eu1.nanopool.org"),
               fee=0.01, transparency=Transparency.FULL_HISTORY,
               ban_policy=BanPolicy(cooperative=True, min_connections_to_ban=150)),
    PoolConfig("monerohash", domains=("monerohash.com",),
               fee=0.016, transparency=Transparency.FULL_HISTORY),
    PoolConfig("ppxxmr", domains=("ppxxmr.com", "pool.ppxxmr.com"),
               fee=0.01, transparency=Transparency.RECENT_WINDOW,
               ban_policy=BanPolicy(cooperative=False)),
    PoolConfig("supportxmr", domains=("supportxmr.com", "pool.supportxmr.com"),
               fee=0.006, transparency=Transparency.FULL_HISTORY),
    # The eight smaller transparent pools aggregated as "Others (8)".
    PoolConfig("moneropool", domains=("moneropool.com",), fee=0.01,
               transparency=Transparency.TOTALS_ONLY),
    PoolConfig("minemonero", domains=("minemonero.pro",), fee=0.01,
               transparency=Transparency.TOTALS_ONLY),
    PoolConfig("xmrpool", domains=("xmrpool.eu",), fee=0.01,
               transparency=Transparency.RECENT_WINDOW),
    PoolConfig("moneroocean", domains=("moneroocean.stream",), fee=0.0,
               transparency=Transparency.RECENT_WINDOW),
    PoolConfig("viaxmr", domains=("viaxmr.com",), fee=0.01,
               transparency=Transparency.TOTALS_ONLY),
    PoolConfig("hashvault", domains=("hashvault.pro",), fee=0.009,
               transparency=Transparency.RECENT_WINDOW),
    PoolConfig("xmrnanopool", domains=("xmr.nanopool.io",), fee=0.01,
               transparency=Transparency.TOTALS_ONLY),
    PoolConfig("monerominers", domains=("monerominers.net",), fee=0.01,
               transparency=Transparency.TOTALS_ONLY),
    # Opaque pools: no public wallet statistics at all.
    PoolConfig("minergate", domains=("minergate.com", "pool.minergate.com"),
               fee=0.01, transparency=Transparency.OPAQUE,
               ban_policy=BanPolicy(cooperative=False)),
    # Bitcoin-era pools (for the BTC side of Table IV / the 2014 baseline).
    PoolConfig("50btc", coin="BTC", domains=("50btc.com",), fee=0.03,
               transparency=Transparency.TOTALS_ONLY),
    PoolConfig("slushpool", coin="BTC", domains=("slushpool.com",), fee=0.02,
               transparency=Transparency.TOTALS_ONLY),
    PoolConfig("btcdig", coin="BTC", domains=("btcdig.com",), fee=0.02,
               transparency=Transparency.TOTALS_ONLY),
    PoolConfig("f2pool", coin="BTC", domains=("f2pool.com",), fee=0.025,
               transparency=Transparency.TOTALS_ONLY),
    PoolConfig("suprnova", coin="BTC", domains=("suprnova.cc",), fee=0.01,
               transparency=Transparency.TOTALS_ONLY),
    # Electroneum pool for the USA-138 case study.
    PoolConfig("etn-pool", coin="ETN", domains=("pool.electroneum.space",),
               fee=0.01, transparency=Transparency.RECENT_WINDOW),
]


class PoolDirectory:
    """Live pool instances plus domain -> pool resolution."""

    def __init__(self, configs: Optional[Iterable[PoolConfig]] = None) -> None:
        self._pools: Dict[str, MiningPool] = {}
        self._by_domain: Dict[str, str] = {}
        #: memo of suffix-walk results; every pipeline stage resolves the
        #: same contacted domains over and over.  Invalidated on register.
        self._domain_cache = LruCache("pool_domain", maxsize=4096)
        for config in (configs if configs is not None else KNOWN_POOLS):
            self.register(MiningPool(config))

    def register(self, pool: MiningPool) -> None:
        """Add a pool and index its domains (duplicate names rejected)."""
        name = pool.config.name
        if name in self._pools:
            raise ValueError(f"duplicate pool name: {name}")
        self._pools[name] = pool
        for domain in pool.config.domains:
            self._by_domain[domain.lower()] = name
        self._domain_cache.clear()

    def get(self, name: str) -> MiningPool:
        """The pool named ``name`` (KeyError when unknown)."""
        return self._pools[name]

    def __contains__(self, name: str) -> bool:
        return name in self._pools

    def pools(self) -> List[MiningPool]:
        """Every registered pool instance."""
        return list(self._pools.values())

    def names(self) -> List[str]:
        """Every registered pool name."""
        return list(self._pools)

    def pool_for_domain(self, domain: str) -> Optional[MiningPool]:
        """Resolve a contacted domain to a known pool, suffix-aware.

        ``xmr-eu.dwarfpool.com`` and ``dwarfpool.com`` both resolve to
        dwarfpool, mirroring the paper's pool-domain normalisation
        (POOL vs URLPOOL in Table I).
        """
        domain = domain.lower()
        return self._domain_cache.get_or_compute(
            domain, lambda: self._pool_for_domain_uncached(domain))

    def _pool_for_domain_uncached(self, domain: str) -> Optional[MiningPool]:
        if domain in self._by_domain:
            return self._pools[self._by_domain[domain]]
        parts = domain.split(".")
        for start in range(1, len(parts) - 1):
            suffix = ".".join(parts[start:])
            if suffix in self._by_domain:
                return self._pools[self._by_domain[suffix]]
        # Also accept anything under a registered registrable domain.
        for known_domain, name in self._by_domain.items():
            if domain.endswith("." + known_domain):
                return self._pools[name]
        return None

    def is_known_pool_domain(self, domain: str) -> bool:
        """Whether a domain resolves to a registered pool."""
        return self.pool_for_domain(domain) is not None

    def transparent_pools(self) -> List[MiningPool]:
        """Pools with any public per-wallet statistics (non-opaque)."""
        return [
            pool for pool in self._pools.values()
            if pool.config.transparency is not Transparency.OPAQUE
        ]


def default_directory() -> PoolDirectory:
    """Fresh directory with all known pools (each call isolates state)."""
    return PoolDirectory()
