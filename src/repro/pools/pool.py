"""Pool accounting, payouts, bans and the public stats API.

Two accrual paths exist:

* the *wire path*: a :class:`MiningPool` is a
  :class:`~repro.stratum.server.ShareSink`, so Stratum sessions credit
  shares live (used by protocol-level tests and examples);
* the *bulk path*: :meth:`MiningPool.credit_mining_day` credits one
  wallet-day of hashrate at once — the corpus driver uses it to simulate
  years of mining for thousands of wallets in milliseconds.

Both paths meet in the same per-wallet account, so profit analysis sees
one consistent ledger.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.chain.emission import EmissionSchedule, MONERO_EMISSION, network_hashrate_hs
from repro.common.errors import PoolError
from repro.common.simtime import Date
from repro.stratum.server import ShareSink


class Transparency(enum.Enum):
    """How much a pool's public API reveals (§III-D)."""

    FULL_HISTORY = "full"        # totals + complete payment list
    RECENT_WINDOW = "recent"     # totals + payments of the last N days
    TOTALS_ONLY = "totals"       # totals, no payment list
    OPAQUE = "opaque"            # nothing (minergate)


@dataclass(frozen=True)
class BanPolicy:
    """How a pool reacts to abuse reports and botnet-like wallets.

    ``cooperative`` pools act on reports, but only when the wallet shows
    more than ``min_connections_to_ban`` distinct IPs — the behaviour
    the authors saw at minexmr (§V-A, Appendix A).  ``proactive`` pools
    ban on their own once the threshold is crossed (none of the large
    pools did this in practice).
    """

    cooperative: bool = True
    min_connections_to_ban: int = 100
    proactive: bool = False
    #: only wallets active within this many days of the report are
    #: banned — pools act on live evidence, not stale ledger entries.
    recent_activity_days: int = 120


@dataclass
class _WalletAccount:
    """Internal per-wallet ledger."""

    identifier: str
    hashes: float = 0.0
    balance: float = 0.0
    total_paid: float = 0.0
    payments: List[Tuple[Date, float]] = field(default_factory=list)
    last_share: Optional[Date] = None
    last_hashrate: float = 0.0
    src_ips: Set[str] = field(default_factory=set)
    hashrate_history: List[Tuple[Date, float]] = field(default_factory=list)
    banned: bool = False
    banned_on: Optional[Date] = None


@dataclass(frozen=True)
class WalletStats:
    """Public per-wallet view, as scraped from a pool's API (Table II)."""

    pool: str
    identifier: str
    hashes: float
    last_hashrate: float
    last_share: Optional[Date]
    balance: float
    total_paid: float
    num_payments: int
    payments: Optional[List[Tuple[Date, float]]]  # None when not exposed
    hashrate_history: Optional[List[Tuple[Date, float]]]


@dataclass(frozen=True)
class PoolConfig:
    """Static description of one pool."""

    name: str
    coin: str = "XMR"
    domains: Tuple[str, ...] = ()
    fee: float = 0.01
    payout_threshold: float = 0.3
    transparency: Transparency = Transparency.FULL_HISTORY
    recent_window_days: int = 30
    ban_policy: BanPolicy = BanPolicy()
    exposes_hashrate_history: bool = False  # minexmr does


class MiningPool(ShareSink):
    """One simulated mining pool."""

    def __init__(self, config: PoolConfig,
                 emission: EmissionSchedule = MONERO_EMISSION) -> None:
        self.config = config
        self._emission = emission
        self._accounts: Dict[str, _WalletAccount] = {}
        self._clock: Optional[Date] = None  # advanced by credit/settle calls
        self.total_paid_out = 0.0

    # -- ShareSink (wire path) ------------------------------------------

    def on_login(self, login: str, agent: str, src_ip: str) -> Optional[str]:
        account = self._accounts.get(login)
        if account is not None and account.banned:
            return "Your wallet is banned"
        self._account(login).src_ips.add(src_ip)
        return None

    def on_share(self, login: str, valid: bool, src_ip: str,
                 difficulty: int = 1) -> None:
        if not valid:
            return
        account = self._account(login)
        account.hashes += float(max(1, difficulty))
        account.src_ips.add(src_ip)
        if self._clock is not None:
            account.last_share = self._clock

    # -- bulk path --------------------------------------------------------

    def credit_mining_day(self, identifier: str, day: Date,
                          hashrate_hs: float, src_ips: int = 1) -> float:
        """Credit one day of mining at ``hashrate_hs`` for a wallet.

        Reward is the wallet's proportional slice of that day's network
        emission, minus the pool fee — the standard PPLNS approximation.
        Returns the XMR credited (0 when the wallet is banned).
        """
        if hashrate_hs < 0:
            raise PoolError("negative hashrate")
        account = self._account(identifier)
        if account.banned:
            return 0.0
        self._clock = day if self._clock is None else max(self._clock, day)
        network = network_hashrate_hs(day)
        share = min(1.0, hashrate_hs / network)
        reward = self._emission.daily_emission(day) * share
        reward *= 1.0 - self.config.fee
        account.balance += reward
        account.hashes += hashrate_hs * 86400
        account.last_share = day
        account.last_hashrate = hashrate_hs
        for i in range(src_ips):
            account.src_ips.add(f"bulk:{identifier}:{i}")
        if self.config.exposes_hashrate_history:
            account.hashrate_history.append((day, hashrate_hs))
        self._maybe_pay(account, day)
        # Proactive pools ban as soon as the IP threshold is crossed.
        policy = self.config.ban_policy
        if (policy.proactive and not account.banned
                and len(account.src_ips) > policy.min_connections_to_ban):
            self._ban(account, day)
        return reward

    def _maybe_pay(self, account: _WalletAccount, day: Date) -> None:
        threshold = self.config.payout_threshold
        while account.balance >= threshold:
            amount = account.balance
            account.balance = 0.0
            account.total_paid += amount
            account.payments.append((day, amount))
            self.total_paid_out += amount

    # -- moderation -------------------------------------------------------

    def report_wallet(self, identifier: str, when: Date,
                      evidence: str = "") -> bool:
        """Report an illicit wallet, as the authors did in Sept 2018.

        Returns True when the pool banned the wallet.  Cooperative pools
        still 'err on the safe side': they only act when the wallet has
        botnet-scale distinct connections (§VI).
        """
        policy = self.config.ban_policy
        if not policy.cooperative:
            return False
        account = self._accounts.get(identifier)
        if account is None or account.banned:
            return False
        if len(account.src_ips) <= policy.min_connections_to_ban:
            return False
        # A wallet with live wire sessions (no dated ledger yet) counts
        # as active; a dated ledger must show recent shares.
        if (account.last_share is not None
                and (when - account.last_share).days
                > policy.recent_activity_days):
            return False
        self._ban(account, when)
        return True

    def _ban(self, account: _WalletAccount, when: Date) -> None:
        account.banned = True
        account.banned_on = when

    def is_banned(self, identifier: str) -> bool:
        """Whether the identifier is currently banned here."""
        account = self._accounts.get(identifier)
        return account is not None and account.banned

    # -- public API (what the paper scrapes) -------------------------------

    def api_wallet_stats(self, identifier: str,
                         query_date: Optional[Date] = None) -> Optional[WalletStats]:
        """Public stats for a wallet; None when unknown; raises if opaque."""
        if self.config.transparency is Transparency.OPAQUE:
            raise PoolError(
                f"pool {self.config.name} publishes no per-wallet statistics"
            )
        account = self._accounts.get(identifier)
        if account is None or not account.payments and account.hashes == 0:
            return None
        payments: Optional[List[Tuple[Date, float]]]
        if self.config.transparency is Transparency.FULL_HISTORY:
            payments = list(account.payments)
        elif self.config.transparency is Transparency.RECENT_WINDOW:
            if query_date is None:
                query_date = account.last_share or self._clock
            window = self.config.recent_window_days
            payments = [
                (d, a) for d, a in account.payments
                if query_date is not None and (query_date - d).days <= window
            ]
        else:
            payments = None
        history = (list(account.hashrate_history)
                   if self.config.exposes_hashrate_history else None)
        return WalletStats(
            pool=self.config.name,
            identifier=identifier,
            hashes=account.hashes,
            last_hashrate=account.last_hashrate,
            last_share=account.last_share,
            balance=account.balance,
            total_paid=account.total_paid,
            num_payments=len(account.payments),
            payments=payments,
            hashrate_history=history,
        )

    def distinct_connections(self, identifier: str) -> int:
        """Operator-side insight (shared with the authors on request)."""
        account = self._accounts.get(identifier)
        return len(account.src_ips) if account else 0

    def known_wallets(self) -> List[str]:
        """Every identifier with an account at this pool."""
        return list(self._accounts)

    # -- internals ----------------------------------------------------------

    def _account(self, identifier: str) -> _WalletAccount:
        account = self._accounts.get(identifier)
        if account is None:
            account = _WalletAccount(identifier)
            self._accounts[identifier] = account
        return account
