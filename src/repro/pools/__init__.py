"""Mining-pool substrate (§III-D).

Pools are where the paper's profit numbers come from: transparent pools
publish per-wallet totals, payment histories and hashrates, which the
authors polled for ten months.  This package implements:

* :class:`MiningPool` — share accounting, payout scheduling, ban
  policies, and the public stats API (with the transparency tiers the
  paper encountered: full history, recent-window history, total-only,
  and fully opaque minergate-style pools);
* :class:`PoolDirectory` — the registry of well-known pools
  (crypto-pool, dwarfpool, minexmr, ...) with their domains, mirroring
  the public pool lists (moneropools.com) the paper uses to decide
  whether a contacted host is a "known pool".
"""

from repro.pools.pool import (
    BanPolicy,
    MiningPool,
    PoolConfig,
    Transparency,
    WalletStats,
)
from repro.pools.directory import (
    KNOWN_POOLS,
    PoolDirectory,
    default_directory,
)

__all__ = [
    "BanPolicy",
    "MiningPool",
    "PoolConfig",
    "Transparency",
    "WalletStats",
    "KNOWN_POOLS",
    "PoolDirectory",
    "default_directory",
]
