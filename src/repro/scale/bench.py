"""Unified benchmark harness: scale, pipeline, scan, serve and ingest.

Each measurement point runs in a **fresh subprocess** — ``ru_maxrss``
is a lifetime high-water mark, so points sharing a process would
inherit each other's peaks.  The child re-invokes this module with a
``--*-scale`` flag and prints one JSON object on stdout; the parent
collects points into the committed artifacts:

* ``BENCH_scale.json`` — the out-of-core pipeline's scaling curve,
  with one point per (scale, workers) pair (``--workers-list``)
* ``BENCH_pipeline.json`` — batch-pipeline stage breakdown (tier-1)
* ``BENCH_scan.json`` — one-pass scan kernel vs the legacy per-pattern
  path (throughput + equivalence)
* ``BENCH_serve.json`` — sustained-QPS serving runs, one point per
  worker count (single-process hot-swap run plus multi-process
  fleets — see :mod:`repro.serve.bench`)
* ``BENCH_ingest.json`` — checkpointed ingestion lane: batch
  throughput plus the cost of a cold resume from the checkpoint
* ``BENCH_lint.json`` — reprolint over the real source tree: cold
  full-tree runs across ``--workers``, plus the warm ``--changed``
  fast path served from the fact cache

Every suite write also appends a copy under ``BENCH_history/`` as
``<suite>-<NNNN>.json`` — the committed bench trajectory — and stamps
the payload with :func:`repro.common.calibrate.calibration_score`, a
fixed CPU microbench measured on the writing machine.  The regression
gate (:func:`compare_runs`, ``benchmarks/regression_gate.py``)
compares a fresh run against the committed previous JSON
point-by-point and fails on >25% throughput loss; when both sides
carry a calibration stamp the comparison is machine-normalised
(``metric / score``), so a baseline committed from a fast dev box
does not fail CI on a slow runner.

Invoked via ``python -m repro.scale.bench``, ``python
benchmarks/harness.py`` or ``repro bench`` — all the same code.
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "compare_runs",
    "measure_ingest_point",
    "measure_lint_point",
    "measure_pipeline_point",
    "measure_scale_point",
    "measure_scan_point",
    "run_ingest_suite",
    "run_lint_suite",
    "run_point_subprocess",
    "run_scaling_suite",
    "run_scan_suite",
    "run_serve_suite",
    "write_history_entry",
]

#: the committed scaling curve: ~10k / ~100k / ~1M streamed samples
#: (empirical scale factors; the bench reports the exact counts).
DEFAULT_SCALES = [0.072, 0.72, 6.35]


def measure_scale_point(scale: float, seed: int = 2019, workers: int = 1,
                        chunk_samples: int = 4096, num_shards: int = 8,
                        stride_days: int = 30, prefetch: int = 2) -> Dict:
    """One out-of-core pipeline run; returns its metrics dict.

    Call only in a fresh process if peak RSS matters (see module doc).
    """
    from repro.common.memory import peak_rss_mib
    from repro.corpus.model import ScenarioConfig
    from repro.scale.pipeline import ScalePipeline
    from repro.scale.stream import StreamingCorpus

    config = ScenarioConfig(seed=seed, scale=scale,
                            mining_stride_days=stride_days)
    t0 = time.perf_counter()
    corpus = StreamingCorpus(config, chunk_samples=chunk_samples,
                             keep_sample_hashes=False)
    skeleton_s = time.perf_counter() - t0
    pipeline = ScalePipeline(corpus, workers=workers,
                             num_shards=num_shards, prefetch=prefetch)
    t1 = time.perf_counter()
    result = pipeline.run()
    run_s = time.perf_counter() - t1
    store_bytes = sum(p.stat().st_size
                      for p in result.store.segment_paths())
    samples = result.stats.collected
    return {
        "suite": "scale",
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "prefetch": prefetch,
        "chunk_samples": chunk_samples,
        "num_shards": num_shards,
        "samples": samples,
        "records": len(result.store),
        "campaigns": len(result.campaigns),
        "skeleton_s": round(skeleton_s, 3),
        "run_s": round(run_s, 3),
        "total_s": round(skeleton_s + run_s, 3),
        "samples_per_s": round(samples / run_s, 1) if run_s else 0.0,
        "peak_rss_mib": round(peak_rss_mib() or 0.0, 1),
        "store_mib": round(store_bytes / (1024 * 1024), 2),
        "spill_mib": round(result.spill_bytes / (1024 * 1024), 2),
        "segments": result.store.num_segments,
        "deferred": result.deferred_spilled,
        "rejected": result.rejected_spilled,
        "recovered": result.recovered,
    }


def measure_pipeline_point(scale: float = 0.02, seed: int = 2019,
                           workers: int = 1) -> Dict:
    """One batch-pipeline run with per-stage timings (tier-1 scales)."""
    from repro.common.memory import peak_rss_mib
    from repro.core.pipeline import MeasurementPipeline
    from repro.corpus.generator import generate_world
    from repro.corpus.model import ScenarioConfig

    t0 = time.perf_counter()
    world = generate_world(ScenarioConfig(seed=seed, scale=scale))
    world_s = time.perf_counter() - t0
    pipeline = MeasurementPipeline(world, workers=workers)
    t1 = time.perf_counter()
    result = pipeline.run()
    run_s = time.perf_counter() - t1
    stages = [
        {"stage": timing.name, "seconds": round(timing.wall_s, 3),
         "items": timing.items}
        for timing in pipeline.profiler.stages.values()
    ]
    return {
        "suite": "pipeline",
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "samples": result.stats.collected,
        "records": len(result.records),
        "campaigns": len(result.campaigns),
        "world_s": round(world_s, 3),
        "run_s": round(run_s, 3),
        "samples_per_s": round(result.stats.collected / run_s, 1)
        if run_s else 0.0,
        "peak_rss_mib": round(peak_rss_mib() or 0.0, 1),
        "stages": stages,
    }


def measure_scan_point(scale: float = 0.02, seed: int = 2019,
                       iterations: int = 3) -> Dict:
    """Scan-kernel vs legacy per-pattern throughput at one scale.

    A compact lane over shared :class:`~repro.perf.scan.ScanContext`
    views: both paths scan identical materialised bytes/text, so the
    timing isolates the pattern-matching work the kernel replaced
    (``benchmarks/bench_scan_kernel.py`` remains the deep-dive tool
    that also times materialisation).  Equivalence is asserted per
    sample and reported in the point.
    """
    from repro.common.memory import peak_rss_mib
    from repro.corpus.generator import generate_world
    from repro.corpus.model import ScenarioConfig
    from repro.perf.cache import clear_caches
    from repro.perf.scan import ScanContext
    from repro.wallets.detect import (
        extract_identifiers,
        extract_identifiers_legacy,
    )
    from repro.yarm.builtin import builtin_miner_rules

    world = generate_world(ScenarioConfig(seed=seed, scale=scale,
                                          include_junk=False))
    rules = builtin_miner_rules()
    rules.kernel()  # compile outside the timed region
    clear_caches()
    contexts = []
    for sample in world.samples:
        ctx = ScanContext.for_sample(sample.raw)
        ctx.strings  # materialise blob/text once, outside the timing
        contexts.append(ctx)
    bytes_scanned = sum(len(ctx.data) for ctx in contexts)

    mismatches = 0
    for ctx in contexts:
        same_rules = rules.scan_legacy(ctx.data) == rules.scan(ctx)
        same_ids = (extract_identifiers_legacy(ctx.text)
                    == extract_identifiers(ctx.text))
        if not (same_rules and same_ids):
            mismatches += 1

    def legacy_pass():
        for ctx in contexts:
            rules.scan_legacy(ctx.data)
            extract_identifiers_legacy(ctx.text)

    def kernel_pass():
        for ctx in contexts:
            rules.scan(ctx)
            extract_identifiers(ctx.text)

    def best_of(fn):
        best = float("inf")
        for _ in range(iterations):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    legacy_s = best_of(legacy_pass)
    kernel_s = best_of(kernel_pass)
    mib = bytes_scanned / (1024 * 1024)
    return {
        "suite": "scan",
        "scale": scale,
        "seed": seed,
        "iterations": iterations,
        "samples": len(contexts),
        "mib_scanned": round(mib, 2),
        "legacy_s": round(legacy_s, 4),
        "kernel_s": round(kernel_s, 4),
        "speedup": round(legacy_s / kernel_s, 2) if kernel_s else 0.0,
        "kernel_mib_per_s": round(mib / kernel_s, 1) if kernel_s else 0.0,
        "equivalent": mismatches == 0,
        "mismatches": mismatches,
        "peak_rss_mib": round(peak_rss_mib() or 0.0, 1),
    }


def measure_ingest_point(scale: float = 0.02, seed: int = 2019,
                         batch_days: int = 30) -> Dict:
    """Checkpointed ingestion throughput plus cold-resume cost.

    Runs the full feed replay through :class:`repro.ingest.service.
    IngestionService` (fresh checkpoint, fsync off — the lane measures
    compute, not the disk), then restores the finished checkpoint from
    scratch and materialises its result — the cost a `repro serve
    --checkpoint` start or a crash-resume actually pays.
    """
    import shutil
    import tempfile

    from repro.common.memory import peak_rss_mib
    from repro.corpus.generator import generate_world
    from repro.corpus.model import ScenarioConfig
    from repro.ingest.service import IngestionService

    world = generate_world(ScenarioConfig(seed=seed, scale=scale))
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-ingest-"))
    try:
        service = IngestionService(world, workdir / "checkpoint",
                                   batch_days=batch_days, fsync=False)
        t0 = time.perf_counter()
        ingest = service.run()
        run_s = time.perf_counter() - t0
        batches = len(ingest.batches)
        analyzed = sum(b.analyzed for b in ingest.batches)

        resumer = IngestionService(world, workdir / "checkpoint",
                                   batch_days=batch_days, resume=True,
                                   fsync=False)
        t1 = time.perf_counter()
        resumer.restore_state()
        restored = resumer.current_result()
        resume_s = time.perf_counter() - t1
        return {
            "suite": "ingest",
            "scale": scale,
            "seed": seed,
            "batch_days": batch_days,
            "batches": batches,
            "samples": analyzed,
            "records": len(ingest.result.records),
            "campaigns": len(ingest.result.campaigns),
            "run_s": round(run_s, 3),
            "batches_per_s": round(batches / run_s, 2) if run_s else 0.0,
            "samples_per_s": round(analyzed / run_s, 1) if run_s else 0.0,
            #: cold restore of the finished checkpoint + materialise
            "resume_s": round(resume_s, 3),
            "resume_records": len(restored.records),
            "resume_fraction": round(resume_s / run_s, 3) if run_s
            else 0.0,
            "peak_rss_mib": round(peak_rss_mib() or 0.0, 1),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def measure_lint_point(mode: str = "cold", workers: int = 1) -> Dict:
    """One reprolint run over the real source tree.

    ``cold`` lints the full tree from a fresh index (the CI strict
    gate's cost); ``warm`` measures the ``--changed`` fast path — a
    priming run fills the fact cache, then the timed run focuses one
    module and serves every other summary from cache.
    """
    import shutil
    import tempfile

    from repro.common.memory import peak_rss_mib
    from repro.lint import LintEngine, default_source_root

    root = default_source_root()
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-lint-"))
    try:
        focus = None
        cache = None
        if mode == "warm":
            cache = workdir / "reprolint-cache"
            focus = ["cli.py"]
            LintEngine(cache_path=cache).run(root, focus=focus)
        engine = LintEngine(workers=workers, cache_path=cache)
        t0 = time.perf_counter()
        report = engine.run(root, focus=focus)
        lint_s = time.perf_counter() - t0
        modules = report.modules_scanned
        return {
            "suite": "lint",
            "mode": mode,
            "workers": workers,
            "modules": modules,
            "findings": len(report.findings),
            "parse_errors": len(report.parse_errors),
            "lint_s": round(lint_s, 3),
            "modules_per_s": round(modules / lint_s, 1) if lint_s
            else 0.0,
            "peak_rss_mib": round(peak_rss_mib() or 0.0, 1),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_point_subprocess(argv: List[str], timeout: Optional[float] = None
                         ) -> Dict:
    """Run one point in a child interpreter; parse its JSON stdout."""
    command = [sys.executable, "-m", "repro.scale.bench"] + argv
    proc = subprocess.run(command, capture_output=True, text=True,
                          timeout=timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench point failed ({' '.join(argv)}):\n{proc.stderr}")
    return json.loads(proc.stdout)


def run_scaling_suite(scales: List[float], seed: int = 2019,
                      workers_list: Optional[List[int]] = None,
                      chunk_samples: int = 4096,
                      num_shards: int = 8,
                      prefetch: int = 2) -> Dict:
    """The scaling curve: one subprocess per (scale, workers) point."""
    workers_list = workers_list or [1]
    points = []
    for scale in scales:
        for workers in workers_list:
            points.append(run_point_subprocess([
                "--point-scale", str(scale), "--seed", str(seed),
                "--workers", str(workers),
                "--prefetch", str(prefetch),
                "--chunk-samples", str(chunk_samples),
                "--shards", str(num_shards),
            ]))
            last = points[-1]
            print(f"  scale={scale} workers={workers}: "
                  f"{last['samples']} samples in {last['total_s']}s "
                  f"({last['samples_per_s']}/s), "
                  f"peak {last['peak_rss_mib']} MiB", file=sys.stderr)
    return {"bench": "scale", "seed": seed,
            "workers_list": workers_list,
            "chunk_samples": chunk_samples, "num_shards": num_shards,
            "prefetch": prefetch, "points": points}


def run_pipeline_suite(scale: float = 0.02, seed: int = 2019,
                       workers: int = 1) -> Dict:
    """Batch-pipeline stage breakdown, in its own subprocess."""
    point = run_point_subprocess([
        "--pipeline-scale", str(scale), "--seed", str(seed),
        "--workers", str(workers),
    ])
    return {"bench": "pipeline", "seed": seed, "workers": workers,
            "points": [point]}


def run_scan_suite(scale: float = 0.02, seed: int = 2019,
                   iterations: int = 3) -> Dict:
    """Scan-kernel lane, in its own subprocess."""
    point = run_point_subprocess([
        "--scan-scale", str(scale), "--seed", str(seed),
        "--iterations", str(iterations),
    ])
    print(f"  scan: {point['samples']} samples, "
          f"{point['speedup']}x kernel speedup, "
          f"equivalent={point['equivalent']}", file=sys.stderr)
    return {"bench": "scan", "seed": seed, "points": [point]}


def run_serve_suite(scale: float = 0.02, seed: int = 2019,
                    duration_s: float = 8.0,
                    concurrency: int = 8,
                    workers_list: Optional[List[int]] = None) -> Dict:
    """Sustained-QPS serving lane: one subprocess per worker count."""
    workers_list = workers_list or [1]
    points = []
    for workers in workers_list:
        point = run_point_subprocess([
            "--serve-scale", str(scale), "--seed", str(seed),
            "--duration", str(duration_s),
            "--concurrency", str(concurrency),
            "--workers", str(workers),
        ], timeout=duration_s + 600)
        points.append(point)
        print(f"  serve workers={workers}: {point['qps']} qps over "
              f"{point['duration_s']}s, p50={point['p50_ms']}ms "
              f"p99={point['p99_ms']}ms, "
              f"swap_clean={point['swap_clean']}, "
              f"pids={point['serving_pids']}", file=sys.stderr)
    return {"bench": "serve", "seed": seed,
            "workers_list": workers_list, "points": points}


def run_ingest_suite(scale: float = 0.02, seed: int = 2019,
                     batch_days: int = 30) -> Dict:
    """Checkpointed ingestion lane, in its own subprocess."""
    point = run_point_subprocess([
        "--ingest-scale", str(scale), "--seed", str(seed),
        "--batch-days", str(batch_days),
    ])
    print(f"  ingest: {point['batches']} batches in {point['run_s']}s "
          f"({point['batches_per_s']} batches/s), "
          f"resume {point['resume_s']}s", file=sys.stderr)
    return {"bench": "ingest", "seed": seed, "points": [point]}


def run_lint_suite(workers_list: Optional[List[int]] = None) -> Dict:
    """Lint lane: cold full-tree across workers, plus the warm path."""
    workers_list = workers_list or [1, 2, 4]
    points = []
    for workers in workers_list:
        point = run_point_subprocess([
            "--lint-mode", "cold", "--workers", str(workers)])
        points.append(point)
        print(f"  lint cold workers={workers}: {point['modules']} "
              f"modules in {point['lint_s']}s "
              f"({point['modules_per_s']}/s)", file=sys.stderr)
    point = run_point_subprocess(["--lint-mode", "warm"])
    points.append(point)
    print(f"  lint warm: {point['modules']} focus module(s) in "
          f"{point['lint_s']}s", file=sys.stderr)
    return {"bench": "lint", "workers_list": workers_list,
            "points": points}


# -- artifacts: committed JSON + history trail -------------------------------


def write_history_entry(out_dir: Path, suite: str, payload: Dict) -> Path:
    """Append this run under ``BENCH_history/<suite>-<NNNN>.json``.

    Sequence numbers, not timestamps: they sort, they diff cleanly,
    and the committed trail stays append-only.
    """
    history = Path(out_dir) / "BENCH_history"
    history.mkdir(parents=True, exist_ok=True)
    existing = sorted(history.glob(f"{suite}-*.json"))
    next_id = 1
    if existing:
        last = existing[-1].stem.rsplit("-", 1)[-1]
        next_id = int(last) + 1 if last.isdigit() else len(existing) + 1
    path = history / f"{suite}-{next_id:04d}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _write_json(path: Path, payload: Dict) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}", file=sys.stderr)


def _write_suite(out_dir: Path, suite: str, payload: Dict) -> None:
    from repro.common.calibrate import calibration_score
    payload.setdefault("calibration", calibration_score())
    _write_json(out_dir / f"BENCH_{suite}.json", payload)
    history_path = write_history_entry(out_dir, suite, payload)
    print(f"wrote {history_path}", file=sys.stderr)


# -- regression gate ---------------------------------------------------------

#: suite -> (higher-is-better throughput metric, point-key fields).
#: Points are matched on the key fields; points present on only one
#: side are reported but never fail the gate (the curve may grow).
GATE_METRICS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "scale": ("samples_per_s", ("scale", "workers")),
    "pipeline": ("samples_per_s", ("scale", "workers")),
    "scan": ("kernel_mib_per_s", ("scale",)),
    "serve": ("qps", ("scale", "concurrency", "workers")),
    "ingest": ("batches_per_s", ("scale", "batch_days")),
    "lint": ("modules_per_s", ("mode", "workers")),
}


def _point_key(point: Dict, fields: Tuple[str, ...]) -> Tuple:
    return tuple(point.get(field) for field in fields)


def compare_runs(previous: Dict, current: Dict,
                 threshold: float = 0.25) -> Tuple[List[str], List[str]]:
    """Gate ``current`` against ``previous`` (same suite schema).

    Returns ``(regressions, notes)``: a regression is a matched point
    whose throughput metric dropped by more than ``threshold``
    (fractional); notes cover unmatched points and the per-point
    deltas.  Suites are identified by the payload's ``bench`` field.

    When both payloads carry a top-level ``calibration`` stamp (see
    :mod:`repro.common.calibrate`), each side's metric is divided by
    its own machine's score before the delta is taken, so baselines
    committed from a faster or slower machine gate code changes, not
    hardware.  Old stamp-less baselines compare raw.
    """
    suite = current.get("bench") or previous.get("bench")
    if suite not in GATE_METRICS:
        return [], [f"unknown suite {suite!r}: nothing gated"]
    metric, key_fields = GATE_METRICS[suite]
    prev_cal = previous.get("calibration") or 0.0
    cur_cal = current.get("calibration") or 0.0
    normalised = prev_cal > 0 and cur_cal > 0
    prev_points = {_point_key(p, key_fields): p
                   for p in previous.get("points", [])}
    regressions: List[str] = []
    notes: List[str] = []
    if normalised:
        notes.append(f"{suite}: machine-normalised "
                     f"(calibration {prev_cal} -> {cur_cal})")
    matched = 0
    for point in current.get("points", []):
        key = _point_key(point, key_fields)
        baseline = prev_points.pop(key, None)
        label = ", ".join(f"{f}={v}" for f, v in zip(key_fields, key))
        if baseline is None:
            notes.append(f"{suite}[{label}]: new point "
                         f"({metric}={point.get(metric)})")
            continue
        matched += 1
        old = baseline.get(metric) or 0.0
        new = point.get(metric) or 0.0
        if old <= 0:
            notes.append(f"{suite}[{label}]: no baseline {metric}")
            continue
        if normalised:
            delta = (new / cur_cal - old / prev_cal) / (old / prev_cal)
        else:
            delta = (new - old) / old
        line = (f"{suite}[{label}]: {metric} {old} -> {new} "
                f"({delta:+.1%}"
                f"{' normalised' if normalised else ''})")
        if delta < -threshold:
            regressions.append(line + f" exceeds -{threshold:.0%} gate")
        else:
            notes.append(line)
    for key in prev_points:
        label = ", ".join(f"{f}={v}" for f, v in zip(key_fields, key))
        notes.append(f"{suite}[{label}]: dropped from current run")
    if matched == 0:
        notes.append(f"{suite}: no comparable points matched")
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    """Harness entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="scaling / pipeline benchmark harness")
    parser.add_argument("--point-scale", type=float, default=None,
                        help="run ONE scale-pipeline point, JSON on "
                             "stdout (used by the parent harness)")
    parser.add_argument("--pipeline-scale", type=float, default=None,
                        help="run ONE batch-pipeline point, JSON on "
                             "stdout")
    parser.add_argument("--scan-scale", type=float, default=None,
                        help="run ONE scan-kernel point, JSON on stdout")
    parser.add_argument("--serve-scale", type=float, default=None,
                        help="run ONE serving-QPS point, JSON on stdout")
    parser.add_argument("--ingest-scale", type=float, default=None,
                        help="run ONE ingestion point, JSON on stdout")
    parser.add_argument("--lint-mode", choices=["cold", "warm"],
                        default=None,
                        help="run ONE reprolint point, JSON on stdout")
    parser.add_argument("--iterations", type=int, default=3,
                        help="best-of iterations for the scan lane")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="sustained-load seconds for the serve lane")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="client threads for the serve lane")
    parser.add_argument("--batch-days", type=int, default=30,
                        help="feed batch width for the ingest lane")
    parser.add_argument("--suite",
                        choices=["scale", "pipeline", "scan", "serve",
                                 "ingest", "lint", "all"],
                        default=None, help="full suite to run")
    parser.add_argument("--scales", type=str, default=None,
                        help="comma-separated scale factors for the "
                             "scaling suite")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--workers-list", type=str, default=None,
                        help="comma-separated worker counts for the "
                             "scale and serve suites (e.g. 1,2,4)")
    parser.add_argument("--prefetch", type=int, default=2,
                        help="chunk prefetch depth for scale points "
                             "(0 disables the generator overlap)")
    parser.add_argument("--chunk-samples", type=int, default=4096)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--out-dir", type=str, default=".",
                        help="where BENCH_*.json land")
    args = parser.parse_args(argv)

    # the bare point flags are the child-process protocol; with an
    # explicit --suite they instead parameterise that suite's scale.
    if args.suite is None:
        if args.point_scale is not None:
            print(json.dumps(measure_scale_point(
                args.point_scale, seed=args.seed, workers=args.workers,
                chunk_samples=args.chunk_samples, num_shards=args.shards,
                prefetch=args.prefetch)))
            return 0
        if args.pipeline_scale is not None:
            print(json.dumps(measure_pipeline_point(
                args.pipeline_scale, seed=args.seed, workers=args.workers)))
            return 0
        if args.scan_scale is not None:
            print(json.dumps(measure_scan_point(
                args.scan_scale, seed=args.seed,
                iterations=args.iterations)))
            return 0
        if args.serve_scale is not None:
            from repro.serve.bench import measure_serve_point
            print(json.dumps(measure_serve_point(
                args.serve_scale, seed=args.seed,
                duration_s=args.duration,
                concurrency=args.concurrency,
                workers=args.workers)))
            return 0
        if args.ingest_scale is not None:
            print(json.dumps(measure_ingest_point(
                args.ingest_scale, seed=args.seed,
                batch_days=args.batch_days)))
            return 0
        if args.lint_mode is not None:
            print(json.dumps(measure_lint_point(
                args.lint_mode, workers=args.workers)))
            return 0

    suite = args.suite or "all"
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    scales = ([float(s) for s in args.scales.split(",")]
              if args.scales else DEFAULT_SCALES)
    workers_list = ([int(w) for w in args.workers_list.split(",")]
                    if args.workers_list else [args.workers])
    if suite in ("scale", "all"):
        _write_suite(out_dir, "scale",
                     run_scaling_suite(scales, seed=args.seed,
                                       workers_list=workers_list,
                                       chunk_samples=args.chunk_samples,
                                       num_shards=args.shards,
                                       prefetch=args.prefetch))
    if suite in ("pipeline", "all"):
        _write_suite(out_dir, "pipeline",
                     run_pipeline_suite(seed=args.seed,
                                        workers=args.workers))
    if suite in ("scan", "all"):
        _write_suite(out_dir, "scan",
                     run_scan_suite(args.scan_scale or 0.02,
                                    seed=args.seed,
                                    iterations=args.iterations))
    if suite in ("serve", "all"):
        _write_suite(out_dir, "serve",
                     run_serve_suite(args.serve_scale or 0.02,
                                     seed=args.seed,
                                     duration_s=args.duration,
                                     concurrency=args.concurrency,
                                     workers_list=workers_list))
    if suite in ("ingest", "all"):
        _write_suite(out_dir, "ingest",
                     run_ingest_suite(args.ingest_scale or 0.02,
                                      seed=args.seed,
                                      batch_days=args.batch_days))
    if suite in ("lint", "all"):
        lint_workers = (workers_list if args.workers_list
                        else [1, 2, 4])
        _write_suite(out_dir, "lint",
                     run_lint_suite(workers_list=lint_workers))
    return 0


if __name__ == "__main__":
    sys.exit(main())
