"""Scaling benchmark harness: time, throughput, peak RSS per point.

Each measurement point runs in a **fresh subprocess** — ``ru_maxrss``
is a lifetime high-water mark, so points sharing a process would
inherit each other's peaks.  The child re-invokes this module with
``--point-scale`` and prints one JSON object on stdout; the parent
collects points into ``BENCH_scale.json`` (the out-of-core pipeline's
scaling curve) and ``BENCH_pipeline.json`` (the batch pipeline's stage
breakdown at tier-1 scale, for comparison).

Invoked via ``python -m repro.scale.bench``, ``python
benchmarks/harness.py`` or ``repro bench`` — all the same code.
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "measure_pipeline_point",
    "measure_scale_point",
    "run_point_subprocess",
    "run_scaling_suite",
]

#: the committed scaling curve: ~10k / ~100k / ~1M streamed samples
#: (empirical scale factors; the bench reports the exact counts).
DEFAULT_SCALES = [0.072, 0.72, 6.35]


def measure_scale_point(scale: float, seed: int = 2019, workers: int = 1,
                        chunk_samples: int = 4096, num_shards: int = 8,
                        stride_days: int = 30) -> Dict:
    """One out-of-core pipeline run; returns its metrics dict.

    Call only in a fresh process if peak RSS matters (see module doc).
    """
    from repro.common.memory import peak_rss_mib
    from repro.corpus.model import ScenarioConfig
    from repro.scale.pipeline import ScalePipeline
    from repro.scale.stream import StreamingCorpus

    config = ScenarioConfig(seed=seed, scale=scale,
                            mining_stride_days=stride_days)
    t0 = time.perf_counter()
    corpus = StreamingCorpus(config, chunk_samples=chunk_samples,
                             keep_sample_hashes=False)
    skeleton_s = time.perf_counter() - t0
    pipeline = ScalePipeline(corpus, workers=workers,
                             num_shards=num_shards)
    t1 = time.perf_counter()
    result = pipeline.run()
    run_s = time.perf_counter() - t1
    store_bytes = sum(p.stat().st_size
                      for p in result.store.segment_paths())
    samples = result.stats.collected
    return {
        "suite": "scale",
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "chunk_samples": chunk_samples,
        "num_shards": num_shards,
        "samples": samples,
        "records": len(result.store),
        "campaigns": len(result.campaigns),
        "skeleton_s": round(skeleton_s, 3),
        "run_s": round(run_s, 3),
        "total_s": round(skeleton_s + run_s, 3),
        "samples_per_s": round(samples / run_s, 1) if run_s else 0.0,
        "peak_rss_mib": round(peak_rss_mib() or 0.0, 1),
        "store_mib": round(store_bytes / (1024 * 1024), 2),
        "spill_mib": round(result.spill_bytes / (1024 * 1024), 2),
        "segments": result.store.num_segments,
        "deferred": result.deferred_spilled,
        "rejected": result.rejected_spilled,
        "recovered": result.recovered,
    }


def measure_pipeline_point(scale: float = 0.02, seed: int = 2019,
                           workers: int = 1) -> Dict:
    """One batch-pipeline run with per-stage timings (tier-1 scales)."""
    from repro.common.memory import peak_rss_mib
    from repro.core.pipeline import MeasurementPipeline
    from repro.corpus.generator import generate_world
    from repro.corpus.model import ScenarioConfig

    t0 = time.perf_counter()
    world = generate_world(ScenarioConfig(seed=seed, scale=scale))
    world_s = time.perf_counter() - t0
    pipeline = MeasurementPipeline(world, workers=workers)
    t1 = time.perf_counter()
    result = pipeline.run()
    run_s = time.perf_counter() - t1
    stages = [
        {"stage": timing.name, "seconds": round(timing.wall_s, 3),
         "items": timing.items}
        for timing in pipeline.profiler.stages.values()
    ]
    return {
        "suite": "pipeline",
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "samples": result.stats.collected,
        "records": len(result.records),
        "campaigns": len(result.campaigns),
        "world_s": round(world_s, 3),
        "run_s": round(run_s, 3),
        "samples_per_s": round(result.stats.collected / run_s, 1)
        if run_s else 0.0,
        "peak_rss_mib": round(peak_rss_mib() or 0.0, 1),
        "stages": stages,
    }


def run_point_subprocess(argv: List[str], timeout: Optional[float] = None
                         ) -> Dict:
    """Run one point in a child interpreter; parse its JSON stdout."""
    command = [sys.executable, "-m", "repro.scale.bench"] + argv
    proc = subprocess.run(command, capture_output=True, text=True,
                          timeout=timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench point failed ({' '.join(argv)}):\n{proc.stderr}")
    return json.loads(proc.stdout)


def run_scaling_suite(scales: List[float], seed: int = 2019,
                      workers: int = 1, chunk_samples: int = 4096,
                      num_shards: int = 8) -> Dict:
    """The scaling curve: one subprocess per scale point."""
    points = []
    for scale in scales:
        points.append(run_point_subprocess([
            "--point-scale", str(scale), "--seed", str(seed),
            "--workers", str(workers),
            "--chunk-samples", str(chunk_samples),
            "--shards", str(num_shards),
        ]))
        last = points[-1]
        print(f"  scale={scale}: {last['samples']} samples in "
              f"{last['total_s']}s, peak {last['peak_rss_mib']} MiB",
              file=sys.stderr)
    return {"bench": "scale", "seed": seed, "workers": workers,
            "chunk_samples": chunk_samples, "num_shards": num_shards,
            "points": points}


def run_pipeline_suite(scale: float = 0.02, seed: int = 2019,
                       workers: int = 1) -> Dict:
    """Batch-pipeline stage breakdown, in its own subprocess."""
    point = run_point_subprocess([
        "--pipeline-scale", str(scale), "--seed", str(seed),
        "--workers", str(workers),
    ])
    return {"bench": "pipeline", "seed": seed, "workers": workers,
            "points": [point]}


def _write_json(path: Path, payload: Dict) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """Harness entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="scaling / pipeline benchmark harness")
    parser.add_argument("--point-scale", type=float, default=None,
                        help="run ONE scale-pipeline point, JSON on "
                             "stdout (used by the parent harness)")
    parser.add_argument("--pipeline-scale", type=float, default=None,
                        help="run ONE batch-pipeline point, JSON on "
                             "stdout")
    parser.add_argument("--suite", choices=["scale", "pipeline", "all"],
                        default=None, help="full suite to run")
    parser.add_argument("--scales", type=str, default=None,
                        help="comma-separated scale factors for the "
                             "scaling suite")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--chunk-samples", type=int, default=4096)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--out-dir", type=str, default=".",
                        help="where BENCH_*.json land")
    args = parser.parse_args(argv)

    if args.point_scale is not None:
        print(json.dumps(measure_scale_point(
            args.point_scale, seed=args.seed, workers=args.workers,
            chunk_samples=args.chunk_samples, num_shards=args.shards)))
        return 0
    if args.pipeline_scale is not None:
        print(json.dumps(measure_pipeline_point(
            args.pipeline_scale, seed=args.seed, workers=args.workers)))
        return 0

    suite = args.suite or "all"
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    scales = ([float(s) for s in args.scales.split(",")]
              if args.scales else DEFAULT_SCALES)
    if suite in ("scale", "all"):
        _write_json(out_dir / "BENCH_scale.json",
                    run_scaling_suite(scales, seed=args.seed,
                                      workers=args.workers,
                                      chunk_samples=args.chunk_samples,
                                      num_shards=args.shards))
    if suite in ("pipeline", "all"):
        _write_json(out_dir / "BENCH_pipeline.json",
                    run_pipeline_suite(seed=args.seed,
                                       workers=args.workers))
    return 0


if __name__ == "__main__":
    sys.exit(main())
