"""The measurement pipeline over a streamed corpus: flat-RSS stage 1/2.

:class:`ScalePipeline` re-runs the exact methodology of
:class:`~repro.core.pipeline.MeasurementPipeline` — same per-sample
stage functions (:func:`~repro.perf.parallel.stage1_analyze`,
:func:`~repro.perf.parallel.stage2_sweep`), same recovery fixpoint,
same proxy rule, same aggregation edges — but consumes
:class:`~repro.scale.stream.StreamingCorpus` chunks instead of a
materialised world, and parks everything that must outlive a chunk
either on disk or in compact per-sample scalars:

* accepted records   -> columnar :class:`~repro.scale.columnar.RecordStore`
  segments (flushed every ``segment_rows`` acceptances);
* deferred samples   -> a pickle spill, replayed for the stage-2
  wallet-exception sweep once the confirmed-wallet set is final
  (exactly the batch ordering: all of stage 1, then stage 2);
* rejected malware   -> a second spill, the *complete* admission
  universe of ancillary recovery (a recovered sample must pass
  ``is_executable`` and ``is_malware`` and not already be kept — at
  stage 1 that is precisely the ``rejected`` outcome, so spilling
  anything else would be waste);
* dropper links      -> an in-memory reverse-parents index replacing
  ``vt.children_of``'s linear scan over all reports.

What stays resident is O(samples) only in small constants — the
accepted/seen hash sets, spill offsets, link sets, per-feed counters —
about 100–150 bytes per sample against the batch pipeline's ~10 KB of
live ``SampleRecord``/report objects.  The measured scaling curve lives
in ``BENCH_scale.json``; the layout rationale in
``docs/performance.md``.

Campaign enrichment (stock-tool attribution, packer hist) needs sample
bodies and the full VT corpus, so the scale path stops after
aggregation + profit — the equivalence suite therefore compares against
the batch pipeline's *pre-enrichment* outputs, which are bit-identical.
"""

import datetime
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.aggregation import Campaign, GroupingPolicy
from repro.core.pipeline import (
    PipelineStats,
    analyze_linked_sample,
    build_analysis_components,
    proxy_candidate_ip,
)
from repro.core.profit import ProfitAnalyzer, WalletProfile
from repro.core.records import MinerRecord
from repro.core.sanity import SanityVerdict
from repro.corpus.model import SampleRecord, SyntheticWorld
from repro.perf.parallel import (
    AnalysisSpec,
    ParallelExtractionEngine,
    stage1_analyze,
    stage2_sweep,
)
from repro.scale.columnar import RecordStore
from repro.scale.shards import ShardedCampaignAggregator
from repro.scale.stream import ChunkPrefetcher, StreamingCorpus

__all__ = ["ScalePipeline", "ScaleResult"]

_DEFAULT_ANALYSIS_DATE = datetime.date(2018, 9, 1)

#: spill payload: the sample plus the intel its chunk carried for it.
_SpillEntry = Tuple[SampleRecord, object, object]


class _IntelView:
    """A VT/HA stand-in whose report map is swapped per chunk.

    The sanity checker and extraction engine only ever call
    ``get_report`` (asserted by the whole-program lint's call graph), so
    this is the entire surface the persistent engine needs.
    """

    def __init__(self) -> None:
        self._reports: Dict[str, object] = {}

    def swap(self, reports: Dict[str, object]) -> None:
        self._reports = reports

    def get_report(self, sha256: str):
        return self._reports.get(sha256)


class _Spill:
    """Append-only pickle spill with an in-memory sha -> offset index.

    Iteration replays entries in insertion order, which is what keeps
    the stage-2 sweep identical to the batch pipeline's deferred-list
    order.  ~56 bytes of RSS per spilled sample; bodies live on disk.
    """

    def __init__(self, path: Path) -> None:
        self._path = Path(path)
        self._handle = open(self._path, "wb+")
        self._offsets: Dict[str, int] = {}

    def put(self, sha256: str, entry: _SpillEntry) -> None:
        self._handle.seek(0, 2)
        self._offsets[sha256] = self._handle.tell()
        pickle.dump(entry, self._handle, protocol=pickle.HIGHEST_PROTOCOL)

    def get(self, sha256: str) -> Optional[_SpillEntry]:
        offset = self._offsets.get(sha256)
        if offset is None:
            return None
        self._handle.seek(offset)
        return pickle.load(self._handle)

    def __contains__(self, sha256: str) -> bool:
        return sha256 in self._offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def items(self) -> Iterator[Tuple[str, _SpillEntry]]:
        """(sha, entry) pairs in insertion order."""
        for sha in list(self._offsets):
            yield sha, self.get(sha)

    def bytes_written(self) -> int:
        self._handle.seek(0, 2)
        return self._handle.tell()

    def close(self) -> None:
        self._handle.close()


@dataclass
class ScaleResult:
    """What the out-of-core pipeline produces.

    ``store`` replaces the batch result's in-memory record list;
    :meth:`records` materialises it (tier-1 equivalence tests only —
    defeats the point at the million scale).
    """

    store: RecordStore
    campaigns: List[Campaign]
    profiles: Dict[str, WalletProfile]
    stats: PipelineStats
    proxy_ips: Set[str]
    verdicts: Dict[str, SanityVerdict] = field(default_factory=dict)
    #: observability for the scaling bench
    deferred_spilled: int = 0
    rejected_spilled: int = 0
    recovered: int = 0
    spill_bytes: int = 0

    def records(self) -> List[MinerRecord]:
        """Materialise every stored record (small worlds only)."""
        return list(self.store.iter_records())


class ScalePipeline:
    """Chunked, disk-backed run of the measurement methodology.

    ``workers > 1`` fans each chunk's stage-1/stage-2 maps over a
    short-lived fork pool built around a chunk-local world view —
    results stay bit-identical because outcomes merge in sample order
    either way — and runs the independent per-shard aggregation passes
    on the same-width fork pool.  ``prefetch`` (default 2) generates
    the next corpus chunks on a background thread while the current one
    is analysed (:class:`~repro.scale.stream.ChunkPrefetcher`); chunks
    are consumed in generation order, so the stage-1-then-stage-2
    ordering and every spill is byte-identical to the eager path —
    ``prefetch=0`` disables the overlap entirely.
    ``keep_verdicts=False`` (the default) drops the per-sample verdict
    map, the one remaining O(samples) structure with a non-trivial
    constant.
    """

    def __init__(self, corpus: StreamingCorpus,
                 store: Optional[RecordStore] = None,
                 workdir: Optional[Path] = None,
                 policy: Optional[GroupingPolicy] = None,
                 positives_threshold: int = 10,
                 analysis_date: datetime.date = _DEFAULT_ANALYSIS_DATE,
                 use_ha_reports: bool = True,
                 workers: int = 1,
                 num_shards: int = 8,
                 segment_rows: int = 8192,
                 prefetch: int = 2,
                 keep_verdicts: bool = False,
                 keep_campaign_records: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        self.corpus = corpus
        self.workers = workers
        self.prefetch = prefetch
        self._policy = policy or GroupingPolicy.full()
        self._spec = AnalysisSpec(
            positives_threshold=positives_threshold,
            analysis_date=analysis_date,
            use_ha_reports=use_ha_reports,
        )
        self._num_shards = num_shards
        self._segment_rows = segment_rows
        self._keep_verdicts = keep_verdicts
        self._keep_campaign_records = keep_campaign_records
        self._own_workdir = workdir is None
        self._workdir = Path(workdir or tempfile.mkdtemp(prefix="repro-scale-"))
        self._workdir.mkdir(parents=True, exist_ok=True)
        # `store or ...` would discard a caller's *empty* store
        # (RecordStore defines __len__, so an empty one is falsy)
        self.store = (store if store is not None
                      else RecordStore(self._workdir / "store"))
        # persistent serial components over swappable chunk intel views
        self._vt_view = _IntelView()
        self._ha_view = _IntelView()
        self._checker, self._engine = build_analysis_components(
            self._skeleton_world(), self._spec)
        self._profit = ProfitAnalyzer(corpus.pool_directory)
        # O(1)-per-sample resident state
        self._confirmed_wallets: Set[str] = set()
        self._accepted: Set[str] = set()
        self._identifiers: Set[str] = set()
        self._accum_links: Set[str] = set()
        self._reverse_parents: Dict[str, List[str]] = {}
        self._proxy_candidates: List[Tuple[str, Tuple[str, ...]]] = []
        self._buffer: List[MinerRecord] = []
        self._segment_counter = 0
        self._recovered = 0
        #: the stage-1 prefetcher while it is live — chunk engines fork
        #: inside its quiesce window (FORK001).
        self._active_prefetcher: Optional[ChunkPrefetcher] = None

    # -- world facades -----------------------------------------------------

    def _skeleton_world(self, samples: Optional[List[SampleRecord]] = None,
                        vt=None, ha=None) -> SyntheticWorld:
        """A SyntheticWorld shell over skeleton services + chunk intel."""
        corpus = self.corpus
        return SyntheticWorld(
            config=corpus.config,
            samples=samples or [],
            vt=vt if vt is not None else self._vt_view,
            ha=ha if ha is not None else self._ha_view,
            dns_zone=corpus.dns_zone,
            resolver=corpus.resolver,
            passive_dns=corpus.passive_dns,
            pool_directory=corpus.pool_directory,
            osint=corpus.osint,
            stock_catalog=corpus.stock_catalog,
            ground_truth=[],
        )

    def _chunk_engine(self, samples: List[SampleRecord],
                      reports: Dict[str, object],
                      ha_reports: Dict[str, object]
                      ) -> ParallelExtractionEngine:
        """A pooled engine whose workers see only this chunk."""
        vt, ha = _IntelView(), _IntelView()
        vt.swap(reports)
        ha.swap(ha_reports)
        world = self._skeleton_world(samples, vt=vt, ha=ha)
        # while the prefetcher thread is live, every fork must happen
        # inside its quiesce window: a forked child inherits the chunk
        # queue's lock in whatever state the producer left it.
        barrier = (self._active_prefetcher.quiesced
                   if self._active_prefetcher is not None else None)
        return ParallelExtractionEngine(world, self._spec,
                                        workers=self.workers,
                                        fork_barrier=barrier)

    # -- acceptance bookkeeping --------------------------------------------

    def _accept(self, record: MinerRecord, sample: SampleRecord,
                stats: PipelineStats) -> None:
        self._accepted.add(record.sha256)
        self._identifiers.update(record.identifiers)
        self._accum_links.update(record.parents)
        self._accum_links.update(record.dropped)
        candidate = proxy_candidate_ip(record)
        if candidate is not None and record.identifiers:
            self._proxy_candidates.append(
                (candidate, tuple(record.identifiers)))
        # the batch funnel counts these over the final kept set; a
        # record's type never changes after acceptance, so counting at
        # acceptance is the same sum.
        if record.is_miner:
            stats.miners += 1
        else:
            stats.ancillaries += 1
        for feed in sample.sources:
            stats.by_source[feed] = stats.by_source.get(feed, 0) + 1
        self._buffer.append(record)
        if len(self._buffer) >= self._segment_rows:
            self._flush_segment()

    def _flush_segment(self) -> None:
        if not self._buffer:
            return
        self.store.append_segment(self._buffer,
                                  name=f"{self._segment_counter:06d}")
        self._segment_counter += 1
        self._buffer = []

    def _index_parents(self, reports: Dict[str, object]) -> None:
        """Incremental replacement for ``vt.children_of``'s full scan."""
        for sha, report in reports.items():
            for parent in report.parents:
                self._reverse_parents.setdefault(parent, []).append(sha)

    # -- stages ------------------------------------------------------------

    def run(self) -> ScaleResult:
        """Stream the corpus through all measurement stages."""
        stats = PipelineStats()
        verdicts: Dict[str, SanityVerdict] = {}
        deferred = _Spill(self._workdir / "deferred.spill")
        rejected = _Spill(self._workdir / "rejected.spill")
        try:
            self._stage1(stats, verdicts, deferred, rejected)
            self._stage2(stats, verdicts, deferred)
            self._recover(stats, verdicts, rejected)
            self._flush_segment()

            identifiers = sorted(self._identifiers)
            profiles = self._profit.profile_many(identifiers)
            proxy_ips = self._find_proxies(profiles)
            aggregator = ShardedCampaignAggregator(
                self.corpus.osint, self._policy, proxy_ips=proxy_ips,
                num_shards=self._num_shards,
                keep_records=self._keep_campaign_records,
                workers=self.workers)
            campaigns = aggregator.aggregate_source(self.store.iter_records)

            return ScaleResult(
                store=self.store,
                campaigns=campaigns,
                profiles=profiles,
                stats=stats,
                proxy_ips=proxy_ips,
                verdicts=verdicts,
                deferred_spilled=len(deferred),
                rejected_spilled=len(rejected),
                recovered=self._recovered,
                spill_bytes=deferred.bytes_written()
                + rejected.bytes_written(),
            )
        finally:
            deferred.close()
            rejected.close()
            for name in ("deferred.spill", "rejected.spill"):
                spill_path = self._workdir / name
                if spill_path.exists():
                    spill_path.unlink()
            if (self._own_workdir
                    and self.store.root != self._workdir / "store"):
                # caller supplied the store; nothing of theirs lives here
                shutil.rmtree(self._workdir, ignore_errors=True)

    def _chunk_stream(self):
        """The corpus chunk iterator, prefetched when configured."""
        chunks = self.corpus.chunks()
        if self.prefetch > 0:
            return ChunkPrefetcher(chunks, depth=self.prefetch)
        return chunks

    def _stage1(self, stats: PipelineStats,
                verdicts: Dict[str, SanityVerdict],
                deferred: _Spill, rejected: _Spill) -> None:
        index = 0
        chunks = self._chunk_stream()
        if isinstance(chunks, ChunkPrefetcher):
            self._active_prefetcher = chunks
        try:
            for chunk in chunks:
                index = self._stage1_chunk(chunk, index, stats, verdicts,
                                           deferred, rejected)
        finally:
            self._active_prefetcher = None
            if isinstance(chunks, ChunkPrefetcher):
                chunks.close()

    def _stage1_chunk(self, chunk, index: int, stats: PipelineStats,
                      verdicts: Dict[str, SanityVerdict],
                      deferred: _Spill, rejected: _Spill) -> int:
        """Stage-1 analysis of one chunk; returns the next sample index."""
        stats.collected += len(chunk.samples)
        self._index_parents(chunk.reports)
        if self.workers == 1:
            self._vt_view.swap(chunk.reports)
            self._ha_view.swap(chunk.ha_reports)
            outcomes = [
                stage1_analyze(sample, index + i,
                               self._checker, self._engine)
                for i, sample in enumerate(chunk.samples)]
        else:
            with self._chunk_engine(chunk.samples, chunk.reports,
                                    chunk.ha_reports) as engine:
                outcomes = engine.map_stage1(
                    range(len(chunk.samples)))
                for outcome in outcomes:
                    outcome.index += index
        for i, outcome in enumerate(outcomes):
            sample = chunk.samples[i]
            sha = outcome.sha256
            if outcome.kind == "nonexec":
                if self._keep_verdicts:
                    verdicts[sha] = outcome.verdict
                continue
            stats.executables += 1
            if outcome.kind == "deferred":
                deferred.put(sha, (sample, chunk.reports[sha],
                                   chunk.ha_reports.get(sha)))
                continue
            stats.malware += 1
            stats.sandbox_analyses += 1
            if outcome.has_network:
                stats.network_analyses += 1
            if outcome.used_static:
                stats.binary_analyses += 1
            if self._keep_verdicts:
                verdicts[sha] = outcome.verdict
            if outcome.kind == "miner":
                self._confirmed_wallets.update(
                    outcome.record.identifiers)
                self._accept(outcome.record, sample, stats)
            else:
                rejected.put(sha, (sample, chunk.reports[sha],
                                   chunk.ha_reports.get(sha)))
        return index + len(chunk.samples)

    def _stage2(self, stats: PipelineStats,
                verdicts: Dict[str, SanityVerdict],
                deferred: _Spill) -> None:
        confirmed = frozenset(self._confirmed_wallets)
        batch: List[_SpillEntry] = []

        def sweep(entries: List[_SpillEntry]) -> None:
            samples = [entry[0] for entry in entries]
            reports = {entry[0].sha256: entry[1] for entry in entries}
            ha_reports = {entry[0].sha256: entry[2] for entry in entries
                          if entry[2] is not None}
            if self.workers == 1:
                self._vt_view.swap(reports)
                self._ha_view.swap(ha_reports)
                outcomes = [stage2_sweep(sample, i, confirmed, self._engine)
                            for i, sample in enumerate(samples)]
            else:
                with self._chunk_engine(samples, reports,
                                        ha_reports) as engine:
                    outcomes = engine.map_stage2(
                        range(len(samples)), confirmed)
            for i, outcome in enumerate(outcomes):
                if self._keep_verdicts:
                    verdicts[outcome.sha256] = outcome.verdict
                if outcome.kind != "exception":
                    continue
                stats.sandbox_analyses += 1
                stats.binary_analyses += 1
                stats.wallet_exception_hits += 1
                self._accept(outcome.record, samples[i], stats)

        for _sha, entry in deferred.items():
            batch.append(entry)
            if len(batch) >= self.corpus.chunk_samples:
                sweep(batch)
                batch = []
        if batch:
            sweep(batch)

    def _recover(self, stats: PipelineStats,
                 verdicts: Dict[str, SanityVerdict],
                 rejected: _Spill) -> None:
        """Ancillary recovery against the rejected-malware spill.

        The batch fixpoint admits a linked sample iff it exists, is
        executable, and is malware — at stage 1 exactly the ``rejected``
        outcome — so the spill IS the admission universe and the
        executable/malware re-checks are implied by membership.
        """
        linked: Set[str] = set(self._accum_links)
        for sha in self._accepted:
            linked.update(self._reverse_parents.get(sha, ()))
        while linked:
            frontier: List[MinerRecord] = []
            for sha in sorted(linked):
                if sha in self._accepted:
                    continue
                entry = rejected.get(sha)
                if entry is None:
                    continue
                sample, report, ha_report = entry
                self._vt_view.swap({sha: report})
                self._ha_view.swap(
                    {sha: ha_report} if ha_report is not None else {})
                record, verdict = analyze_linked_sample(sample, self._engine)
                stats.sandbox_analyses += 1
                if self._keep_verdicts:
                    verdicts[sha] = verdict
                self._accept(record, sample, stats)
                self._recovered += 1
                frontier.append(record)
            linked = set()
            for record in frontier:
                linked.update(record.parents)
                linked.update(record.dropped)
                linked.update(self._reverse_parents.get(record.sha256, ()))

    def _find_proxies(self, profiles: Dict[str, WalletProfile]) -> Set[str]:
        proxies: Set[str] = set()
        for candidate, identifiers in self._proxy_candidates:
            for identifier in identifiers:
                profile = profiles.get(identifier)
                if profile is not None and profile.records:
                    proxies.add(candidate)
                    break
        return proxies
