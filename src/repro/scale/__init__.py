"""Out-of-core scaling: streaming corpus, columnar store, sharded aggregation.

``repro.scale`` is the million-sample path.  The in-memory pipeline
(:mod:`repro.core.pipeline`) materialises the whole synthetic world and
keeps every live ``SampleRecord`` — fine at tier-1 scales, hopeless at
the paper's real corpus size (4.4M samples).  This package provides:

* :mod:`repro.scale.stream` — the corpus generator as a deterministic
  chunk iterator (never holds the world);
* :mod:`repro.scale.columnar` — an append-only, mmap-readable columnar
  store for extracted :class:`~repro.core.records.MinerRecord` rows;
* :mod:`repro.scale.shards` — identifier-locality sharded union-find
  campaign aggregation with a bounded cross-shard frontier merge;
* :mod:`repro.scale.pipeline` — the measurement pipeline rewired over
  all three, bit-identical to the batch path where both can run.
"""

from repro.scale.columnar import RecordStore, SegmentReader, write_segment
from repro.scale.pipeline import ScalePipeline, ScaleResult
from repro.scale.shards import ShardedCampaignAggregator
from repro.scale.stream import StreamingCorpus, materialize_stream

__all__ = [
    "RecordStore",
    "ScalePipeline",
    "ScaleResult",
    "SegmentReader",
    "ShardedCampaignAggregator",
    "StreamingCorpus",
    "materialize_stream",
    "write_segment",
]
