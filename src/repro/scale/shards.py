"""Sharded campaign aggregation: identifier-locality union-find.

The batch :class:`~repro.core.aggregation.CampaignAggregator` holds one
networkx graph plus every record; the streaming
:class:`~repro.ingest.aggregator.IncrementalAggregator` drops the graph
but still holds every record.  At a million samples neither fits the
"flat RSS" budget, so this aggregator partitions the work by
*identifier locality*: records land in ``crc32(min(identifiers) or
sha256) % K`` shards, each shard runs its own
:class:`~repro.core.unionfind.UnionFind` over only its records, and
components that never touch a *boundary node* (a graph node observed
from two or more shards) are materialised — and their records freed —
before the next shard loads.

Cross-shard components are the frontier: they are buffered and glued by
a second, tiny union-find over ``(component, boundary-node)``
incidence.  Peak memory is therefore

    O(max shard) + O(frontier) + O(distinct nodes)

— the last term is the pass-1 boundary scan (a node-to-first-shard map,
~100 bytes per distinct node), the first two hold actual records.  Most
identifiers are campaign-private, so the frontier stays small; the
worst case (one giant component) degrades gracefully to the streaming
aggregator's footprint, never worse.

Given the boundary set, the per-shard builds are **independent**:
``workers > 1`` fans them over a fork pool (one task per shard, results
merged in shard-index order), so the K passes over the record source
run concurrently instead of back to back.  The parallel path returns
exactly what the serial path would — per-shard union-find structure is
a pure function of the shard's records, every campaign list is sorted
inside :func:`~repro.core.aggregation.build_campaign`, and
:func:`~repro.core.aggregation.finalize_campaigns` canonicalises order
and numbering — so the output stays bit-identical for any worker count.

Equivalence is exact, not approximate: edges come from the shared
:func:`~repro.core.aggregation.record_attachments`, components are
deduplicated node *sets*, and
:func:`~repro.core.aggregation.finalize_campaigns` canonicalises order
and numbering — so for any record set the output is bit-identical to
the batch aggregator's (property-tested in
``tests/test_scale_shards.py``, including workers ∈ {1, 2, 4}).
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)
from zlib import crc32

from repro.core.aggregation import (
    Campaign,
    GroupingPolicy,
    Node,
    build_campaign,
    finalize_campaigns,
    record_attachments,
)
from repro.core.records import MinerRecord
from repro.core.unionfind import UnionFind
from repro.osint.feeds import OsintFeeds

__all__ = ["ShardedCampaignAggregator", "shard_of"]

#: one buffered component: (node set, records-by-sha)
_Component = Tuple[Set[Node], Dict[str, MinerRecord]]


def shard_of(record: MinerRecord, num_shards: int) -> int:
    """Deterministic shard of a record: its smallest identifier, or its
    sha256 for identifier-less records, hashed with crc32 (NOT Python's
    ``hash`` — that is salted per process and would break resume and
    cross-run comparison)."""
    key = min(record.identifiers) if record.identifiers else record.sha256
    return crc32(key.encode("utf-8")) % num_shards


@dataclass
class _ShardBuild:
    """One shard's pass-2 output, ready for the shard-order merge.

    Components are split against the boundary set already; both lists
    carry component-filtered record dicts so the payload a pool worker
    pickles back is exactly the records the merge needs, nothing more.
    """

    shard: int
    local: List[_Component] = field(default_factory=list)
    frontier: List[_Component] = field(default_factory=list)
    num_records: int = 0


# -- fork-pool plumbing ------------------------------------------------------

#: (aggregator, source, boundary) of the in-flight parallel build; set
#: by the parent immediately before the fork pool spins up, inherited
#: by workers through fork memory (no pickling of the record source).
_POOL_STATE: Optional[tuple] = None


def _pool_build_shard(shard: int) -> _ShardBuild:
    aggregator, source, boundary = _POOL_STATE
    return aggregator._build_shard(shard, source, boundary)


class ShardedCampaignAggregator:
    """Two-pass sharded aggregation over a re-iterable record source.

    ``keep_records=False`` clears each campaign's record list the
    moment it is built (profit/report stages that only need identifiers
    and hashes use this at the million-sample scale).  ``workers > 1``
    runs the independent per-shard builds on a fork pool; the output is
    bit-identical to the serial build for any worker count.
    ``campaign_hook`` runs on each campaign right after it is built —
    *before* ``keep_records=False`` strips its record list — always in
    the parent process, so a consumer can fold over records (e.g.
    serving-index enrichment) without anything retaining them.
    """

    def __init__(self, osint: OsintFeeds,
                 policy: Optional[GroupingPolicy] = None,
                 proxy_ips: Optional[Set[str]] = None,
                 num_shards: int = 8,
                 keep_records: bool = True,
                 workers: int = 1,
                 campaign_hook: Optional[
                     Callable[[Campaign], None]] = None) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._osint = osint
        self._policy = policy or GroupingPolicy.full()
        self._proxy_ips = set(proxy_ips or ())
        self._num_shards = num_shards
        self._keep_records = keep_records
        self._campaign_hook = campaign_hook
        self.workers = workers
        #: high-water marks for the benchmark report
        self.max_shard_records = 0
        self.max_frontier_records = 0

    def _nodes_of(self, record: MinerRecord) -> List[Node]:
        nodes: List[Node] = [("sample", record.sha256)]
        for node, _feature in record_attachments(
                record, self._policy, self._osint, self._proxy_ips):
            nodes.append(node)
        return nodes

    # -- pass 1: boundary scan --------------------------------------------

    def _scan(self, source: Callable[[], Iterable[MinerRecord]]
              ) -> Set[Node]:
        """One streaming pass; returns the boundary-node set."""
        first_shard: Dict[Node, int] = {}
        boundary: Set[Node] = set()
        for record in source():
            shard = shard_of(record, self._num_shards)
            for node in self._nodes_of(record):
                seen = first_shard.setdefault(node, shard)
                if seen != shard:
                    boundary.add(node)
        return boundary

    # -- pass 2: per-shard build + frontier glue ---------------------------

    def _build_shard(self, shard: int,
                     source: Callable[[], Iterable[MinerRecord]],
                     boundary: Set[Node]) -> _ShardBuild:
        """One shard's union-find over one pass of the source.

        Runs identically in-process and in a forked pool worker: the
        forest is a pure function of the shard's records, and both
        component lists come back with component-filtered record dicts
        (:func:`~repro.core.aggregation.build_campaign` only ever looks
        up a component's own sample nodes, so the filtered dict yields
        the same campaign as the full shard dict).
        """
        forest: UnionFind = UnionFind()
        by_hash: Dict[str, MinerRecord] = {}
        for record in source():
            if shard_of(record, self._num_shards) != shard:
                continue
            node: Node = ("sample", record.sha256)
            forest.ensure(node)
            for other in self._nodes_of(record)[1:]:
                forest.union(node, other)
            by_hash[record.sha256] = record
        build = _ShardBuild(shard=shard, num_records=len(by_hash))
        for component in forest.components():
            nodes = set(component)
            records = {sha: by_hash[sha] for kind, sha in nodes
                       if kind == "sample" and sha in by_hash}
            target = build.frontier if nodes & boundary else build.local
            target.append((nodes, records))
        return build

    def _build_all_serial(self, source: Callable[[], Iterable[MinerRecord]],
                          boundary: Set[Node]) -> Iterator[_ShardBuild]:
        for shard in range(self._num_shards):
            yield self._build_shard(shard, source, boundary)

    def _build_all_pool(self, source: Callable[[], Iterable[MinerRecord]],
                        boundary: Set[Node]) -> Iterator[_ShardBuild]:
        """Fan the per-shard builds over a fork pool.

        Workers inherit the aggregator, the record source and the
        boundary set through fork memory (the source — typically a
        :meth:`~repro.scale.columnar.RecordStore.iter_records` bound
        method over mmap'd segments — is rarely picklable and never
        needs to be).  Submissions are plain shard indices; results
        stream back and are consumed in shard-index order, so the merge
        below observes exactly the serial ordering.
        """
        global _POOL_STATE
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            yield from self._build_all_serial(source, boundary)
            return
        _POOL_STATE = (self, source, boundary)
        try:
            workers = min(self.workers, self._num_shards)
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=context) as pool:
                yield from pool.map(_pool_build_shard,
                                    range(self._num_shards))
        finally:
            _POOL_STATE = None

    def aggregate_source(self, source: Callable[[], Iterable[MinerRecord]]
                         ) -> List[Campaign]:
        """Aggregate a re-iterable record stream (e.g. a
        :meth:`~repro.scale.columnar.RecordStore.iter_records` factory).

        The source is iterated ``1 + num_shards`` times (concurrently
        across shards when ``workers > 1``); memory never holds more
        than one shard's records plus the frontier per process.
        """
        boundary = self._scan(source) if self._num_shards > 1 else set()
        parallel = self.workers > 1 and self._num_shards > 1
        builds = (self._build_all_pool(source, boundary) if parallel
                  else self._build_all_serial(source, boundary))

        campaigns: List[Campaign] = []
        #: buffered cross-shard components, in shard-index order
        frontier: List[_Component] = []
        frontier_records = 0
        for build in builds:
            self.max_shard_records = max(self.max_shard_records,
                                         build.num_records)
            for nodes, records in build.local:
                self._emit(nodes, records, campaigns)
            for nodes, records in build.frontier:
                frontier.append((nodes, records))
                frontier_records += len(records)
            self.max_frontier_records = max(self.max_frontier_records,
                                            frontier_records)

        campaigns.extend(self._glue(frontier))
        return finalize_campaigns(campaigns)

    def _glue(self, frontier: List[_Component]) -> List[Campaign]:
        """Union frontier components that share a boundary node."""
        glue: UnionFind = UnionFind()
        for index, (nodes, _records) in enumerate(frontier):
            comp = ("comp", index)
            glue.ensure(comp)
            for node in nodes:
                glue.union(comp, ("node", node))
        campaigns: List[Campaign] = []
        for group in glue.components():
            merged_nodes: Set[Node] = set()
            merged_records: Dict[str, MinerRecord] = {}
            for kind, value in group:
                if kind != "comp":
                    continue
                nodes, records = frontier[value]
                merged_nodes.update(nodes)
                merged_records.update(records)
            if merged_nodes:
                self._emit(merged_nodes, merged_records, campaigns)
        return campaigns

    def _emit(self, nodes: Set[Node], by_hash: Dict[str, MinerRecord],
              campaigns: List[Campaign]) -> None:
        campaign = build_campaign(nodes, by_hash)
        if campaign is None:
            return
        if self._campaign_hook is not None:
            self._campaign_hook(campaign)
        if not self._keep_records:
            campaign.records = []
        campaigns.append(campaign)

    # -- convenience -------------------------------------------------------

    def aggregate(self, records: Sequence[MinerRecord]) -> List[Campaign]:
        """Aggregate an in-memory record sequence (tests, small runs)."""
        return self.aggregate_source(lambda: records)
