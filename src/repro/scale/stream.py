"""The synthetic corpus as a bounded-memory chunk stream.

:class:`StreamingCorpus` is the scale path's view of
:class:`~repro.corpus.generator.EcosystemGenerator`: it builds the
campaign-level *skeleton* (ground truth, DNS, catalogs, pool payment
ledgers — a few MB regardless of scale) and then yields samples in
deterministic :class:`~repro.corpus.model.SampleChunk` batches, each
carrying exactly the VT/HA intel for its own samples.  Nothing retains
the chunks, so generating a million samples costs the memory of one
chunk.

Equality with the batch world is exact (not statistical): per-sample
intel draws from position-independent ``intel:{sha}`` RNG substreams,
so the union of chunks reproduces :func:`generate_world`'s samples and
reports sha-for-sha — :func:`materialize_stream` rebuilds a full
:class:`~repro.corpus.model.SyntheticWorld` from the stream and the
equivalence suite asserts it equals the batch one.
"""

from typing import Iterator, List, Optional

from repro.corpus.generator import EcosystemGenerator
from repro.corpus.model import (
    SampleChunk,
    SampleRecord,
    ScenarioConfig,
    SyntheticWorld,
)
from repro.forums.corpus import ForumCorpus, generate_forum_corpus

__all__ = ["StreamingCorpus", "materialize_stream"]


class StreamingCorpus:
    """Skeleton services plus a chunked sample iterator.

    ``keep_sample_hashes=False`` drops per-campaign sample-hash lists
    from ground truth as campaigns finish emitting (they are the one
    skeleton structure that grows with sample count); campaigns tagged
    as known operations keep theirs, since hash IoCs feed the OSINT
    feeds either way.
    """

    def __init__(self, config: Optional[ScenarioConfig] = None,
                 chunk_samples: int = 4096,
                 keep_sample_hashes: bool = True) -> None:
        self.config = config or ScenarioConfig()
        self.chunk_samples = chunk_samples
        self.keep_sample_hashes = keep_sample_hashes
        self._generator = EcosystemGenerator(self.config)
        self._generator.build_skeleton()

    # -- skeleton services (what build_analysis_components needs) ----------

    @property
    def vt(self):
        return self._generator.vt

    @property
    def ha(self):
        return self._generator.ha

    @property
    def osint(self):
        return self._generator.osint

    @property
    def pool_directory(self):
        return self._generator.pools

    @property
    def dns_zone(self):
        return self._generator.dns

    @property
    def resolver(self):
        return self._generator.resolver

    @property
    def passive_dns(self):
        return self._generator.passive_dns

    @property
    def stock_catalog(self):
        return self._generator.stock

    @property
    def ground_truth(self):
        return self._generator.campaigns

    def forum_corpus(self) -> ForumCorpus:
        """The forum corpus, built on demand (batch-identical: the
        ``forums`` substream is position-independent)."""
        return generate_forum_corpus(
            self._generator.rng.substream("forums"),
            scale=max(0.25, self.config.scale * 5),
        )

    # -- the stream --------------------------------------------------------

    def chunks(self) -> Iterator[SampleChunk]:
        """The world, once, in deterministic bounded chunks."""
        return self._generator.stream_chunks(
            chunk_samples=self.chunk_samples,
            keep_sample_hashes=self.keep_sample_hashes,
        )


def materialize_stream(config: Optional[ScenarioConfig] = None,
                       chunk_samples: int = 4096) -> SyntheticWorld:
    """Rebuild a full :class:`SyntheticWorld` from the chunk stream.

    Exists for the equivalence suite (stream ≡ batch) and as a drop-in
    world builder; it deliberately re-accumulates everything the stream
    exists to avoid holding, so don't use it at the million scale.
    """
    corpus = StreamingCorpus(config, chunk_samples=chunk_samples)
    samples: List[SampleRecord] = []
    for chunk in corpus.chunks():
        samples.extend(chunk.samples)
        # chunks carry their own intel; fold it back into the services
        for report in chunk.reports.values():
            corpus.vt.add_report(report)
        for ha_report in chunk.ha_reports.values():
            corpus.ha.publish(ha_report)
    return SyntheticWorld(
        config=corpus.config,
        samples=samples,
        vt=corpus.vt,
        ha=corpus.ha,
        dns_zone=corpus.dns_zone,
        resolver=corpus.resolver,
        passive_dns=corpus.passive_dns,
        pool_directory=corpus.pool_directory,
        osint=corpus.osint,
        stock_catalog=corpus.stock_catalog,
        ground_truth=corpus.ground_truth,
        forum_corpus=corpus.forum_corpus(),
    )
