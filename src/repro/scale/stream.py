"""The synthetic corpus as a bounded-memory chunk stream.

:class:`StreamingCorpus` is the scale path's view of
:class:`~repro.corpus.generator.EcosystemGenerator`: it builds the
campaign-level *skeleton* (ground truth, DNS, catalogs, pool payment
ledgers — a few MB regardless of scale) and then yields samples in
deterministic :class:`~repro.corpus.model.SampleChunk` batches, each
carrying exactly the VT/HA intel for its own samples.  Nothing retains
the chunks, so generating a million samples costs the memory of one
chunk.

Equality with the batch world is exact (not statistical): per-sample
intel draws from position-independent ``intel:{sha}`` RNG substreams,
so the union of chunks reproduces :func:`generate_world`'s samples and
reports sha-for-sha — :func:`materialize_stream` rebuilds a full
:class:`~repro.corpus.model.SyntheticWorld` from the stream and the
equivalence suite asserts it equals the batch one.
"""

import queue
import threading
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional, TypeVar

from repro.corpus.generator import EcosystemGenerator
from repro.corpus.model import (
    SampleChunk,
    SampleRecord,
    ScenarioConfig,
    SyntheticWorld,
)
from repro.forums.corpus import ForumCorpus, generate_forum_corpus

__all__ = ["ChunkPrefetcher", "StreamingCorpus", "materialize_stream"]

_T = TypeVar("_T")


class ChunkPrefetcher(Iterator[_T]):
    """Bounded producer/consumer wrapper over a chunk iterator.

    A daemon thread drives the wrapped iterator and parks results in a
    queue of depth ``depth``, so generating chunk N+1 overlaps with the
    consumer's analysis of chunk N instead of serialising with it (the
    win is largest when the consumer hands its work to a process pool
    and would otherwise sit idle while the generator runs).  Items come
    out in exactly the order the iterator produced them — one producer,
    one FIFO queue — so a prefetched stream is element-for-element
    equal to the eager one; only the timing changes.

    A producer-side exception is re-raised at the consumer's next
    ``next()``, at the position it occurred.  ``close()`` stops the
    producer early (consumers abandoning the stream mid-way must call
    it, or use the context-manager form, so the thread does not linger
    blocked on a full queue).
    """

    #: queue sentinel marking normal exhaustion.
    _DONE = object()

    def __init__(self, iterable: Iterable[_T], depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self._iterator = iter(iterable)
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._pause = threading.Event()
        self._parked = threading.Event()
        self._resume = threading.Event()
        self._thread = threading.Thread(
            target=self._produce, daemon=True, name="chunk-prefetch")
        self._thread.start()

    def _produce(self) -> None:
        try:
            for item in self._iterator:
                self._put((False, item))
                if self._stop.is_set():
                    return
            self._put((False, self._DONE))
        except BaseException as exc:  # noqa: BLE001 — relayed to consumer
            self._put((True, exc))

    def _put(self, payload) -> None:
        """Queue ``payload`` without deadlocking against close()."""
        while not self._stop.is_set():
            if self._pause.is_set():
                self._park()
                continue
            try:
                self._queue.put(payload, timeout=0.1)
                return
            except queue.Full:
                continue

    def _park(self) -> None:
        """Hold at a lock-free point until :meth:`quiesced` exits."""
        self._resume.clear()
        self._parked.set()
        while not self._stop.is_set() and self._pause.is_set():
            self._resume.wait(timeout=0.1)
        self._parked.clear()

    @contextmanager
    def quiesced(self):
        """Park the producer thread for the duration of the block.

        The sanctioned fork barrier (FORK001): a forked child inherits
        only the forking thread, so any lock the producer holds at
        fork time — the chunk queue's internal lock above all — stays
        locked forever in the child.  Inside this block the producer
        is parked between queue operations, holding nothing, so the
        caller may fork freely (``engine = ...`` with
        ``fork_barrier=prefetcher.quiesced``).  Best-effort: if the
        producer is deep inside the wrapped iterator generating a
        chunk, the wait times out rather than stalling the fork — the
        producer touches no shared locks there either.
        """
        if not self._thread.is_alive():
            yield
            return
        self._pause.set()
        self._parked.wait(timeout=5.0)
        try:
            yield
        finally:
            self._pause.clear()
            self._resume.set()

    def __iter__(self) -> "ChunkPrefetcher[_T]":
        return self

    def __next__(self) -> _T:
        if self._stop.is_set():
            raise StopIteration
        failed, item = self._queue.get()
        if failed:
            self.close()
            raise item
        if item is self._DONE:
            self.close()
            raise StopIteration
        return item

    def close(self) -> None:
        """Stop the producer and release its thread."""
        self._stop.set()
        # unblock a producer parked on a full queue
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5)

    def __enter__(self) -> "ChunkPrefetcher[_T]":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class StreamingCorpus:
    """Skeleton services plus a chunked sample iterator.

    ``keep_sample_hashes=False`` drops per-campaign sample-hash lists
    from ground truth as campaigns finish emitting (they are the one
    skeleton structure that grows with sample count); campaigns tagged
    as known operations keep theirs, since hash IoCs feed the OSINT
    feeds either way.
    """

    def __init__(self, config: Optional[ScenarioConfig] = None,
                 chunk_samples: int = 4096,
                 keep_sample_hashes: bool = True) -> None:
        self.config = config or ScenarioConfig()
        self.chunk_samples = chunk_samples
        self.keep_sample_hashes = keep_sample_hashes
        self._generator = EcosystemGenerator(self.config)
        self._generator.build_skeleton()

    # -- skeleton services (what build_analysis_components needs) ----------

    @property
    def vt(self):
        return self._generator.vt

    @property
    def ha(self):
        return self._generator.ha

    @property
    def osint(self):
        return self._generator.osint

    @property
    def pool_directory(self):
        return self._generator.pools

    @property
    def dns_zone(self):
        return self._generator.dns

    @property
    def resolver(self):
        return self._generator.resolver

    @property
    def passive_dns(self):
        return self._generator.passive_dns

    @property
    def stock_catalog(self):
        return self._generator.stock

    @property
    def ground_truth(self):
        return self._generator.campaigns

    def forum_corpus(self) -> ForumCorpus:
        """The forum corpus, built on demand (batch-identical: the
        ``forums`` substream is position-independent)."""
        return generate_forum_corpus(
            self._generator.rng.substream("forums"),
            scale=max(0.25, self.config.scale * 5),
        )

    # -- the stream --------------------------------------------------------

    def chunks(self) -> Iterator[SampleChunk]:
        """The world, once, in deterministic bounded chunks."""
        return self._generator.stream_chunks(
            chunk_samples=self.chunk_samples,
            keep_sample_hashes=self.keep_sample_hashes,
        )


def materialize_stream(config: Optional[ScenarioConfig] = None,
                       chunk_samples: int = 4096) -> SyntheticWorld:
    """Rebuild a full :class:`SyntheticWorld` from the chunk stream.

    Exists for the equivalence suite (stream ≡ batch) and as a drop-in
    world builder; it deliberately re-accumulates everything the stream
    exists to avoid holding, so don't use it at the million scale.
    """
    corpus = StreamingCorpus(config, chunk_samples=chunk_samples)
    samples: List[SampleRecord] = []
    for chunk in corpus.chunks():
        samples.extend(chunk.samples)
        # chunks carry their own intel; fold it back into the services
        for report in chunk.reports.values():
            corpus.vt.add_report(report)
        for ha_report in chunk.ha_reports.values():
            corpus.ha.publish(ha_report)
    return SyntheticWorld(
        config=corpus.config,
        samples=samples,
        vt=corpus.vt,
        ha=corpus.ha,
        dns_zone=corpus.dns_zone,
        resolver=corpus.resolver,
        passive_dns=corpus.passive_dns,
        pool_directory=corpus.pool_directory,
        osint=corpus.osint,
        stock_catalog=corpus.stock_catalog,
        ground_truth=corpus.ground_truth,
        forum_corpus=corpus.forum_corpus(),
    )
