"""Append-only columnar store for extracted sample records.

The batch pipeline keeps every :class:`~repro.core.records.MinerRecord`
as a live Python object (~10 KB each with dict overhead); at a million
samples that alone is tens of gigabytes.  This module packs records
into immutable *segments* — single files with fixed-width numeric
columns, a deduplicating string pool, and prefix-offset list columns —
that an mmap-backed reader decodes row-at-a-time.  Reporting and the
sharded aggregator stream rows out of segments instead of holding the
record set.

Segment layout (all integers little-endian)::

    magic "RCOL0001" | u32 header_len | JSON header | payload blocks

The JSON header is a table of contents: per-column byte ranges into the
payload, plus the string-pool ranges.  Columns come in five kinds:

* ``sha``    — 32-byte raw SHA-256 per row (fixed width);
* numeric    — ``u8``/``u16``/``i16``/``u32``/``f64`` arrays, one slot
  per row, with documented ``None`` sentinels;
* ``pooled`` — u32 string-pool ids, ``0`` meaning ``None``;
* ``list``   — u32 prefix offsets (``nrows + 1`` entries) plus a flat
  u32 pool-id value array (``0`` meaning ``None`` within the list);
* ``flags``  — u8 bitfield packing the three booleans.

Writers follow the crash-safe discipline of
:mod:`repro.ingest.checkpoint`: payload bytes land in a temporary file,
are flushed and fsynced, and only then renamed onto the final path, so
a segment either exists completely or not at all.
"""

import array
import datetime
import json
import mmap
import os
import struct
import sys
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.records import MinerRecord

__all__ = ["RecordStore", "SegmentReader", "write_segment"]

_MAGIC = b"RCOL0001"
_VERSION = 1

#: flag bits packed into the ``flags`` column.
_FLAG_OBFUSCATED = 0x01
_FLAG_USED_DYNAMIC = 0x02
_FLAG_USED_STATIC = 0x04

#: Optional[str] scalars stored as string-pool ids (0 = None).
_POOLED_SCALARS = ("pool", "url_pool", "user", "password", "agent",
                   "dst_ip", "source", "packer", "type")

#: List[str] / List[Optional[str]] fields stored as offset+value arrays.
_LIST_COLUMNS = ("identifiers", "identifier_coins", "parents", "dropped",
                 "cname_aliases", "proxy_ips", "dns_rr", "itw_urls")

# The reader casts mmap slices through memoryview typecodes, which use
# the platform's native layout; the store targets the usual 4-byte,
# little-endian ABI and refuses to import elsewhere rather than corrupt.
if array.array("I").itemsize != 4 or sys.byteorder != "little":
    raise ImportError("repro.scale.columnar requires a little-endian "
                      "platform with 4-byte unsigned ints")


class _StringPool:
    """Deduplicating interner; id 0 is reserved for ``None``."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._values: List[str] = []

    def intern(self, value: Optional[str]) -> int:
        if value is None:
            return 0
        vid = self._ids.get(value)
        if vid is None:
            vid = len(self._values) + 1
            self._ids[value] = vid
            self._values.append(value)
        return vid

    def encode(self) -> "tuple[bytes, bytes]":
        """(offsets bytes, utf-8 blob) for the interned values."""
        offsets = array.array("I", [0])
        chunks: List[bytes] = []
        total = 0
        for value in self._values:
            raw = value.encode("utf-8")
            chunks.append(raw)
            total += len(raw)
            offsets.append(total)
        return offsets.tobytes(), b"".join(chunks)

    def __len__(self) -> int:
        return len(self._values)


def _u32(values: Iterable[int]) -> bytes:
    return array.array("I", values).tobytes()


def _sha_bytes(sha256: str) -> bytes:
    raw = bytes.fromhex(sha256)
    if len(raw) != 32:
        raise ValueError(f"sha256 must be 64 hex chars, got {sha256!r}")
    return raw


def write_segment(records: Sequence[MinerRecord], path: Path) -> Path:
    """Pack ``records`` into one immutable segment file at ``path``.

    The write is atomic: bytes go to ``<path>.tmp`` first and are
    fsynced before the rename, so readers never observe a torn segment.
    """
    path = Path(path)
    pool = _StringPool()
    nrows = len(records)

    sha_blob = b"".join(_sha_bytes(r.sha256) for r in records)
    first_seen = _u32(0 if r.first_seen is None else r.first_seen.toordinal()
                      for r in records)
    positives = array.array("H", (r.positives for r in records)).tobytes()
    dst_port = array.array("H", (0 if r.dst_port is None else r.dst_port
                                 for r in records)).tobytes()
    nthreads = array.array("h", (-1 if r.nthreads is None else r.nthreads
                                 for r in records)).tobytes()
    entropy = array.array("d", (r.entropy for r in records)).tobytes()
    flags = bytes(
        (_FLAG_OBFUSCATED if r.obfuscated else 0)
        | (_FLAG_USED_DYNAMIC if r.used_dynamic else 0)
        | (_FLAG_USED_STATIC if r.used_static else 0)
        for r in records)

    pooled: Dict[str, bytes] = {}
    for name in _POOLED_SCALARS:
        pooled[name] = _u32(pool.intern(getattr(r, name)) for r in records)

    lists: Dict[str, "tuple[bytes, bytes]"] = {}
    for name in _LIST_COLUMNS:
        offsets = array.array("I", [0])
        values = array.array("I")
        total = 0
        for r in records:
            items = getattr(r, name)
            for item in items:
                values.append(pool.intern(item))
            total += len(items)
            offsets.append(total)
        lists[name] = (offsets.tobytes(), values.tobytes())

    pool_offsets, pool_blob = pool.encode()

    # Assemble the payload and its table of contents.
    toc: List[dict] = []
    blocks: List[bytes] = []
    cursor = 0

    def block(name: str, kind: str, data: bytes) -> None:
        nonlocal cursor
        toc.append({"name": name, "kind": kind,
                    "offset": cursor, "length": len(data)})
        blocks.append(data)
        cursor += len(data)

    block("sha256", "sha", sha_blob)
    block("first_seen", "u32", first_seen)
    block("positives", "u16", positives)
    block("dst_port", "u16", dst_port)
    block("nthreads", "i16", nthreads)
    block("entropy", "f64", entropy)
    block("flags", "u8", flags)
    for name in _POOLED_SCALARS:
        block(name, "pooled", pooled[name])
    for name in _LIST_COLUMNS:
        offsets_bytes, values_bytes = lists[name]
        block(name + ".offsets", "list_offsets", offsets_bytes)
        block(name + ".values", "list_values", values_bytes)
    block("pool.offsets", "pool_offsets", pool_offsets)
    block("pool.blob", "pool_blob", pool_blob)

    header = json.dumps({
        "version": _VERSION,
        "nrows": nrows,
        "pool_count": len(pool),
        "columns": toc,
    }, separators=(",", ":")).encode("utf-8")

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<I", len(header)))
        handle.write(header)
        for data in blocks:
            handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


class SegmentReader:
    """Zero-copy reader over one segment file.

    The file is mmapped; numeric columns are exposed as memoryview
    casts directly over the map, and :meth:`record` materialises one
    :class:`MinerRecord` at a time — memory stays O(row), not O(file).
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            self._mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        if self._mm[:8] != _MAGIC:
            raise ValueError(f"{self.path}: not a RCOL segment")
        (header_len,) = struct.unpack("<I", self._mm[8:12])
        header = json.loads(self._mm[12:12 + header_len].decode("utf-8"))
        if header["version"] != _VERSION:
            raise ValueError(f"{self.path}: unsupported version "
                             f"{header['version']}")
        self.nrows: int = header["nrows"]
        base = 12 + header_len
        self._view = memoryview(self._mm)
        self._cols: Dict[str, "tuple[int, int, str]"] = {}
        for col in header["columns"]:
            self._cols[col["name"]] = (base + col["offset"],
                                       col["length"], col["kind"])
        self._pool_offsets = self._cast("pool.offsets", "I")
        off, length, _ = self._cols["pool.blob"]
        self._pool_blob = self._view[off:off + length]
        self._sha_off = self._cols["sha256"][0]
        self._first_seen = self._cast("first_seen", "I")
        self._positives = self._cast("positives", "H")
        self._dst_port = self._cast("dst_port", "H")
        self._nthreads = self._cast("nthreads", "h")
        self._entropy = self._cast("entropy", "d")
        self._flags = self._cast("flags", "B")
        self._pooled = {name: self._cast(name, "I")
                        for name in _POOLED_SCALARS}
        self._lists = {name: (self._cast(name + ".offsets", "I"),
                              self._cast(name + ".values", "I"))
                       for name in _LIST_COLUMNS}

    def _cast(self, name: str, typecode: str) -> memoryview:
        offset, length, _kind = self._cols[name]
        return self._view[offset:offset + length].cast(typecode)

    # -- row access --------------------------------------------------------

    def __len__(self) -> int:
        return self.nrows

    def sha(self, i: int) -> str:
        """Row ``i``'s sha256 as lowercase hex."""
        off = self._sha_off + 32 * i
        return bytes(self._view[off:off + 32]).hex()

    def shas(self) -> Iterator[str]:
        """Every row's sha256, in row order."""
        return (self.sha(i) for i in range(self.nrows))

    def _pool_value(self, vid: int) -> Optional[str]:
        if vid == 0:
            return None
        lo, hi = self._pool_offsets[vid - 1], self._pool_offsets[vid]
        return bytes(self._pool_blob[lo:hi]).decode("utf-8")

    def _list_value(self, name: str, i: int) -> List[Optional[str]]:
        offsets, values = self._lists[name]
        return [self._pool_value(values[j])
                for j in range(offsets[i], offsets[i + 1])]

    def record(self, i: int) -> MinerRecord:
        """Materialise row ``i`` as a full :class:`MinerRecord`."""
        if not 0 <= i < self.nrows:
            raise IndexError(i)
        ordinal = self._first_seen[i]
        flags = self._flags[i]
        scalar = {name: self._pool_value(self._pooled[name][i])
                  for name in _POOLED_SCALARS}
        return MinerRecord(
            sha256=self.sha(i),
            pool=scalar["pool"],
            url_pool=scalar["url_pool"],
            user=scalar["user"],
            password=scalar["password"],
            nthreads=None if self._nthreads[i] < 0 else self._nthreads[i],
            agent=scalar["agent"],
            dst_ip=scalar["dst_ip"],
            dst_port=self._dst_port[i] or None,
            dns_rr=self._list_value("dns_rr", i),
            source=scalar["source"] or "",
            first_seen=(None if ordinal == 0
                        else datetime.date.fromordinal(ordinal)),
            itw_urls=self._list_value("itw_urls", i),
            packer=scalar["packer"],
            positives=self._positives[i],
            type=scalar["type"] or "Miner",
            identifiers=self._list_value("identifiers", i),
            identifier_coins=self._list_value("identifier_coins", i),
            parents=self._list_value("parents", i),
            dropped=self._list_value("dropped", i),
            cname_aliases=self._list_value("cname_aliases", i),
            proxy_ips=self._list_value("proxy_ips", i),
            entropy=self._entropy[i],
            obfuscated=bool(flags & _FLAG_OBFUSCATED),
            used_dynamic=bool(flags & _FLAG_USED_DYNAMIC),
            used_static=bool(flags & _FLAG_USED_STATIC),
        )

    def identifiers_of(self, i: int) -> List[str]:
        """Row ``i``'s identifiers without materialising the record."""
        return [v for v in self._list_value("identifiers", i)
                if v is not None]

    def iter_records(self) -> Iterator[MinerRecord]:
        """All rows, in order, one live record at a time."""
        return (self.record(i) for i in range(self.nrows))

    def close(self) -> None:
        """Release the mmap (reads after this raise)."""
        # memoryview exports pin the mmap; drop them first.
        self._pooled.clear()
        self._lists.clear()
        for attr in ("_pool_offsets", "_pool_blob", "_first_seen",
                     "_positives", "_dst_port", "_nthreads", "_entropy",
                     "_flags", "_view"):
            if hasattr(self, attr):
                delattr(self, attr)
        self._mm.close()

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RecordStore:
    """Directory of append-only segments, discovered by sorted name.

    Segment names sort lexicographically, so iteration order over the
    store equals append order when callers use the default numbered
    names (or any zero-padded scheme, e.g. ingest batch ids).
    """

    GLOB = "seg-*.rcol"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def segment_paths(self) -> List[Path]:
        """Existing segment files, sorted by name."""
        return sorted(self.root.glob(self.GLOB))

    def segment_path(self, name: str) -> Path:
        """The file path a segment named ``name`` lives at."""
        return self.root / f"seg-{name}.rcol"

    @property
    def num_segments(self) -> int:
        return len(self.segment_paths())

    def append_segment(self, records: Sequence[MinerRecord],
                       name: Optional[str] = None) -> Path:
        """Write ``records`` as a new segment; returns its path.

        ``name`` defaults to a zero-padded sequence number.  Appending
        under an existing name is refused — segments are immutable.
        """
        if name is None:
            name = f"{self.num_segments:06d}"
        path = self.segment_path(name)
        if path.exists():
            raise FileExistsError(f"segment already exists: {path}")
        return write_segment(records, path)

    def has_segment(self, name: str) -> bool:
        """Whether a segment named ``name`` is already on disk."""
        return self.segment_path(name).exists()

    def __len__(self) -> int:
        """Total rows across all segments (headers only — cheap)."""
        total = 0
        for path in self.segment_paths():
            with SegmentReader(path) as reader:
                total += len(reader)
        return total

    def readers(self) -> Iterator[SegmentReader]:
        """A fresh reader per segment, in name order (caller closes)."""
        return (SegmentReader(path) for path in self.segment_paths())

    def iter_records(self) -> Iterator[MinerRecord]:
        """Every record in every segment, in segment/row order."""
        for path in self.segment_paths():
            with SegmentReader(path) as reader:
                for record in reader.iter_records():
                    yield record
