"""Shared substrate: deterministic randomness, simulation time, errors.

Everything in the reproduction is deterministic given a seed.  The paper's
measurement spans March 2007 to April 2019; :mod:`repro.common.simtime`
provides date helpers pinned to that window.
"""

from repro.common.errors import (
    ReproError,
    CorpusError,
    ExtractionError,
    PoolError,
    ProtocolError,
)
from repro.common.memory import peak_rss_bytes, peak_rss_mib, rss_supported
from repro.common.rng import DeterministicRNG, derive_seed
from repro.common.simtime import (
    SIM_START,
    SIM_END,
    POW_FORK_DATES,
    Date,
    date_range,
    days_between,
    month_floor,
    parse_date,
    year_of,
)

__all__ = [
    "ReproError",
    "CorpusError",
    "ExtractionError",
    "PoolError",
    "ProtocolError",
    "DeterministicRNG",
    "derive_seed",
    "peak_rss_bytes",
    "peak_rss_mib",
    "rss_supported",
    "SIM_START",
    "SIM_END",
    "POW_FORK_DATES",
    "Date",
    "date_range",
    "days_between",
    "month_floor",
    "parse_date",
    "year_of",
]
