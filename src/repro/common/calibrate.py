"""Cross-machine bench normalisation: a fixed CPU microbenchmark.

``BENCH_*.json`` baselines are committed from whatever machine last
ran them; CI runners and dev boxes differ by 2-3x in single-core
speed, so raw point-to-point throughput comparisons gate machine
noise, not code.  Every suite payload gets stamped with
:func:`calibration_score` — the throughput of a fixed,
dependency-free workload measured in the same process right before
the suite — and the regression gate compares *machine-normalised*
ratios (``metric / score``) whenever both sides carry a stamp,
falling back to raw metrics against pre-stamp baselines.

The workload is sha256 over a fixed in-memory buffer: pure CPU, no
allocation churn, no disk, stable across Python patch versions, and
large enough (16 MiB per pass) that timer jitter stays under a
percent.  Best-of-three absorbs scheduler blips.
"""

import hashlib
import time

__all__ = ["calibration_score"]

#: 4 KiB block, repeated _BLOCKS times per pass = 16 MiB hashed.
_BLOCK = bytes(range(256)) * 16
_BLOCKS = 4096
_PASSES = 3


def calibration_score() -> float:
    """MiB/s of sha256 over a fixed buffer — best of three passes."""
    mib = _BLOCKS * len(_BLOCK) / (1024 * 1024)
    best = 0.0
    for _ in range(_PASSES):
        digest = hashlib.sha256()
        start = time.perf_counter()
        for _ in range(_BLOCKS):
            digest.update(_BLOCK)
        digest.digest()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, mib / elapsed)
    return round(best, 1)
