"""Peak-RSS measurement for benchmarks and the scaling harness.

``resource.getrusage`` reports the process-lifetime resident-set
high-water mark; ``ru_maxrss`` is in kilobytes on Linux and bytes on
macOS, which this module normalises.  The helper is child-process
aware: worker pools forked by :mod:`repro.perf.parallel` contribute
their own high-water marks through ``RUSAGE_CHILDREN``, so a pooled
benchmark cannot under-report by hiding its allocations in workers.

Because the kernel counter is a lifetime maximum, per-phase deltas
cannot be measured in-process — the bench harness therefore runs each
measured point in a fresh subprocess and reads that child's peak.
"""

import sys
from typing import Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = ["peak_rss_bytes", "peak_rss_mib", "rss_supported"]


def rss_supported() -> bool:
    """Whether peak-RSS measurement is available on this platform."""
    return resource is not None


def _maxrss_bytes(usage) -> int:
    # Linux (and most Unixes) report ru_maxrss in KiB; macOS in bytes.
    if sys.platform == "darwin":
        return int(usage.ru_maxrss)
    return int(usage.ru_maxrss) * 1024


def peak_rss_bytes(include_children: bool = True) -> Optional[int]:
    """Lifetime peak resident set size of this process, in bytes.

    With ``include_children`` (the default) the result is the maximum
    of the caller's own high-water mark and the largest high-water mark
    among its *waited-for* children — i.e. worker pools are accounted
    once they have been joined.  Returns None when the platform has no
    ``resource`` module.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = _maxrss_bytes(resource.getrusage(resource.RUSAGE_SELF))
    if include_children:
        children = _maxrss_bytes(resource.getrusage(resource.RUSAGE_CHILDREN))
        peak = max(peak, children)
    return peak


def peak_rss_mib(include_children: bool = True) -> Optional[float]:
    """Peak RSS in MiB (see :func:`peak_rss_bytes`), or None."""
    peak = peak_rss_bytes(include_children=include_children)
    if peak is None:  # pragma: no cover - non-POSIX platforms
        return None
    return peak / (1024 * 1024)
