"""Deterministic randomness.

All stochastic components of the simulation draw from a
:class:`DeterministicRNG` seeded from a single root seed.  Sub-streams are
derived by hashing the parent seed with a label, so adding a new consumer
never perturbs the draws of existing ones (stable stream splitting).
"""

import hashlib
import math
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a stream ``label``.

    The derivation is a SHA-256 of the parent seed and label, truncated to
    64 bits, so child streams are independent and reproducible.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class DeterministicRNG:
    """A seeded random stream with the distributions the simulation needs.

    Wraps :class:`random.Random` and adds heavy-tailed samplers (Pareto,
    lognormal with explicit median) used to reproduce the skewed earnings
    distributions the paper reports (Fig. 4, Table VIII).
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed
        self.label = label
        self._random = random.Random(derive_seed(seed, label))

    def substream(self, label: str) -> "DeterministicRNG":
        """Return an independent child stream named ``label``."""
        return DeterministicRNG(derive_seed(self.seed, self.label), label)

    # -- thin wrappers -------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Pick one element of ``seq`` uniformly."""
        return self._random.choice(seq)

    def choices(self, seq: Sequence[T], weights: Optional[Sequence[float]] = None,
                k: int = 1) -> List[T]:
        """Pick ``k`` elements with optional weights (with replacement)."""
        return self._random.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """``k`` distinct elements of ``seq`` (without replacement)."""
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._random.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw with mean ``mu`` and stddev ``sigma``."""
        return self._random.gauss(mu, sigma)

    def expovariate(self, lambd: float) -> float:
        """Exponentially distributed draw with rate ``lambd``."""
        return self._random.expovariate(lambd)

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        return self._random.random() < p

    def hexbytes(self, n: int) -> str:
        """Return ``n`` random bytes rendered as lowercase hex."""
        return bytes(self._random.getrandbits(8) for _ in range(n)).hex()

    def randbytes(self, n: int) -> bytes:
        """``n`` random bytes."""
        return bytes(self._random.getrandbits(8) for _ in range(n))

    # -- distribution helpers ------------------------------------------

    def pareto(self, alpha: float, xmin: float = 1.0) -> float:
        """Sample a Pareto(alpha) value with scale ``xmin``.

        Used for botnet sizes and campaign earnings, whose empirical
        distribution is heavy tailed (99% of campaigns earn < 100 XMR
        while the top campaign alone holds ~22% of all earnings).
        """
        u = self._random.random()
        # Guard against u == 0 which would produce infinity.
        u = max(u, 1e-12)
        return xmin / (u ** (1.0 / alpha))

    def lognormal_median(self, median: float, sigma: float) -> float:
        """Lognormal sample parameterised by its median."""
        return math.exp(self._random.gauss(math.log(median), sigma))

    def poisson(self, lam: float) -> int:
        """Knuth Poisson sampler (lam expected to be small-to-moderate)."""
        if lam <= 0:
            return 0
        if lam > 500:
            # Normal approximation keeps this O(1) for large rates.
            return max(0, int(round(self._random.gauss(lam, math.sqrt(lam)))))
        threshold = math.exp(-lam)
        k = 0
        p = 1.0
        while True:
            p *= self._random.random()
            if p <= threshold:
                return k
            k += 1

    def zipf_rank(self, n: int, s: float = 1.2) -> int:
        """Sample a 1-based rank in [1, n] with Zipf(s) popularity."""
        if n < 1:
            raise ValueError("zipf_rank needs n >= 1")
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        target = self._random.random() * total
        acc = 0.0
        for rank, w in enumerate(weights, start=1):
            acc += w
            if target <= acc:
                return rank
        return n
