"""Small network-string helpers shared across pipeline stages."""


def is_ipv4_literal(host: str) -> bool:
    """Whether ``host`` is a well-formed dotted-quad IPv4 literal.

    Strict: exactly four dot-separated decimal octets in [0, 255].
    Malformed strings like ``"..."``, ``"1.2.3"`` or ``"1.2.3.999"``
    (which a bare digits-and-dots scan would accept) are rejected.
    """
    if not host:
        return False
    parts = host.split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit() or len(part) > 3:
            return False
        if int(part) > 255:
            return False
    return True
