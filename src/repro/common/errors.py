"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for all library errors."""


class CorpusError(ReproError):
    """Raised when the synthetic corpus generator is misconfigured."""


class ExtractionError(ReproError):
    """Raised when static/dynamic extraction encounters malformed input."""


class PoolError(ReproError):
    """Raised by the mining-pool simulator (unknown wallet, banned, ...)."""


class ProtocolError(ReproError):
    """Raised by the Stratum implementation on malformed messages."""


class BinaryFormatError(ReproError):
    """Raised when parsing a synthetic executable fails."""


class RuleSyntaxError(ReproError):
    """Raised by the mini-YARA engine on unparseable rules."""
