"""Simulation time model.

The study window is March 2007 (first sample collected) to April 2019
(end of the authors' pool polling).  Dates are plain :class:`datetime.date`
objects; timestamps inside protocol messages are Unix seconds at UTC
midnight of the date plus an intra-day offset.
"""

import datetime
from typing import Iterator, List, Union

Date = datetime.date

SIM_START: Date = datetime.date(2007, 3, 1)
SIM_END: Date = datetime.date(2019, 4, 30)

#: The three Monero proof-of-work forks the paper monitors (§VI).
POW_FORK_DATES: List[Date] = [
    datetime.date(2018, 4, 6),
    datetime.date(2018, 10, 18),
    datetime.date(2019, 3, 9),
]

#: Window during which the authors polled pool APIs (§III-D).
POLL_START: Date = datetime.date(2018, 7, 1)
POLL_END: Date = datetime.date(2019, 4, 30)

_EPOCH = datetime.date(1970, 1, 1)


__all__ = [
    "add_days",
    "clamp",
    "date_range",
    "days_between",
    "from_unix",
    "month_floor",
    "parse_date",
    "pow_era",
    "to_unix",
    "year_of",
]


def parse_date(value: Union[str, Date]) -> Date:
    """Parse ``YYYY-MM-DD`` strings; pass dates through unchanged."""
    if isinstance(value, datetime.date):
        return value
    return datetime.date.fromisoformat(value)


def days_between(start: Date, end: Date) -> int:
    """Number of days from ``start`` to ``end`` (may be negative)."""
    return (end - start).days


def date_range(start: Date, end: Date, step_days: int = 1) -> Iterator[Date]:
    """Yield dates from ``start`` (inclusive) to ``end`` (exclusive)."""
    if step_days <= 0:
        raise ValueError("step_days must be positive")
    current = start
    while current < end:
        yield current
        current += datetime.timedelta(days=step_days)


def month_floor(day: Date) -> Date:
    """First day of the month containing ``day``."""
    return day.replace(day=1)


def year_of(day: Date) -> int:
    """Calendar year of a date."""
    return day.year


def to_unix(day: Date, seconds_into_day: int = 0) -> int:
    """Unix timestamp of UTC midnight of ``day`` plus an offset."""
    if not 0 <= seconds_into_day < 86400:
        raise ValueError("seconds_into_day out of range")
    return (day - _EPOCH).days * 86400 + seconds_into_day


def from_unix(timestamp: int) -> Date:
    """Date (UTC) of a Unix timestamp."""
    return _EPOCH + datetime.timedelta(seconds=timestamp - timestamp % 86400)


def add_days(day: Date, days: int) -> Date:
    """The date ``days`` after ``day`` (negative moves backwards)."""
    return day + datetime.timedelta(days=days)


def clamp(day: Date, low: Date = SIM_START, high: Date = SIM_END) -> Date:
    """Clamp a date into the simulation window."""
    return max(low, min(high, day))


def pow_era(day: Date) -> int:
    """Index of the PoW era a date falls in (0 = original CryptoNight).

    Era boundaries are the three fork dates in :data:`POW_FORK_DATES`;
    mining software built for era *i* produces invalid shares in any
    later era, which is the mechanism behind the campaign die-offs the
    paper measures (72% / 89% / 96%).
    """
    era = 0
    for fork in POW_FORK_DATES:
        if day >= fork:
            era += 1
    return era
