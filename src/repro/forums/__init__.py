"""Underground-forum substrate (the CrimeBB analog).

§II and Appendix B analyse a corpus of underground-forum posts: thread
volume per cryptocurrency over time (Fig. 1), commoditisation evidence
(miners sold for ~$35, builder services for ~$13), and recurring topics
(friendly pools, proxy advice, all-you-need packages).

This package generates a synthetic forum corpus with those trends baked
in, and provides the trend-extraction queries the paper runs.
"""

from repro.forums.corpus import (
    ForumCorpus,
    ForumPost,
    ForumThread,
    generate_forum_corpus,
)
from repro.forums.trends import (
    coin_thread_shares,
    mining_topic_threads,
    offer_price_stats,
)

__all__ = [
    "ForumCorpus",
    "ForumPost",
    "ForumThread",
    "generate_forum_corpus",
    "coin_thread_shares",
    "mining_topic_threads",
    "offer_price_stats",
]
