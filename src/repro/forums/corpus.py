"""Synthetic underground-forum corpus generator.

Thread volume per coin-year follows the shape of the paper's Fig. 1:
Bitcoin dominates early and declines after 2014; Litecoin and Dogecoin
spike briefly around 2013-2014; Monero rises from its 2014 launch and is
the most-discussed mining coin by 2017-2018; Zcash and Ethereum hold
small shares late in the window.
"""

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.rng import DeterministicRNG
from repro.common.simtime import Date

#: Relative topic weight per coin per year (unnormalised), hand-shaped
#: to Fig. 1 of the paper.
_COIN_YEAR_WEIGHTS: Dict[str, Dict[int, float]] = {
    "Bitcoin": {2012: 0.38, 2013: 0.40, 2014: 0.33, 2015: 0.26,
                2016: 0.22, 2017: 0.15, 2018: 0.10},
    "Monero": {2014: 0.02, 2015: 0.08, 2016: 0.14, 2017: 0.28, 2018: 0.36},
    "ZCash": {2016: 0.03, 2017: 0.05, 2018: 0.04},
    "Ethereum": {2016: 0.04, 2017: 0.08, 2018: 0.06},
    "Litecoin": {2012: 0.04, 2013: 0.12, 2014: 0.10, 2015: 0.05,
                 2016: 0.03, 2017: 0.03, 2018: 0.02},
    "Dogecoin": {2013: 0.08, 2014: 0.11, 2015: 0.03, 2016: 0.02,
                 2017: 0.01, 2018: 0.01},
}

_THREADS_PER_YEAR = 400  # baseline forum activity per year at scale 1.0

_OFFER_TEMPLATES = [
    ("[SELL] Silent {coin} miner, encrypted, idle mining", "miner_sale", 35.0, 12.0),
    ("{coin} miner builder service - custom pool/currency", "builder", 13.0, 3.0),
    ("Free {coin} miner - 2% dev fee to cover the time coding", "free_miner", 0.0, 0.0),
    ("[WTS] Full {coin} botnet package: setup + miner + proxy", "package", 200.0, 80.0),
    ("Private pool, no ban by multiple connections", "pool_offer", 50.0, 25.0),
]

_DISCUSSION_TEMPLATES = [
    "Which pools don't ban botnets? ({coin})",
    "How to set up a mining proxy for >2K bots",
    "Best trade-off hashrate vs detection for {coin}",
    "Miner detected by AV after pool ban - need re-obfuscation",
    "Looking for partners, I have installs ({coin})",
]


__all__ = [
    "ForumCorpus",
    "ForumPost",
    "ForumThread",
    "generate_forum_corpus",
]


@dataclass(frozen=True)
class ForumPost:
    """One post inside a thread."""

    author: str
    body: str
    posted_on: Date


@dataclass
class ForumThread:
    """One forum thread."""

    thread_id: int
    title: str
    coin: str
    category: str            # "offer" | "discussion"
    offer_kind: Optional[str]
    price_usd: Optional[float]
    created_on: Date
    posts: List[ForumPost] = field(default_factory=list)


@dataclass
class ForumCorpus:
    """The generated corpus."""

    threads: List[ForumThread] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.threads)

    def threads_in_year(self, year: int) -> List[ForumThread]:
        """Threads created in the given year."""
        return [t for t in self.threads if t.created_on.year == year]

    def threads_about(self, coin: str) -> List[ForumThread]:
        """Threads whose topic coin equals ``coin``."""
        return [t for t in self.threads if t.coin == coin]


def generate_forum_corpus(rng: DeterministicRNG,
                          scale: float = 1.0,
                          years: Optional[List[int]] = None) -> ForumCorpus:
    """Generate the forum corpus at a volume ``scale``."""
    stream = rng.substream("forums")
    corpus = ForumCorpus()
    thread_id = 0
    for year in years or range(2012, 2019):
        # Mining threads are a fraction of overall forum volume; the
        # remainder are unrelated threads we do not generate.
        for coin, weights in _COIN_YEAR_WEIGHTS.items():
            weight = weights.get(year, 0.0)
            count = stream.poisson(weight * _THREADS_PER_YEAR * scale)
            for _ in range(count):
                thread_id += 1
                corpus.threads.append(
                    _make_thread(stream, thread_id, coin, year)
                )
    return corpus


def _make_thread(rng: DeterministicRNG, thread_id: int, coin: str,
                 year: int) -> ForumThread:
    day = datetime.date(year, rng.randint(1, 12), rng.randint(1, 28))
    is_offer = rng.bernoulli(0.35)
    author = "user" + rng.hexbytes(4)
    if is_offer:
        template, kind, mean_price, sigma = rng.choice(_OFFER_TEMPLATES)
        price = None
        if mean_price > 0:
            price = max(1.0, rng.gauss(mean_price, sigma))
        title = template.format(coin=coin)
        body = (f"Selling for {coin}. "
                + (f"Price: ${price:.0f}. " if price else "Free, 2% fee. ")
                + "Escrow accepted. PM me.")
        thread = ForumThread(thread_id, title, coin, "offer", kind, price,
                             day)
    else:
        title = rng.choice(_DISCUSSION_TEMPLATES).format(coin=coin)
        body = ("The best option is to use a proxy and you can use any "
                "pool. Contact me for PM, I am willing to help.")
        thread = ForumThread(thread_id, title, coin, "discussion", None,
                             None, day)
    thread.posts.append(ForumPost(author, body, day))
    for _ in range(rng.poisson(3.0)):
        thread.posts.append(ForumPost(
            "user" + rng.hexbytes(4),
            rng.choice([
                "In my pool there is no ban by multiple connections.",
                "Use less than 2K bots for a long-lasting strategy.",
                "Miner is free, we charge a fee of 2% to cover the time coding.",
                "Vouch, bought last week, FUD against all AVs.",
            ]),
            day,
        ))
    return thread
