"""Trend queries over the forum corpus (Fig. 1, §II)."""

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.forums.corpus import ForumCorpus, ForumThread


__all__ = [
    "coin_thread_shares",
    "dominant_coin",
    "mining_topic_threads",
    "offer_price_stats",
]


def coin_thread_shares(corpus: ForumCorpus) -> Dict[int, Dict[str, float]]:
    """Per-year share of mining threads per coin (the Fig. 1 series).

    Shares are normalised per year over mining threads, so the value is
    directly comparable to the paper's 'proportion of threads' axis.
    """
    by_year: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for thread in corpus.threads:
        by_year[thread.created_on.year][thread.coin] += 1
    shares: Dict[int, Dict[str, float]] = {}
    for year, counts in sorted(by_year.items()):
        total = sum(counts.values())
        shares[year] = {
            coin: count / total for coin, count in sorted(counts.items())
        }
    return shares


def dominant_coin(corpus: ForumCorpus, year: int) -> Optional[str]:
    """Most-discussed coin in a year (Monero by 2018, per the paper)."""
    shares = coin_thread_shares(corpus).get(year)
    if not shares:
        return None
    return max(shares.items(), key=lambda kv: kv[1])[0]


def offer_price_stats(corpus: ForumCorpus,
                      offer_kind: str) -> Tuple[int, float]:
    """(count, average USD price) of offers of a kind.

    ``offer_kind='miner_sale'`` reproduces the paper's observation that
    an encrypted Monero miner costs ~$35 on average; ``'builder'`` the
    $13 builder service.
    """
    prices = [
        t.price_usd for t in corpus.threads
        if t.offer_kind == offer_kind and t.price_usd is not None
    ]
    if not prices:
        return 0, 0.0
    return len(prices), sum(prices) / len(prices)


def mining_topic_threads(corpus: ForumCorpus,
                         keyword: str) -> List[ForumThread]:
    """Threads whose title or posts mention ``keyword`` (case-folded)."""
    keyword = keyword.lower()
    out = []
    for thread in corpus.threads:
        if keyword in thread.title.lower() or any(
                keyword in post.body.lower() for post in thread.posts):
            out.append(thread)
    return out
