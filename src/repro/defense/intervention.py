"""Wallet-reporting intervention (the experiment of §V / Fig. 8).

During the study the authors reported illicit wallets, with evidence,
to the largest pools; cooperative pools banned the wallets whose
connection counts betrayed botnets.  This module generalises that
intervention: report every wallet a measurement run discovered, record
which pools acted, and estimate the earnings removed from the
ecosystem (the banned wallets' forward run-rate).
"""

import datetime
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.chain.emission import MONERO_EMISSION, network_hashrate_hs
from repro.common.simtime import Date
from repro.core.pipeline import MeasurementResult
from repro.pools.directory import PoolDirectory
from repro.pools.pool import Transparency


@dataclass
class InterventionReport:
    """What one reporting campaign achieved."""

    report_date: Date
    wallets_reported: int = 0
    wallets_banned: int = 0
    bans_by_pool: Dict[str, int] = field(default_factory=dict)
    refused_by_pool: Dict[str, int] = field(default_factory=dict)
    #: XMR/day the banned wallets were earning when banned.
    disrupted_run_rate: float = 0.0

    @property
    def ban_rate(self) -> float:
        if self.wallets_reported == 0:
            return 0.0
        return self.wallets_banned / self.wallets_reported


class WalletReportingCampaign:
    """Reports measured illicit wallets to every transparent pool."""

    def __init__(self, pools: PoolDirectory) -> None:
        self._pools = pools

    def run(self, result: MeasurementResult,
            report_date: Optional[Date] = None) -> InterventionReport:
        """Report all wallets with observed payments; return outcomes.

        Mirrors the authors' procedure: only wallets with pool-side
        evidence are reported, and the ban decision rests with each
        pool's policy (connection threshold, cooperativeness, recency).
        """
        when = report_date or datetime.date(2018, 9, 27)
        report = InterventionReport(report_date=when)
        banned_wallets = set()
        for identifier, profile in result.profiles.items():
            if profile.total_paid <= 0:
                continue
            report.wallets_reported += 1
            for pool in self._pools.pools():
                if pool.config.transparency is Transparency.OPAQUE:
                    continue
                if pool.report_wallet(identifier, when):
                    report.bans_by_pool[pool.config.name] = \
                        report.bans_by_pool.get(pool.config.name, 0) + 1
                    banned_wallets.add(identifier)
                elif pool.api_wallet_stats(identifier) is not None:
                    report.refused_by_pool[pool.config.name] = \
                        report.refused_by_pool.get(pool.config.name, 0) + 1
        report.wallets_banned = len(banned_wallets)
        report.disrupted_run_rate = self._run_rate(result, banned_wallets,
                                                   when)
        return report

    def _run_rate(self, result: MeasurementResult, wallets: Iterable[str],
                  when: Date) -> float:
        """XMR/day the banned wallets earned from their last hashrate."""
        emission = MONERO_EMISSION.daily_emission(when)
        network = network_hashrate_hs(when)
        rate = 0.0
        for wallet in wallets:
            profile = result.profiles.get(wallet)
            if profile is None:
                continue
            hashrate = max((r.hashrate for r in profile.records),
                           default=0.0)
            rate += emission * min(1.0, hashrate / network)
        return rate
