"""Countermeasures substrate (§VI of the paper, made executable).

The discussion section of the paper evaluates four defence directions;
this package implements each one so its efficacy can be *measured*
against the synthetic ecosystem instead of argued:

* :mod:`repro.defense.blacklist` — pool-domain blacklisting and the
  CNAME/proxy/raw-IP evasions that defeat it;
* :mod:`repro.defense.intervention` — the report-wallets-to-pools
  intervention the authors ran (Fig. 8), generalised;
* :mod:`repro.defense.fork_policy` — counterfactual PoW-fork cadences
  ("increment the frequency of such changes");
* :mod:`repro.defense.host_monitor` — host-based CPU anomaly detection
  vs rootkit evasion, and the externalised power-meter detector the
  paper positions as future work.
"""

from repro.defense.blacklist import BlacklistDefense, BlacklistReport
from repro.defense.intervention import (
    InterventionReport,
    WalletReportingCampaign,
)
from repro.defense.fork_policy import ForkPolicyOutcome, simulate_fork_cadence
from repro.defense.host_monitor import (
    CpuAnomalyMonitor,
    HostState,
    PowerMeterMonitor,
)

__all__ = [
    "BlacklistDefense",
    "BlacklistReport",
    "InterventionReport",
    "WalletReportingCampaign",
    "ForkPolicyOutcome",
    "simulate_fork_cadence",
    "CpuAnomalyMonitor",
    "HostState",
    "PowerMeterMonitor",
]
